"""Figure 3 — the text-only failure mode on an OCR'd poster.

The paper's figure shows a poster transcription flooded with spurious
Person/Organization candidates for 'Event Organizer'.  The bench
regenerates the figure on a mobile capture and asserts the quantitative
claim behind it: the candidate pool is larger than the single true
organizer, i.e. a text-only extractor faces a real disambiguation
problem that block context removes.
"""

from conftest import save_result

from repro.harness import figure3
from repro.nlp.ner import recognize_entities


def test_fig3(benchmark, ctx, results_dir):
    fig = benchmark.pedantic(lambda: figure3(ctx, doc_index=1), rounds=1, iterations=1)
    save_result(results_dir, "fig3", fig.format())

    # Aggregate the claim over the poster corpus: transcriptions offer
    # multiple Person/Org candidates per single true organizer.
    pools = []
    for cleaned in ctx.cleaned("D2"):
        text = ctx.engine.transcribe(cleaned.original).full_text()
        candidates = [
            e for e in recognize_entities(text) if e.label in ("PERSON", "ORGANIZATION")
        ]
        pools.append(len(candidates))
    mean_pool = sum(pools) / len(pools)
    assert mean_pool > 1.5, mean_pool
    assert max(pools) >= 3
