"""Shared benchmark fixtures.

One session-scoped :class:`ExperimentContext` feeds every table bench so
corpora and transcriptions are generated once.  Each bench writes its
reproduced table/figure to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """Bench-scale context: large enough for stable shapes, small
    enough that the full suite runs in minutes."""
    return ExperimentContext({"D1": 60, "D2": 30, "D3": 30}, seed=0)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
