"""Table 2 — holdout corpus construction (the distant-supervision input).

Reproduces the scrape → parse → wrap pipeline against the synthetic
fixed-format sites: one source for D1 (the complete 1369-field index),
two each for D2 and D3.
"""

from conftest import save_result

from repro.harness import table2


def test_table2(benchmark, results_dir):
    table = benchmark.pedantic(lambda: table2(seed=0), rounds=1, iterations=1)
    save_result(results_dir, "table2", table.format())

    d1 = table.row_for("Dataset", "D1")
    assert d1["Tuples"] == 1369  # the paper's complete field list
    d2 = table.row_for("Dataset", "D2")
    assert d2["Entities"] == 5
    d3 = table.row_for("Dataset", "D3")
    assert d3["Entities"] == 6
    assert "irs.gov" in d1["Source"]
    assert "allevents.in" in d2["Source"]
    assert "fsbo.com" in d3["Source"]
