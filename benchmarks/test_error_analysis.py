"""§6.3 error analysis — where segmentation failures come from.

The paper: "about 80% of the errors stemmed from over-segmentation of
the logical blocks due to low-quality transcription inhibiting semantic
merging at later iterations", and D2's mobile captures drive its gap to
D3.  The bench classifies every missed ground-truth area and asserts
the two directional claims: noisy mobile captures fail at least as
often as digital PDFs, and over-segmentation is a leading error mode on
the heterogeneous corpora.
"""

from conftest import save_result

from repro.core import VS2Segmenter
from repro.harness.error_analysis import by_source, error_report
from repro.harness.reporting import TableResult
from repro.ocr import rotate_back


def test_error_analysis(benchmark, ctx, results_dir):
    def run():
        seg = VS2Segmenter()
        table = TableResult(
            "Error analysis (S6.3): failure categories by dataset/source",
            ["Dataset", "Source", "Matched", "Over-seg", "Under-seg", "Drift", "Missing"],
        )
        collected = {}
        for dataset in ("D1", "D2", "D3"):
            pairs = []
            for c in ctx.cleaned(dataset):
                boxes = [c.to_original_frame(b) for b in seg.block_bboxes(c.observed)]
                pairs.append((c.original, boxes))
            groups = by_source(pairs)
            for source, breakdown in sorted(groups.items()):
                collected[(dataset, source)] = breakdown
                table.add_row(
                    Dataset=dataset,
                    Source=source,
                    Matched=breakdown.matched,
                    **{
                        "Over-seg": breakdown.over_segmentation,
                        "Under-seg": breakdown.under_segmentation,
                        "Drift": breakdown.drift,
                        "Missing": breakdown.missing,
                    },
                )
        return table, collected

    table, collected = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, "error_analysis", table.format())

    mobile = collected.get(("D2", "mobile"))
    pdf = collected.get(("D2", "pdf"))
    assert mobile is not None and pdf is not None
    # noise does not make segmentation *better*
    mobile_rate = mobile.total_errors / max(mobile.matched + mobile.total_errors, 1)
    pdf_rate = pdf.total_errors / max(pdf.matched + pdf.total_errors, 1)
    assert mobile_rate >= pdf_rate - 0.02

    # Across the heterogeneous corpora, over-segmentation + drift
    # dominate "missing" (blocks are found, just cut wrong) — the
    # paper's characterisation of its error mass.
    total_over = sum(
        bd.over_segmentation + bd.under_segmentation + bd.drift
        for (ds, _), bd in collected.items()
        if ds in ("D2", "D3")
    )
    total_missing = sum(
        bd.missing for (ds, _), bd in collected.items() if ds in ("D2", "D3")
    )
    assert total_over >= total_missing
