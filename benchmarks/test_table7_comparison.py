"""Table 7 — end-to-end comparison against five existing methods.

Paper shape: VS2 performs best or comparably on every dataset;
ClausIE/FSM (text-only) trail badly on the visually rich corpora;
ReportMiner excels on rigid D1 templates and collapses on D2/D3;
ClausIE and the ML-based method do not apply to D1.
"""

from conftest import save_result

from repro.eval.metrics import f1_score
from repro.harness import table7


def _f1(table, algo, ds):
    p = table.value("Algorithm", algo, f"{ds} Pr")
    r = table.value("Algorithm", algo, f"{ds} Rec")
    if p is None or r is None:
        return None
    return f1_score(p, r)


def test_table7(benchmark, ctx, results_dir):
    table = benchmark.pedantic(lambda: table7(ctx), rounds=1, iterations=1)
    save_result(results_dir, "table7", table.format())

    # Applicability dashes match the paper.
    assert table.value("Algorithm", "ClausIE", "D1 Pr") is None
    assert table.value("Algorithm", "ML-based", "D1 Pr") is None

    for ds in ("D1", "D2", "D3"):
        vs2 = _f1(table, "VS2", ds)
        assert vs2 is not None and vs2 > 0.6
        for algo in ("ClausIE", "FSM", "ML-based", "Apostolova et al.", "ReportMiner"):
            other = _f1(table, algo, ds)
            if other is not None:
                # best or comparable: never behind by more than 5 F1 points
                assert vs2 >= other - 0.05, (ds, algo)

    # Text-only methods trail VS2 decisively on the visually rich sets.
    assert _f1(table, "VS2", "D2") > _f1(table, "ClausIE", "D2") + 0.2
    assert _f1(table, "VS2", "D3") > _f1(table, "FSM", "D3") + 0.2

    # ReportMiner: strong on rigid D1 faces, weak on heterogeneous D2/D3.
    rm_d1 = _f1(table, "ReportMiner", "D1")
    assert rm_d1 > 0.75
    assert rm_d1 > _f1(table, "ReportMiner", "D2") + 0.2
    assert rm_d1 > _f1(table, "ReportMiner", "D3") + 0.2
