"""Table 9 — ablation study of VS2's components.

Paper shape: every component contributes; the effects of semantic
merging (A1) and visual clustering (A2) are most prominent on the
heterogeneous D2/D3 corpora; disambiguation (A3) matters most on D2/D3
where patterns match multiple blocks; the multimodal strategy beats
text-only Lesk (A4) on the visually rich corpora.
"""

from conftest import save_result

from repro.harness import table9


def test_table9(benchmark, ctx, results_dir):
    table = benchmark.pedantic(lambda: table9(ctx), rounds=1, iterations=1)
    save_result(results_dir, "table9", table.format())

    def d(index, ds):
        return table.value("Index", index, f"dF1 {ds}")

    # A1 (semantic merging): effect most prominent on D2/D3 (§6.5).
    assert d("A1", "D3") > 0.02
    assert d("A1", "D3") >= d("A1", "D1")
    assert d("A1", "D2") >= d("A1", "D1") - 0.01

    # A3 (multimodal disambiguation): significant effect on D2 and D3.
    assert d("A3", "D2") > 0.05
    assert d("A3", "D3") > 0.03
    # ... and larger than its effect on the single-match regime of D1.
    assert d("A3", "D2") > d("A3", "D1")

    # A4: multimodal disambiguation is at least as good as Lesk
    # everywhere, and strictly better on at least one rich corpus.
    for ds in ("D1", "D2", "D3"):
        assert d("A4", ds) >= -0.03, ds
    assert max(d("A4", "D2"), d("A4", "D3")) > 0.02

    # No ablation *helps* dramatically (components never hurt much).
    for index in ("A1", "A2", "A3", "A4"):
        for ds in ("D1", "D2", "D3"):
            assert d(index, ds) >= -0.05, (index, ds)
