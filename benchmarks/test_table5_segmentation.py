"""Table 5 — VS2-Segment vs five page-segmentation baselines.

Paper shape to preserve: VS2-Segment outperforms the text-only
clustering, XY-Cut, Voronoi and Tesseract baselines on all datasets
(F1), significantly outperforms VIPS on D2, and is competitive with
VIPS on D3; D1 (structured forms) is its easiest dataset.
"""

from conftest import save_result

from repro.eval.metrics import f1_score
from repro.harness import table5


def _f1(table, index, ds):
    p = table.value("Index", index, f"{ds} Pr")
    r = table.value("Index", index, f"{ds} Rec")
    if p is None or r is None:
        return None
    return f1_score(p, r)


def test_table5(benchmark, ctx, results_dir):
    table = benchmark.pedantic(lambda: table5(ctx), rounds=1, iterations=1)
    save_result(results_dir, "table5", table.format())

    for ds in ("D1", "D2", "D3"):
        vs2 = _f1(table, "A6", ds)
        # VS2 beats the text-only baseline decisively everywhere.
        assert vs2 > _f1(table, "A1", ds) + 0.10, ds
        # ... and is at worst within a whisker of every other method.
        for competitor in ("A2", "A3", "A4", "A5"):
            other = _f1(table, competitor, ds)
            if other is not None:
                assert vs2 >= other - 0.03, (ds, competitor)

    # VS2 clearly ahead of VIPS on D2 (the paper's headline A4 gap).
    assert _f1(table, "A6", "D2") > _f1(table, "A4", "D2") + 0.10

    # Structured forms are the easiest corpus for VS2.
    assert table.value("Index", "A6", "D1 Rec") >= 0.90
    # VIPS is not applicable to D1.
    assert table.value("Index", "A4", "D1 Pr") is None
