"""Micro-benchmarks of the pipeline's hot components.

These are real pytest-benchmark timings (multiple rounds), complementing
the single-shot table benches: they track the throughput of the pieces
a downstream user would scale — OCR, segmentation, pattern search,
disambiguation and subtree mining.
"""

import pytest

from repro.core import VS2Segmenter, VS2Selector
from repro.core.patterns import CURATED_PATTERNS
from repro.geometry import OccupancyGrid
from repro.geometry.cuts import interior_cut_sets
from repro.mining import mine_frequent_subtrees, decode_tree
from repro.ocr import OcrEngine, deskew


@pytest.fixture(scope="module")
def d2_doc(ctx):
    return ctx.corpus("D2")[0]


@pytest.fixture(scope="module")
def d2_observed(ctx):
    return ctx.cleaned("D2")[0].observed


@pytest.fixture(scope="module")
def d1_observed(ctx):
    return ctx.cleaned("D1")[0].observed


def test_ocr_transcription_speed(benchmark, d2_doc):
    engine = OcrEngine(seed=7)
    result = benchmark(lambda: engine.transcribe(d2_doc))
    assert result.words


def test_deskew_speed(benchmark, ctx):
    mobile = next(d for d in ctx.corpus("D2") if d.source == "mobile")
    observed = OcrEngine(seed=7).transcribe(mobile).as_document(mobile)
    corrected, angle = benchmark(lambda: deskew(observed))
    assert corrected is not None


def test_segmentation_speed_poster(benchmark, d2_observed):
    seg = VS2Segmenter()
    blocks = benchmark(lambda: seg.block_bboxes(d2_observed))
    assert blocks


def test_segmentation_speed_form(benchmark, d1_observed):
    seg = VS2Segmenter()
    blocks = benchmark(lambda: seg.block_bboxes(d1_observed))
    assert len(blocks) > 30


def test_cut_detection_speed(benchmark, d1_observed):
    boxes = [e.bbox for e in d1_observed.elements]
    grid = OccupancyGrid.from_bboxes(boxes, d1_observed.width, d1_observed.height, 4.0)
    cuts = benchmark(lambda: interior_cut_sets(grid, "horizontal"))
    assert cuts


def test_pattern_search_speed(benchmark, d2_observed):
    pattern = CURATED_PATTERNS["event_organizer"]
    text = d2_observed.full_text()
    benchmark(lambda: pattern.find(text))


def test_select_speed(benchmark, d2_observed):
    seg = VS2Segmenter()
    blocks = seg.segment(d2_observed).logical_blocks()
    selector = VS2Selector("D2")
    extractions = benchmark(lambda: selector.extract(d2_observed, blocks))
    assert extractions


def test_subtree_mining_speed(benchmark):
    trees = [
        decode_tree("S NP DT -1 NN -1 -1 VP VB -1 -1".split()),
        decode_tree("S NP NN -1 -1 VP VB -1 RB -1 -1".split()),
        decode_tree("S NP JJ -1 NN -1 -1 VP VB -1 -1".split()),
    ] * 10
    patterns = benchmark(lambda: mine_frequent_subtrees(trees, min_support=20, max_nodes=6))
    assert patterns
