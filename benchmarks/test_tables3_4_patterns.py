"""Tables 3 & 4 — the per-entity syntactic patterns.

Shows the curated (paper-stated) pattern next to the top maximal
frequent subtree mined from the holdout corpus, verifying the distant
supervision path recovers pattern structure of the curated kind
(NE:TIME trees for times, Person/Org NE trees for organizers, ...).
"""

from conftest import save_result

from repro.harness import tables3_4


def test_tables3_4(benchmark, results_dir):
    table = benchmark.pedantic(lambda: tables3_4(seed=0, max_entries=24), rounds=1, iterations=1)
    save_result(results_dir, "tables3_4", table.format())

    def mined(entity):
        return table.value("Named Entity", entity, "Top mined subtree") or ""

    # Mined patterns carry the annotations the curated patterns key on.
    assert "NE:TIME" in mined("Event Time") or "CD" in mined("Event Time")
    assert "NE:PERSON" in mined("Event Organizer") or "NE:ORGANIZATION" in mined(
        "Event Organizer"
    )
    assert "NE:PHONE" in mined("Broker Phone") or "CD" in mined("Broker Phone")
    assert "NE:EMAIL" in mined("Broker Email") or mined("Broker Email")
    # Every entity has a curated pattern name from Tables 3/4.
    assert all(row["Curated pattern"] for row in table.rows)
