"""Extension benches: the §7 future-work features as ablations.

Not a paper table — the paper names these as future work — but DESIGN.md
calls the design choices out, so the bench quantifies them:

* Eq. 2 weight learning vs the §5.3.2 hand-set weights (train on the
  60 % split, score on the held-out 40 %);
* the font-type clustering feature's effect on segmentation.
"""

from conftest import save_result

from repro.core import VS2Segmenter
from repro.core.config import SegmentConfig, SelectConfig, VS2Config
from repro.core.weight_learning import learn_eq2_weights
from repro.eval.metrics import corpus_segmentation_scores, end_to_end_scores
from repro.harness.reporting import TableResult
from repro.harness.tables import _VS2Extractor


def test_weight_learning(benchmark, ctx, results_dir):
    def run():
        table = TableResult(
            "Extension: learned Eq. 2 weights vs hand-set (held-out F1)",
            ["Dataset", "Hand-set F1", "Learned F1", "Learned weights"],
        )
        for dataset in ("D2", "D3"):
            train, test = ctx.split(dataset)
            dev = [(c.original, c.observed, c.angle) for c in train]
            learned = learn_eq2_weights(dataset, dev, step=0.25)

            default_f1 = end_to_end_scores(
                ctx.run_extractor(_VS2Extractor(dataset), test)
            )[0].f1
            cfg = VS2Config()
            cfg.select = SelectConfig(eq2_weights={dataset: learned.weights})
            learned_f1 = end_to_end_scores(
                ctx.run_extractor(_VS2Extractor(dataset, cfg), test)
            )[0].f1
            table.add_row(
                **{
                    "Dataset": dataset,
                    "Hand-set F1": default_f1,
                    "Learned F1": learned_f1,
                    "Learned weights": str(learned.weights),
                }
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, "ext_weight_learning", table.format())
    for row in table.rows:
        # learned weights generalise: near or above the hand-set result
        assert row["Learned F1"] >= row["Hand-set F1"] - 0.08, row


def test_font_type_feature(benchmark, ctx, results_dir):
    def run():
        table = TableResult(
            "Extension: font-type clustering feature (segmentation F1)",
            ["Dataset", "Without", "With (w=0.25)"],
        )
        for dataset in ("D2", "D3"):
            scores = {}
            for label, weight in (("Without", 0.0), ("With (w=0.25)", 0.25)):
                seg = VS2Segmenter(SegmentConfig(font_type_weight=weight))
                per_doc = []
                for c in ctx.cleaned(dataset):
                    boxes = [c.to_original_frame(b) for b in seg.block_bboxes(c.observed)]
                    per_doc.append((boxes, c.original.annotations))
                scores[label] = corpus_segmentation_scores(per_doc).f1
            table.add_row(Dataset=dataset, **scores)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, "ext_font_type", table.format())
    for row in table.rows:
        # the feature must not break segmentation; gains are corpus-dependent
        assert row["With (w=0.25)"] >= row["Without"] - 0.05, row
