"""Perf-trajectory smoke bench (``bench_smoke`` marker).

Runs one tiny corpus through the instrumented parallel runner and
writes ``benchmarks/results/BENCH_pipeline.json`` — the per-stage
timing snapshot future PRs diff against (docs/PROFILING.md) — then
proves the ``segment.cuts`` fast path on all three corpora: the
``cut.decision`` ledgers of a fast and a ``--naive-cuts`` run must be
byte-identical, and the fast run must actually be faster (the
regression gate; docs/PERFORMANCE.md).  Kept deliberately small so it
can run on every change::

    make bench-smoke
    # or
    PYTHONPATH=src python -m pytest benchmarks/test_bench_smoke.py -m bench_smoke -q
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.analysis.contracts import (
    CONTRACT_STATS,
    contracts,
    contracts_mode,
    use_proof_ledger,
)
from repro.core.config import VS2Config
from repro.core.pipeline import VS2Pipeline
from repro.harness import ExperimentContext, timing_table
from repro.instrument import PipelineMetrics
from repro.perf.cache import TranscriptionCache
from repro.perf.snapshot import write_snapshot
from repro.synth import generate_corpus
from repro.trace import Tracer, ledger_diff, ledger_lines, validate_chrome_trace, write_chrome_trace

from conftest import save_result

SMOKE_DOCS = 8
SMOKE_WORKERS = 2

#: Fast-path regression gate: the prefix-sum path must beat the naive
#: rescan by at least this factor on ``segment.cuts`` (measured 2–3×
#: across corpora; the loose floor absorbs machine noise while still
#: failing if the fast path silently stops being wired in).
MIN_CUTS_SPEEDUP = 1.3


def _paired_ledger_run(dataset: str, n_docs: int):
    """Run ``n_docs`` of ``dataset`` through the pipeline twice — fast
    and naive cut search — sharing one transcription cache so both see
    byte-identical observed documents.  Returns per-variant canonical
    ledgers and ``segment.cuts`` seconds."""
    corpus = generate_corpus(dataset, n=n_docs, seed=0)
    cache = TranscriptionCache()
    out = {}
    for fast in (True, False):
        config = VS2Config.for_dataset(dataset)
        config.segment.fast_cuts = fast
        tracer = Tracer()
        metrics = PipelineMetrics()
        pipeline = VS2Pipeline(
            dataset, config=config, cache=cache, metrics=metrics, tracer=tracer
        )
        for i, doc in enumerate(corpus):
            with tracer.span("doc", index=i, doc_id=doc.doc_id):
                pipeline.run(doc)
        out[fast] = (ledger_lines(tracer.drain()), metrics["segment.cuts"].seconds)
    return out


@pytest.mark.bench_smoke
def test_bench_smoke_fast_naive_equivalence(results_dir):
    """Acceptance gate of the fast cut path: ledger byte-identity on
    all three corpora plus the speedup floor."""
    report = []
    total_fast = total_naive = 0.0
    for dataset in ("D1", "D2", "D3"):
        runs = _paired_ledger_run(dataset, n_docs=4)
        fast_ledger, fast_s = runs[True]
        naive_ledger, naive_s = runs[False]
        assert fast_ledger, f"{dataset}: no cut.decision events traced"
        diff = ledger_diff(naive_ledger, fast_ledger, "naive-cuts", "fast-cuts")
        assert not diff, (
            f"{dataset}: fast and naive cut decisions diverge:\n"
            + "\n".join(diff[:40])
        )
        total_fast += fast_s
        total_naive += naive_s
        report.append(
            f"{dataset}: {len(fast_ledger)} decisions identical; "
            f"segment.cuts fast={fast_s:.3f}s naive={naive_s:.3f}s"
        )
    speedup = total_naive / total_fast if total_fast > 0 else float("inf")
    report.append(f"TOTAL segment.cuts speedup: {speedup:.2f}x (gate {MIN_CUTS_SPEEDUP}x)")
    save_result(results_dir, "bench_smoke_equivalence", "\n".join(report))
    assert speedup >= MIN_CUTS_SPEEDUP, (
        f"segment.cuts fast path regressed: {speedup:.2f}x < {MIN_CUTS_SPEEDUP}x "
        f"(fast={total_fast:.3f}s naive={total_naive:.3f}s)"
    )


@pytest.mark.bench_smoke
def test_bench_smoke_contract_overhead(results_dir):
    """Contract-mode overhead before/after proof-ledger skipping.

    ``pareto_front``'s post-condition is a brute-force O(n²·d)
    re-derivation — comparable in cost to the function itself — and the
    committed ledger discharges the site (PROVED lemmas + the reviewed
    ``# proof: assumed``).  A ledger-armed run must therefore return
    identical results while measurably undercutting the full-check run.
    """
    from repro.optimize.pareto import pareto_front

    ledger = pathlib.Path(__file__).resolve().parents[1] / "proof_ledger.json"
    assert ledger.is_file(), "committed proof ledger missing"
    points = [((i * 37) % 101, (i * 53) % 97, (i * 11) % 89) for i in range(150)]
    reps = 6

    def timed():
        start = time.perf_counter()
        for _ in range(reps):
            front = pareto_front(points)
        return front, time.perf_counter() - start

    with contracts():
        checked_before = CONTRACT_STATS["checked"]
        front_checked, t_checked = timed()
        assert CONTRACT_STATS["checked"] - checked_before == reps
        assert use_proof_ledger(str(ledger)), "ledger did not load"
        try:
            assert contracts_mode() == "ledger-skip"
            skipped_before = CONTRACT_STATS["skipped"]
            front_skip, t_skip = timed()
            assert CONTRACT_STATS["skipped"] - skipped_before == reps
        finally:
            use_proof_ledger(None)

    assert front_skip == front_checked, "ledger skipping changed the result"
    save_result(
        results_dir,
        "bench_smoke_contract_overhead",
        (
            f"pareto_front x{reps} (n=150, d=3): "
            f"checked={t_checked:.4f}s ledger-skip={t_skip:.4f}s "
            f"({t_checked / t_skip:.2f}x)"
            if t_skip > 0
            else "degenerate timing"
        ),
    )
    # Loose gate: skipping must not be slower (the check costs about as
    # much as the function; measured ~2x, the floor absorbs noise).
    assert t_skip < t_checked, (
        f"ledger skipping did not reduce contract overhead: "
        f"checked={t_checked:.4f}s skip={t_skip:.4f}s"
    )


@pytest.mark.bench_smoke
def test_bench_smoke_pipeline(results_dir):
    tracer = Tracer()
    ctx = ExperimentContext({"D2": SMOKE_DOCS}, seed=0)
    outcome = ctx.run_pipeline("D2", workers=SMOKE_WORKERS, tracer=tracer)

    assert not outcome.failures, [str(f) for f in outcome.failures]
    assert len(outcome.ok) == SMOKE_DOCS
    for stage in ("ocr", "deskew", "segment", "select"):
        assert outcome.metrics[stage].calls > 0, f"stage {stage} not recorded"
        assert outcome.metrics[stage].p95_ms is not None, f"stage {stage} has no histogram"

    snapshot_path = write_snapshot(
        results_dir / "BENCH_pipeline.json",
        outcome.metrics,
        contracts=contracts_mode(),
        dataset="D2",
        n_docs=SMOKE_DOCS,
        workers=SMOKE_WORKERS,
        seed=0,
        failures=len(outcome.failures),
    )
    assert "p95" in snapshot_path.read_text() or "hist" in snapshot_path.read_text()

    # The smoke bench doubles as the trace exporter's schema check:
    # normalised so the artefact is diffable across machines.
    trace_path = write_chrome_trace(
        results_dir / "BENCH_pipeline_trace.json", tracer.drain(), normalize=True
    )
    assert validate_chrome_trace(trace_path) > 0

    save_result(
        results_dir,
        "bench_smoke",
        timing_table(outcome.metrics, title="Pipeline per-stage timing (smoke)").format(),
    )

    # Run-health gate: append this run to the bench history and judge
    # it against the recorded trajectory (docs/OBSERVABILITY.md).  With
    # too little history the verdict passes vacuously, so a fresh
    # checkout is never blocked.
    from repro.obs import (
        append_history,
        evaluate,
        format_verdict,
        history_record,
        load_history,
    )

    history_path = results_dir / "BENCH_history.jsonl"
    append_history(
        history_path,
        history_record(
            outcome.metrics,
            dataset="D2",
            n_docs=SMOKE_DOCS,
            workers=SMOKE_WORKERS,
            seed=0,
            failures=len(outcome.failures),
        ),
    )
    records = [
        r for r in load_history(history_path)
        if r.get("meta", {}).get("dataset") == "D2"
    ]
    verdict = evaluate(records[-1], records[:-1][-20:])
    save_result(results_dir, "bench_smoke_health", format_verdict(verdict))
    assert verdict.ok, "run-health SLO verdict failed:\n" + format_verdict(verdict)
