"""Perf-trajectory smoke bench (``bench_smoke`` marker).

Runs one tiny corpus through the instrumented parallel runner and
writes ``benchmarks/results/BENCH_pipeline.json`` — the per-stage
timing snapshot future PRs diff against (docs/PROFILING.md).  Kept
deliberately small so it can run on every change::

    make bench-smoke
    # or
    PYTHONPATH=src python -m pytest benchmarks/test_bench_smoke.py -m bench_smoke -q
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentContext, timing_table
from repro.perf.snapshot import write_snapshot
from repro.trace import Tracer, validate_chrome_trace, write_chrome_trace

from conftest import save_result

SMOKE_DOCS = 8
SMOKE_WORKERS = 2


@pytest.mark.bench_smoke
def test_bench_smoke_pipeline(results_dir):
    tracer = Tracer()
    ctx = ExperimentContext({"D2": SMOKE_DOCS}, seed=0)
    outcome = ctx.run_pipeline("D2", workers=SMOKE_WORKERS, tracer=tracer)

    assert not outcome.failures, [str(f) for f in outcome.failures]
    assert len(outcome.ok) == SMOKE_DOCS
    for stage in ("ocr", "deskew", "segment", "select"):
        assert outcome.metrics[stage].calls > 0, f"stage {stage} not recorded"
        assert outcome.metrics[stage].p95_ms is not None, f"stage {stage} has no histogram"

    snapshot_path = write_snapshot(
        results_dir / "BENCH_pipeline.json",
        outcome.metrics,
        dataset="D2",
        n_docs=SMOKE_DOCS,
        workers=SMOKE_WORKERS,
        seed=0,
        failures=len(outcome.failures),
    )
    assert "p95" in snapshot_path.read_text() or "hist" in snapshot_path.read_text()

    # The smoke bench doubles as the trace exporter's schema check:
    # normalised so the artefact is diffable across machines.
    trace_path = write_chrome_trace(
        results_dir / "BENCH_pipeline_trace.json", tracer.drain(), normalize=True
    )
    assert validate_chrome_trace(trace_path) > 0

    save_result(
        results_dir,
        "bench_smoke",
        timing_table(outcome.metrics, title="Pipeline per-stage timing (smoke)").format(),
    )
