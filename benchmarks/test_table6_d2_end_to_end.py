"""Table 6 — end-to-end VS2 on D2, per entity, ΔF1 vs text-only.

Paper shape: overall ΔF1 ≈ +5 with the visually salient entities
(Event Organizer, Event Title) gaining the most; Event Time /
Description gains are marginal because their text-only patterns
(regexes, verbose blocks) already localise well.
"""

from conftest import save_result

from repro.harness import table6


def test_table6(benchmark, ctx, results_dir):
    table = benchmark.pedantic(lambda: table6(ctx), rounds=1, iterations=1)
    save_result(results_dir, "table6", table.format())

    overall = table.rows[-1]
    assert overall["Named Entity"] == "Overall"
    assert overall["Pr"] >= 0.75 and overall["Rec"] >= 0.75
    # VS2 improves on the text-only baseline overall.
    assert overall["dF1"] > 0.0

    # The visually salient organizer gains from the visual treatment
    # (the paper's +10.5 headline) and no entity loses badly.  Exact
    # per-entity ΔF1 ordering is sample-noise-sensitive at bench scale,
    # so only the signs are asserted here; see EXPERIMENTS.md for the
    # measured ordering at larger corpus sizes.
    organizer = table.value("Named Entity", "Event Organizer", "dF1")
    assert organizer > 0.0
    for row in table.rows[:-1]:
        assert row["dF1"] >= -0.05, row
