"""Table 8 — end-to-end VS2 on D3, per entity, ΔF1 vs text-only.

Paper shape: Broker Name (the most visually salient entity) gains the
most (Δ+10.18); regex-friendly singletons (phone/email) and the verbose
description gain little; the improvement is statistically significant
(paired t-test, §6.4).
"""

from conftest import save_result

from repro.harness import table8


def test_table8(benchmark, ctx, results_dir):
    table = benchmark.pedantic(lambda: table8(ctx), rounds=1, iterations=1)
    save_result(results_dir, "table8", table.format())

    overall = table.rows[-1]
    assert overall["Pr"] >= 0.85 and overall["Rec"] >= 0.85
    assert overall["dF1"] > 0.0

    name_gain = table.value("Named Entity", "Broker Name", "dF1")
    email_gain = table.value("Named Entity", "Broker Email", "dF1")
    desc_gain = table.value("Named Entity", "Property Desc.", "dF1")
    assert name_gain > email_gain  # visual salience is where VS2 wins
    assert name_gain > desc_gain
    # §6.4: the improvement over text-only is significant on D3.
    assert any("significant" in n and "not significant" not in n for n in table.notes)
