"""Figures 4 & 6 — layout model, logical blocks and interest points.

Renders a poster's layout tree (Fig. 4) and its logical blocks with the
interest points highlighted (Fig. 6), and asserts their structural
properties: a proper hierarchy, one block per annotated visual area
(within slack), and a non-trivial Pareto-front subset.
"""

from conftest import save_result

from repro.core import VS2Segmenter
from repro.core.interest_points import select_interest_points
from repro.harness import figure4_and_6


def test_fig4_and_6(benchmark, ctx, results_dir):
    fig = benchmark.pedantic(lambda: figure4_and_6(ctx, doc_index=0), rounds=1, iterations=1)
    save_result(results_dir, "fig4_6", fig.format())

    cleaned = ctx.cleaned("D2")[0]
    tree = VS2Segmenter().segment(cleaned.observed)
    tree.validate_nesting()
    blocks = [b for b in tree.logical_blocks() if b.text_atoms]
    n_entities = len(cleaned.original.annotations)
    # block count tracks the annotated visual areas (±2 slack)
    assert n_entities - 1 <= len(blocks) <= n_entities + 3

    interest = select_interest_points(blocks)
    assert 1 <= len(interest) <= len(blocks)
    # the tall title block is always visually salient
    tallest = max(blocks, key=lambda b: b.bbox.h)
    assert tallest in interest
