"""Extending VS2 to a new extraction task (the paper's P1.2 claim).

§1 requires "robustness i.e., flexibility to be extended for different
extraction tasks".  This script defines a *new* named entity — the
ticket price on event posters — as a custom syntactic pattern, plugs it
into VS2-Select alongside the stock vocabulary, and extracts it without
touching library code.

It also demonstrates the second extension axis: swapping the curated
patterns for patterns *mined from a holdout corpus* (distant
supervision), as §5.2.1 describes.

Run:  python examples/custom_extraction_task.py
"""

import re
from typing import List

from repro.core import VS2Segmenter, VS2Selector
from repro.core.holdout import build_holdout_corpus
from repro.core.patterns import (
    CURATED_PATTERNS,
    PatternMatch,
    SyntacticPattern,
    learn_patterns_from_holdout,
)
from repro.doc import Annotation, Document, TextElement
from repro.geometry import BBox
from repro.ocr import OcrEngine, deskew
from repro.synth import generate_corpus
from repro.synth.layout import TextStyle, layout_line

PRICE_RE = re.compile(r"(?:\$\s?\d+(?:\.\d{2})?|free admission|free entry)", re.I)


def match_price(text: str) -> List[PatternMatch]:
    return [
        PatternMatch(m.group(0), m.start(), m.end(), 0.9)
        for m in PRICE_RE.finditer(text)
    ]


def poster_with_price(seed: int = 5) -> Document:
    doc = generate_corpus("D2", n=1, seed=seed)[0]
    style = TextStyle(18.0)
    elements, box = layout_line("Tickets: $15 at the door", 80, doc.height - 80, style)
    doc.elements.extend(elements)
    doc.annotations.append(Annotation("ticket_price", "$15", box))
    return doc


def main() -> None:
    doc = poster_with_price()
    engine = OcrEngine(seed=7)
    observed, _ = deskew(engine.transcribe(doc).as_document(doc))

    # --- extension 1: add a brand-new entity to the vocabulary --------
    patterns = {e: CURATED_PATTERNS[e] for e in (
        "event_title", "event_time", "event_place", "event_organizer", "event_description",
    )}
    patterns["ticket_price"] = SyntacticPattern("price-regex", match_price, "chunk")

    segmenter = VS2Segmenter()
    blocks = segmenter.segment(observed).logical_blocks()
    selector = VS2Selector("D2", patterns=patterns)
    extracted = {e.entity_type: e.text for e in selector.extract(observed, blocks)}
    print("custom vocabulary extraction:")
    for key in sorted(extracted):
        print(f"   {key:18s} -> {extracted[key][:56]!r}")
    assert "ticket_price" in extracted, "custom entity not extracted"

    # --- extension 2: mined patterns instead of curated ones ----------
    print("\nmining patterns from the holdout corpus (distant supervision)...")
    holdout = build_holdout_corpus("D2", max_entries_per_entity=16)
    mined = learn_patterns_from_holdout(holdout)
    mined_selector = VS2Selector("D2", patterns={"event_time": mined["event_time"]})
    mined_out = mined_selector.extract(observed, blocks)
    for e in mined_out:
        print(f"   mined {e.entity_type:12s} -> {e.text[:56]!r}")


if __name__ == "__main__":
    main()
