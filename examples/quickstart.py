"""Quickstart: extract named entities from a visually rich document.

Generates one synthetic event poster, runs the full VS2 pipeline
(clean → OCR → VS2-Segment → VS2-Select) and prints the extracted
key-value pairs next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import VS2Pipeline
from repro.doc.render import ascii_render
from repro.synth import generate_corpus


def main() -> None:
    # A corpus of synthetic event posters (the D2 stand-in).
    corpus = generate_corpus("D2", n=3, seed=42)
    doc = corpus[0]
    print(f"document {doc.doc_id}: {doc.source} capture, "
          f"{len(doc.text_elements)} words, {len(doc.annotations)} annotated entities\n")

    # The whole pipeline in two lines.
    pipeline = VS2Pipeline("D2")
    result = pipeline.run(doc)

    print("--- extracted key-value pairs ---")
    truth = {a.entity_type: a.text for a in doc.annotations}
    for key, value in sorted(result.as_key_values().items()):
        print(f"  {key:18s} -> {value[:60]!r}")
        print(f"  {'(ground truth)':18s}    {truth.get(key, '')[:60]!r}")

    print(f"\n--- {len(result.blocks)} logical blocks "
          f"(layout tree height {result.tree.height}) ---")
    blocks = [b for b in result.blocks if b.text_atoms]
    print(ascii_render(result.observed, [b.bbox for b in blocks], cols=88, rows=36))


if __name__ == "__main__":
    main()
