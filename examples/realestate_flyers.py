"""Batch IE over real-estate flyers and semantic queries on the result.

The paper frames VS2's output as "a list of key-value pairs [that] can
be loaded into a database after schema mapping ... it also offers the
capability to perform rich semantic queries" (§1).  This script runs
the pipeline over a D3 corpus, loads the extractions into an in-memory
table, evaluates against ground truth, and answers two semantic queries
no full-text search could.

Run:  python examples/realestate_flyers.py
"""

import re
from typing import Dict, List, Optional

from repro.core import VS2Pipeline
from repro.eval.metrics import end_to_end_scores
from repro.synth import generate_corpus


def parse_sqft(size_text: str) -> Optional[int]:
    """Schema mapping: normalise a size string to square feet."""
    text = size_text.lower().replace(",", "")
    m = re.search(r"([\d.]+)\s*(sqft|square feet|sq)", text)
    if m:
        return int(float(m.group(1)))
    m = re.search(r"([\d.]+)\s*acres?", text)
    if m:
        return int(float(m.group(1)) * 43560)
    return None


def main() -> None:
    corpus = generate_corpus("D3", n=25, seed=11)
    pipeline = VS2Pipeline("D3")

    table: List[Dict[str, str]] = []
    results = []
    for doc in corpus:
        result = pipeline.run(doc)
        results.append((result.extractions, doc))
        row = {"doc_id": doc.doc_id, **result.as_key_values()}
        table.append(row)

    overall, per_entity = end_to_end_scores(results)
    print(f"extracted {sum(len(r) for r, _ in results)} fields from {len(corpus)} flyers")
    print(f"end-to-end P={overall.precision:.2%} R={overall.recall:.2%}\n")
    for entity, prf in sorted(per_entity.items()):
        print(f"   {entity:22s} P={prf.precision:6.2%} R={prf.recall:6.2%}")

    # -- semantic query 1: listings larger than 5,000 sqft --------------
    print("\nquery 1: listings over 5,000 sqft")
    for row in table:
        sqft = parse_sqft(row.get("property_size", ""))
        if sqft and sqft > 5000:
            print(f"   {row['doc_id']}: {row.get('property_size')!r} "
                  f"at {row.get('property_address', '?')[:40]!r}")

    # -- semantic query 2: broker contact sheet --------------------------
    print("\nquery 2: broker contact sheet (name + phone)")
    for row in table[:8]:
        print(f"   {row.get('broker_name', '?'):28s} {row.get('broker_phone', '?')}")


if __name__ == "__main__":
    main()
