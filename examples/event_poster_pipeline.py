"""The paper's running example (Example 1.1 / Fig. 2), step by step.

Alice wants {Event Title, Event Organizer} from a pile of event
posters.  This script walks one mobile capture through every stage of
VS2 and contrasts the outcome with the text-only approach the paper's
introduction critiques:

1. cleaning (skew correction) and OCR transcription;
2. the text-only view: whole-page reading order + NER candidate flood;
3. VS2-Segment: the layout tree and its logical blocks;
4. interest points (Pareto front);
5. VS2-Select: pattern search per block + multimodal disambiguation.

Run:  python examples/event_poster_pipeline.py
"""

import math

from repro.core import VS2Segmenter, VS2Selector
from repro.core.interest_points import select_interest_points
from repro.nlp.ner import recognize_entities
from repro.ocr import OcrEngine, deskew
from repro.synth import generate_corpus


def main() -> None:
    corpus = generate_corpus("D2", n=12, seed=7)
    doc = next(d for d in corpus if d.source == "mobile")
    wanted = {"event_title", "event_organizer"}
    truth = {a.entity_type: a.text for a in doc.annotations if a.entity_type in wanted}
    print(f"Alice's poster: {doc.doc_id} (mobile capture)\n")

    # -- step 1: clean + transcribe ------------------------------------
    engine = OcrEngine(seed=7)
    ocr = engine.transcribe(doc)
    observed, angle = deskew(ocr.as_document(doc))
    print(f"step 1: OCR produced {len(ocr.words)} words; "
          f"estimated skew {math.degrees(angle):.1f} deg\n")

    # -- step 2: what a text-only system sees --------------------------
    transcription = ocr.full_text()
    print("step 2: whole-page reading order (text-only view):")
    for line in transcription.splitlines():
        print(f"   | {line}")
    candidates = [
        e for e in recognize_entities(transcription)
        if e.label in ("PERSON", "ORGANIZATION")
    ]
    print(f"   -> {len(candidates)} Person/Organization candidates for ONE organizer:")
    for e in candidates:
        print(f"      [{e.label}] {e.text!r}")

    # -- step 3: VS2-Segment -------------------------------------------
    segmenter = VS2Segmenter()
    tree = segmenter.segment(observed)
    blocks = tree.logical_blocks()
    textual = [b for b in blocks if b.text_atoms]
    print(f"\nstep 3: VS2-Segment found {len(textual)} logical blocks "
          f"(tree height {tree.height}):")
    for i, b in enumerate(textual):
        print(f"   block[{i}] h={b.bbox.h:5.1f} {b.text()[:58]!r}")

    # -- step 4: interest points ----------------------------------------
    interest = select_interest_points(textual)
    print(f"\nstep 4: {len(interest)} interest points (first-order Pareto front):")
    for b in interest:
        print(f"   * {b.text()[:58]!r}")

    # -- step 5: VS2-Select ----------------------------------------------
    selector = VS2Selector("D2")
    extractions = [e for e in selector.extract(observed, blocks) if e.entity_type in wanted]
    print("\nstep 5: VS2-Select extractions vs ground truth:")
    for e in extractions:
        print(f"   {e.entity_type:16s} -> {e.text[:50]!r}")
        print(f"   {'(truth)':16s}    {truth.get(e.entity_type, '')[:50]!r}")


if __name__ == "__main__":
    main()
