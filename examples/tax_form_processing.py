"""Structured form processing: the D1 task at batch scale.

Runs the pipeline over scanned 1988-package tax forms: identifies each
document's form face from its title, extracts every filled field by
(OCR-tolerant) descriptor matching within the segmented rows, and
reports per-face accuracy — the regime where VS2's two-phase design
reaches ~95/98 P/R in the paper.

Run:  python examples/tax_form_processing.py
"""

from collections import defaultdict

from repro.core import VS2Pipeline
from repro.eval.metrics import PRF, match_extractions
from repro.synth import generate_corpus
from repro.synth.tax_forms import form_faces


def main() -> None:
    corpus = generate_corpus("D1", n=20, seed=3)
    pipeline = VS2Pipeline("D1")
    faces = {f.face_id: f for f in form_faces()}

    per_face: dict = defaultdict(PRF)
    overall = PRF()
    for doc in corpus:
        result = pipeline.run(doc)
        scores = match_extractions(result.extractions, doc.annotations)
        doc_prf = PRF()
        for prf in scores.values():
            doc_prf.add(PRF(prf.tp, prf.fp, prf.fn))
        face_id = doc.metadata["face"]
        per_face[face_id].add(PRF(doc_prf.tp, doc_prf.fp, doc_prf.fn))
        overall.add(PRF(doc_prf.tp, doc_prf.fp, doc_prf.fn))

    print(f"processed {len(corpus)} forms over {len(per_face)} of 20 faces")
    print(f"overall field extraction: P={overall.precision:.2%} R={overall.recall:.2%}\n")
    for face_id, prf in sorted(per_face.items()):
        title = faces[face_id].title
        print(f"   face {face_id:2d} {title[:44]:44s} "
              f"P={prf.precision:6.2%} R={prf.recall:6.2%} ({prf.tp} fields)")

    # Show a filled record for one document.
    sample = pipeline.run(corpus[0])
    print(f"\nsample record from {corpus[0].doc_id} (first 10 fields):")
    for key, value in list(sorted(sample.as_key_values().items()))[:10]:
        face_id = int(key.split(":")[1])
        line_no = int(key.split(":")[2])
        descriptor = next(
            f.descriptor for f in faces[face_id].fields if f.entity_type == key
        )
        print(f"   {descriptor[:38]:38s} = {value!r}")


if __name__ == "__main__":
    main()
