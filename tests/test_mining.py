"""Frequent subtree mining (TreeMiner role)."""

import pytest
from hypothesis import given, strategies as st

from repro.mining import (
    MiningTree,
    contains_subtree,
    decode_tree,
    encode_tree,
    mine_frequent_subtrees,
    maximal_patterns,
)
from repro.mining.trees import contains_encoded, encode_from_arrays
from repro.mining.treeminer import mine_maximal_subtrees
from repro.nlp.parse import parse_sentence


def t(encoding: str) -> MiningTree:
    return decode_tree(encoding.split())


class TestEncoding:
    def test_roundtrip(self):
        enc = "S NP DT -1 NN -1 -1 VP VB -1 -1".split()
        assert list(decode_tree(enc).encode()) == enc

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            decode_tree("A B -1 -1 -1".split())

    def test_multi_root_rejected(self):
        with pytest.raises(ValueError):
            decode_tree("A -1 B".split())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            decode_tree([])

    def test_parent_ordering_enforced(self):
        with pytest.raises(ValueError):
            MiningTree(["a", "b"], [1, -1])

    def test_encode_parse_node(self):
        tree = parse_sentence("hosted by Smith")
        enc = encode_tree(tree)
        assert enc[0] == "S"
        decode_tree(enc)  # must parse back

    @given(st.recursive(st.just([]), lambda kids: st.lists(kids, max_size=3), max_leaves=10))
    def test_random_tree_roundtrip(self, shape):
        labels, parents = ["R"], [-1]

        def build(children, parent):
            for child in children:
                labels.append(f"n{len(labels)}")
                parents.append(parent)
                build(child, len(labels) - 1)

        build(shape, 0)
        enc = encode_from_arrays(labels, parents)
        back = decode_tree(enc)
        assert back.labels == labels
        assert back.parents == parents


class TestContainment:
    def test_induced_requires_direct_edges(self):
        tree = t("S NP DT -1 NN -1 -1 -1")
        assert contains_subtree(tree, t("NP NN -1 -1"))
        assert not contains_subtree(tree, t("S NN -1 -1"))

    def test_embedded_allows_ancestor_edges(self):
        tree = t("S NP DT -1 NN -1 -1 -1")
        assert contains_subtree(tree, t("S NN -1 -1"), embedded=True)

    def test_order_preserved(self):
        tree = t("S A -1 B -1 -1")
        assert contains_subtree(tree, t("S A -1 B -1 -1"))
        assert not contains_subtree(tree, t("S B -1 A -1 -1"))

    def test_gaps_allowed(self):
        tree = t("S A -1 X -1 B -1 -1")
        assert contains_subtree(tree, t("S A -1 B -1 -1"))

    def test_embedded_siblings_stay_disjoint(self):
        # pattern needs TWO 'a' descendants in order; tree has only one.
        tree = t("S P a -1 -1 -1")
        assert not contains_subtree(tree, t("S a -1 a -1 -1"), embedded=True)

    def test_single_node(self):
        assert contains_encoded("S NP -1 -1".split(), ["NP"])


class TestMining:
    def db(self):
        return [
            t("S NP DT -1 NN -1 -1 VP VB -1 -1"),
            t("S NP NN -1 -1 VP VB -1 RB -1 -1"),
            t("S NP JJ -1 NN -1 -1 VP VB -1 -1"),
        ]

    def test_support_counts_transactions(self):
        patterns = mine_frequent_subtrees(self.db(), min_support=3)
        by_enc = {p.encoding: p.support for p in patterns}
        assert by_enc[("NN",)] == 3
        assert by_enc[("S", "NP", "-1", "VP", "-1")] == 3

    def test_min_support_filters(self):
        patterns = mine_frequent_subtrees(self.db(), min_support=3)
        assert all(p.support >= 3 for p in patterns)
        encodings = {p.encoding for p in patterns}
        assert ("DT",) not in encodings  # support 1

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            mine_frequent_subtrees(self.db(), min_support=0)

    def test_every_mined_pattern_occurs(self):
        db = self.db()
        for p in mine_frequent_subtrees(db, min_support=2):
            hits = sum(1 for tree in db if contains_subtree(tree, p.tree()))
            assert hits >= p.support  # induced containment confirms counts

    def test_maximal_patterns_not_contained_in_each_other(self):
        patterns = mine_frequent_subtrees(self.db(), min_support=3)
        maximal = maximal_patterns(patterns)
        for a in maximal:
            for b in maximal:
                if a is b:
                    continue
                if len(b.tree()) > len(a.tree()):
                    assert not contains_subtree(b.tree(), a.tree())

    def test_maximal_recovers_common_backbone(self):
        maximal = mine_maximal_subtrees(self.db(), min_support=3)
        encodings = {p.encoding for p in maximal}
        assert ("S", "NP", "NN", "-1", "-1", "VP", "VB", "-1", "-1") in encodings

    def test_empty_database(self):
        assert mine_frequent_subtrees([], min_support=1) == []

    def test_max_nodes_cap(self):
        patterns = mine_frequent_subtrees(self.db(), min_support=2, max_nodes=2)
        assert all(p.size <= 2 for p in patterns)

    def test_brute_force_agreement_on_labels(self):
        """Single-node pattern supports equal label transaction counts."""
        db = self.db()
        patterns = {
            p.encoding[0]: p.support
            for p in mine_frequent_subtrees(db, min_support=1, max_nodes=1)
        }
        for label, support in patterns.items():
            truth = sum(1 for tree in db if label in tree.labels)
            assert support == truth
