"""Segmentation baselines (Table 5 competitors)."""

import pytest

from repro.baselines.segmentation import (
    html_convert,
    text_cluster_blocks,
    vips_blocks,
    voronoi_blocks,
    xycut_blocks,
)
from repro.doc import Document, TextElement
from repro.eval.metrics import corpus_segmentation_scores
from repro.geometry import BBox
from repro.ocr import rotate_back


def word(text, x, y, w=40, h=12):
    return TextElement(text, BBox(x, y, w, h))


def two_blocks_doc():
    elements = [word("alpha", 10, 10), word("beta", 60, 10)]
    elements += [word("gamma", 10, 200), word("delta", 60, 200)]
    return Document("b", 300, 300, elements=elements)


class TestXYCut:
    def test_splits_stacked_blocks(self):
        assert len(xycut_blocks(two_blocks_doc())) == 2

    def test_splits_columns(self):
        doc = Document(
            "c", 500, 100,
            elements=[word("l", 10, 10), word("r", 300, 10)],
        )
        assert len(xycut_blocks(doc)) == 2

    def test_ignores_small_gaps(self):
        doc = Document(
            "d", 300, 100,
            elements=[word("a", 10, 10), word("b", 10, 26)],  # 4px gap
        )
        assert len(xycut_blocks(doc)) == 1

    def test_empty(self):
        assert xycut_blocks(Document("e", 10, 10)) == []


class TestVoronoi:
    def test_splits_blocks(self):
        doc = two_blocks_doc()
        doc.elements += [word("w", 110, 10), word("x", 110, 200)]
        blocks = voronoi_blocks(doc)
        assert len(blocks) == 2

    def test_tiny_doc_single_block(self):
        doc = Document("t", 100, 100, elements=[word("a", 0, 0), word("b", 50, 0)])
        assert len(voronoi_blocks(doc)) == 1


class TestTextClusters:
    def test_returns_boxes(self):
        blocks = text_cluster_blocks(two_blocks_doc())
        assert blocks and all(b.area > 0 for b in blocks)

    def test_empty(self):
        assert text_cluster_blocks(Document("e", 10, 10)) == []


class TestVips:
    def test_native_html_uses_dom(self, d3_corpus):
        doc = d3_corpus[0]
        blocks = vips_blocks(doc)
        assert blocks and len(blocks) >= 4

    def test_scan_without_html_not_applicable(self, d1_corpus):
        assert vips_blocks(d1_corpus[0]) is None

    def test_pdf_converts(self, d2_corpus):
        pdf = [d for d in d2_corpus if d.source == "pdf"][0]
        blocks = vips_blocks(pdf)
        assert blocks

    def test_conversion_produces_dom(self, d2_corpus):
        pdf = [d for d in d2_corpus if d.source == "pdf"][0]
        dom = html_convert(pdf)
        assert dom is not None
        assert dom.find("body") is not None


class TestRelativeQuality:
    def test_vs2_not_worse_than_text_baseline(self, d2_cleaned):
        from repro.core import VS2Segmenter

        seg = VS2Segmenter()
        vs2_scores, text_scores = [], []
        for original, observed, angle in d2_cleaned:
            vs2 = [rotate_back(b, angle, observed) for b in seg.block_bboxes(observed)]
            txt = [rotate_back(b, angle, observed) for b in text_cluster_blocks(observed)]
            vs2_scores.append((vs2, original.annotations))
            text_scores.append((txt, original.annotations))
        assert (
            corpus_segmentation_scores(vs2_scores).f1
            > corpus_segmentation_scores(text_scores).f1
        )
