"""Non-dominated sorting and the mini-ML toolbox."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import LinearSVM, SoftmaxRegression, StandardScaler, kmeans
from repro.optimize import crowding_distance, dominates, non_dominated_sort, pareto_front

points3d = st.lists(
    st.tuples(*[st.floats(min_value=-10, max_value=10, allow_nan=False)] * 3),
    min_size=1,
    max_size=12,
)


class TestDominance:
    def test_strict(self):
        assert dominates((2, 2), (1, 1))

    def test_partial_not_dominating(self):
        assert not dominates((2, 0), (1, 1))

    def test_equal_not_dominating(self):
        assert not dominates((1, 1), (1, 1))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(1, 1)]) == [0]

    def test_dominated_excluded(self):
        front = pareto_front([(2, 2), (1, 1), (3, 0)])
        assert 0 in front and 2 in front and 1 not in front

    def test_all_on_diagonal_front(self):
        pts = [(0, 3), (1, 2), (2, 1), (3, 0)]
        assert pareto_front(pts) == [0, 1, 2, 3]

    @given(points3d)
    def test_front_members_mutually_non_dominated(self, pts):
        front = pareto_front(pts)
        assert front  # never empty for non-empty input
        for i in front:
            for j in range(len(pts)):
                assert not dominates(pts[j], pts[i])


class TestNonDominatedSort:
    def test_ranks(self):
        pts = [(2, 2), (1, 1), (0, 0)]
        fronts = non_dominated_sort(pts)
        assert fronts == [[0], [1], [2]]

    @given(points3d)
    def test_fronts_partition_everything(self, pts):
        fronts = non_dominated_sort(pts)
        flat = sorted(i for front in fronts for i in front)
        assert flat == list(range(len(pts)))

    def test_first_front_matches_pareto_front(self):
        pts = [(1, 5), (5, 1), (3, 3), (0, 0)]
        assert sorted(non_dominated_sort(pts)[0]) == sorted(pareto_front(pts))


class TestCrowding:
    def test_boundaries_infinite(self):
        d = crowding_distance([(0, 0), (1, 1), (2, 2)])
        assert d[0] == float("inf") and d[2] == float("inf")

    def test_empty(self):
        assert crowding_distance([]) == []


class TestScaler:
    def test_zero_mean_unit_std(self):
        x = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0)
        assert np.allclose(z.std(axis=0), 1)

    def test_constant_feature_safe(self):
        x = np.array([[1.0], [1.0]])
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.3, size=(40, 2))
    b = rng.normal((4, 4), 0.3, size=(40, 2))
    c = rng.normal((0, 4), 0.3, size=(40, 2))
    x = np.vstack([a, b, c])
    y = ["a"] * 40 + ["b"] * 40 + ["c"] * 40
    return x, y


class TestLinearSVM:
    def test_binary_separable(self):
        x, y = _blobs()
        mask = [label in ("a", "b") for label in y]
        xb = x[np.array(mask)]
        yb = [l for l in y if l in ("a", "b")]
        model = LinearSVM().fit(xb, yb)
        acc = np.mean([p == t for p, t in zip(model.predict(xb), yb)])
        assert acc > 0.95

    def test_multiclass(self):
        x, y = _blobs()
        model = LinearSVM().fit(x, y)
        acc = np.mean([p == t for p, t in zip(model.predict(x), y)])
        assert acc > 0.9

    def test_deterministic(self):
        x, y = _blobs()
        a = LinearSVM(seed=3).fit(x, y).weights_
        b = LinearSVM(seed=3).fit(x, y).weights_
        assert np.allclose(a, b)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((4, 2)), ["a"] * 4)

    def test_bad_c(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0)


class TestSoftmax:
    def test_multiclass(self):
        x, y = _blobs()
        model = SoftmaxRegression().fit(x, y)
        acc = np.mean([p == t for p, t in zip(model.predict(x), y)])
        assert acc > 0.9

    def test_probabilities_normalised(self):
        x, y = _blobs()
        probs = SoftmaxRegression(epochs=50).fit(x, y).predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestKMeans:
    def test_recovers_blobs_with_seeds(self):
        x, _ = _blobs()
        labels, centers = kmeans(x, 3, seeds=[0, 40, 80])
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:80])) == 1
        assert len(centers) == 3

    def test_k_clipped_to_n(self):
        labels, centers = kmeans(np.zeros((2, 2)), 5)
        assert len(centers) <= 2

    def test_empty(self):
        labels, centers = kmeans(np.zeros((0, 2)), 3)
        assert len(labels) == 0
