"""Tests for :mod:`repro.obs` — registry algebra, exporters, run health.

The contract under test is the tentpole claim of the observability
layer: a :class:`MetricRegistry` is a *mergeable* value (associative,
serialisation round-trips losslessly), the serial and parallel
execution paths produce byte-identical normalised dumps, the
``repro.resilience.*`` counters mirror the supervision ledger exactly,
the Prometheus exposition survives a parse round-trip, and an injected
p95 regression flips ``repro report`` to a non-zero exit.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument import PipelineMetrics
from repro.obs.export import (
    exposition_samples,
    parse_prometheus,
    read_metrics_jsonl,
    to_prometheus,
    validate_prometheus,
    write_metrics_jsonl,
)
from repro.obs.health import (
    DEFAULT_SLOS,
    append_history,
    evaluate,
    format_verdict,
    history_record,
    load_history,
)
from repro.obs.names import METRIC_NAMES
from repro.obs.registry import MetricRegistry, get_registry, ingest_pipeline_metrics
from repro.perf import CorpusRunner
from repro.resilience import FaultPlan, SupervisionPolicy, uninstall
from repro.synth import generate_corpus

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _clean_ambient():
    """Tests must not inherit (or leak) ambient samples or fault plans."""
    get_registry().drain()
    uninstall()
    yield
    get_registry().drain()
    uninstall()


def corpus(n: int = 4, seed: int = 3):
    return list(generate_corpus("D2", n=n, seed=seed))


# ----------------------------------------------------------------------
# Registry algebra (property-based)
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["alpha", "beta", "gamma"])
_LABELS = st.dictionaries(
    st.sampled_from(["stage", "corpus"]), st.sampled_from(["a", "b"]), max_size=2
)

_COUNTER_OPS = st.tuples(st.just("counter"), _NAMES, _LABELS, st.integers(0, 50))
_GAUGE_OPS = st.tuples(st.just("gauge"), _NAMES, _LABELS, st.integers(-5, 50))
# Histogram observations as integers too: bucket counts and integer
# sums merge associatively, so equality is exact.
_HIST_OPS = st.tuples(st.just("hist"), _NAMES, _LABELS, st.integers(0, 1 << 12))
_OPS = st.lists(st.one_of(_COUNTER_OPS, _GAUGE_OPS, _HIST_OPS), max_size=24)


def _apply(ops) -> MetricRegistry:
    reg = MetricRegistry(strict=False)
    for kind, name, labels, value in ops:
        # One registry must use each name with a single kind.
        name = f"{kind}.{name}"
        if kind == "counter":
            reg.counter(name, **labels).inc(value)
        elif kind == "gauge":
            reg.gauge(name, **labels).set_max(value)
        else:
            reg.histogram(name, **labels).observe(value)
    return reg


class TestRegistryProperties:
    @settings(max_examples=60, deadline=None)
    @given(_OPS)
    def test_dict_round_trip(self, ops):
        reg = _apply(ops)
        clone = MetricRegistry.from_dict(reg.to_dict(), strict=False)
        assert clone.to_dict() == reg.to_dict()
        assert clone.normalized_dump() == reg.normalized_dump()

    @settings(max_examples=60, deadline=None)
    @given(_OPS, _OPS, _OPS)
    def test_merge_is_associative(self, a, b, c):
        left = _apply(a).merge(_apply(b)).merge(_apply(c))
        right = _apply(a).merge(_apply(b).merge(_apply(c)))
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(_OPS, _OPS)
    def test_split_equals_whole(self, a, b):
        """Emitting in one registry == emitting in two and merging —
        the property the chunked parallel return path relies on."""
        whole = _apply(a + b)
        split = _apply(a).merge(_apply(b))
        assert split.to_dict() == whole.to_dict()

    def test_strict_rejects_undeclared_and_wrong_kind(self):
        reg = MetricRegistry()
        with pytest.raises(KeyError):
            reg.counter("repro.docs.procesed")
        with pytest.raises(TypeError):
            reg.gauge("repro.docs.processed")  # declared as a counter

    def test_drain_moves_everything(self):
        reg = MetricRegistry(strict=False)
        reg.counter("n").inc(3)
        drained = reg.drain()
        assert drained.counter("n").value == 3
        assert reg.to_dict()["metrics"] == {}


# ----------------------------------------------------------------------
# Serial vs parallel byte-identity
# ----------------------------------------------------------------------
class TestSerialParallelParity:
    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_normalized_dump_is_byte_identical(self):
        docs = corpus()
        serial = CorpusRunner("D2").run(docs)
        parallel = CorpusRunner("D2", workers=2).run(docs)
        assert (
            serial.registry.normalized_dump()
            == parallel.registry.normalized_dump()
        )

    def test_deterministic_dump_excludes_environment_metrics(self):
        outcome = CorpusRunner("D2").run(corpus())
        dump = json.loads(outcome.registry.normalized_dump())
        names = set(dump["metrics"])
        assert "repro.docs.processed" in names
        assert not any(n.startswith("repro.process.") for n in names)
        assert "repro.stage.seconds" not in names
        assert "repro.stage.latency" not in names

    def test_docs_processed_counts_the_corpus(self):
        docs = corpus()
        outcome = CorpusRunner("D2").run(docs)
        [(labels, value)] = outcome.registry.samples("repro.docs.processed")
        assert labels == {"corpus": "D2", "status": "ok"}
        assert value == len(docs)


# ----------------------------------------------------------------------
# Resilience counters mirror the supervision ledger
# ----------------------------------------------------------------------
class TestChaosCounters:
    def test_counters_match_the_ledger(self):
        docs = corpus(n=6)
        plan = FaultPlan.from_spec("ocr:flaky@0.4@attempts=1,worker:fail@doc=2", seed=3)
        runner = CorpusRunner(
            "D2",
            fault_plan=plan,
            supervision=SupervisionPolicy(backoff_base_s=0.01, backoff_cap_s=0.04),
        )
        outcome = runner.run(docs)
        report = outcome.supervision
        assert report is not None
        ledger = report.ledger()

        def total(name):
            return sum(v for _, v in outcome.registry.samples(name))

        assert total("repro.resilience.retries") == sum(
            1 for row in ledger if row["kind"] == "retry"
        )
        assert total("repro.resilience.quarantines") == len(
            report.quarantine.entries
        )
        assert total("repro.resilience.backoff_seconds") == pytest.approx(
            report.backoff_s
        )
        injected = {
            (labels["site"], labels["kind"]): v
            for labels, v in outcome.registry.samples("repro.faults.injected")
        }
        assert injected.get(("ocr.transcribe", "flaky"), 0) >= 1
        assert injected.get(("worker.chunk", "fail")) == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _populated_registry() -> MetricRegistry:
    metrics = PipelineMetrics()
    metrics.record("clean", 0.012, items=3)
    metrics.record("segment", 0.034, items=7)
    metrics.record("segment.cuts", 0.020, items=7)
    reg = MetricRegistry()
    ingest_pipeline_metrics(metrics, reg)
    reg.counter("repro.docs.processed", corpus="D2", status="ok").inc(3)
    reg.gauge("repro.process.rss_max_bytes", worker="main").set_max(1 << 20)
    return reg


class TestPrometheusExport:
    def test_parse_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "metrics.prom"
        path.write_text(to_prometheus(reg), encoding="utf-8")
        assert validate_prometheus(path) > 0
        assert parse_prometheus(path.read_text()) == sorted(exposition_samples(reg))

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        reg = _populated_registry()
        buckets = sorted(
            (labels, v)
            for name, labels, v in exposition_samples(reg)
            if name == "repro_stage_latency_bucket"
            and dict(labels).get("stage") == "segment"
        )
        values = [v for _, v in buckets]
        assert values == sorted(values)  # cumulative
        assert any(dict(l).get("le") == "+Inf" for l, _ in buckets)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not an exposition\n")

    def test_label_values_escape_per_exposition_format(self):
        # Exposition format 0.0.4: backslash, double quote and newline
        # must be escaped in label values — including the nasty cases
        # (a literal backslash-n, a trailing backslash, a quote).
        reg = MetricRegistry()
        for corpus in ('back\\slash', 'quo"te', 'new\nline', 'literal\\n', 'trail\\'):
            reg.counter("repro.docs.processed", corpus=corpus, status="ok").inc()
        text = to_prometheus(reg)
        assert 'corpus="back\\\\slash"' in text
        assert 'corpus="quo\\"te"' in text
        assert 'corpus="new\\nline"' in text
        assert 'corpus="literal\\\\n"' in text
        assert "\n".join(  # no raw newline ever splits a sample line
            line for line in text.splitlines() if "new" in line
        ).count("repro_docs_processed") == 1
        assert parse_prometheus(text) == sorted(exposition_samples(reg))

    def test_escaped_label_round_trip_recovers_exact_values(self):
        reg = MetricRegistry()
        reg.counter("repro.docs.processed", corpus='a\\"b\nc\\n', status="ok").inc(2)
        parsed = parse_prometheus(to_prometheus(reg))
        labels = [dict(ls) for _, ls, _ in parsed]
        assert {"corpus": 'a\\"b\nc\\n', "status": "ok"} in labels

    def test_jsonl_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(path, reg)
        loaded = read_metrics_jsonl(path)
        assert loaded.to_dict() == reg.to_dict()


# ----------------------------------------------------------------------
# Run health: history + SLO verdicts
# ----------------------------------------------------------------------
def _metrics(p95_scale: float = 1.0) -> PipelineMetrics:
    metrics = PipelineMetrics()
    for _ in range(20):
        metrics.record("segment", 0.010 * p95_scale, items=1)
        metrics.record("clean", 0.005, items=1)
    metrics.record("corpus", 0.4 * p95_scale)
    return metrics


def _record(p95_scale: float = 1.0, **totals):
    return history_record(
        _metrics(p95_scale), dataset="D2", n_docs=20, workers=1, seed=3, **totals
    )


class TestRunHealth:
    def test_healthy_run_passes(self):
        history = [_record(), _record()]
        verdict = evaluate(_record(), history)
        assert verdict.ok and verdict.baseline_runs == 2
        assert "PASS" in format_verdict(verdict)

    def test_injected_p95_regression_fails(self):
        history = [_record(), _record()]
        verdict = evaluate(_record(p95_scale=10.0), history)
        assert not verdict.ok
        bad = [r for r in verdict.rows if not r.ok]
        assert any(r.rule_id == "SLO-P95" for r in bad)

    def test_failure_rate_cap(self):
        verdict = evaluate(_record(failures=15), [_record(), _record()])
        assert any(r.rule_id == "SLO-FAILRATE" and not r.ok for r in verdict.rows)

    def test_too_little_history_is_not_a_failure(self):
        verdict = evaluate(_record(p95_scale=10.0), [_record()])
        assert verdict.baseline_runs == 1
        assert all(r.ok for r in verdict.rows if r.rule_id == "SLO-P95")

    def test_history_file_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, _record())
        append_history(path, _record())
        assert len(load_history(path)) == 2
        with pytest.raises(ValueError):
            append_history(path, {"schema": "something/else"})

    def test_report_cli_exits_nonzero_on_regression(self, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "hist.jsonl"
        append_history(path, _record())
        append_history(path, _record())
        append_history(path, _record())
        assert main(["report", "--history", str(path)]) == 0
        append_history(path, _record(p95_scale=10.0))
        assert main(["report", "--history", str(path)]) == 1

    def test_report_cli_without_history_exits_two(self, tmp_path):
        from repro.__main__ import main

        assert main(["report", "--history", str(tmp_path / "none.jsonl")]) == 2

    def test_default_slos_cover_all_kinds(self):
        assert {r.kind for r in DEFAULT_SLOS} == {
            "p95_ceiling",
            "throughput_floor",
            "failure_rate_cap",
            "quarantine_rate_cap",
        }
