"""CONC103 fixture: a pool forked after a thread is (transitively)
started.

``serve`` never mentions ``Thread`` — the start is two calls away in
``repro.perf.watch`` — so only the combination of the intra-function
may-happen-before relation and the transitive call-graph facts can see
the ordering hazard.  ``serve_safe`` creates the pool first.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.perf.watch import start_watcher


def serve(docs, run):
    start_watcher()
    pool = ProcessPoolExecutor(2)
    try:
        return list(pool.map(run, docs))
    finally:
        pool.shutdown()


def serve_safe(docs, run):
    pool = ProcessPoolExecutor(2)
    try:
        start_watcher()
        return list(pool.map(run, docs))
    finally:
        pool.shutdown()
