"""CONC103 fixture: the thread start hides inside a helper."""

from threading import Thread


def _poll():
    return None


def start_watcher():
    t = Thread(target=_poll)
    t.start()
