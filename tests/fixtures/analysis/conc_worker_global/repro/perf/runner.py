"""CONC101 fixture: the worker entry that makes the write reachable."""

from repro.core.cache import warm_cache


def _init_worker(config):
    warm_cache(config)
