"""CONC101 fixture: module-level cache written through a local alias.

``warm_cache`` itself looks innocent to a per-file rule — the write
goes through ``cache``, a local name — and nothing in *this* file says
it runs inside a forked worker.  Only the whole-program pass sees both
facts at once.
"""

_CACHE = {}


def warm_cache(config):
    cache = _CACHE
    cache.update(config)
