"""EXC101 fixture: a typed fault raised deep inside a stage.

``TransientFault`` is a stand-in for the injected fault types (the
pass matches by leaf name so the fixture stays self-contained).
"""


class TransientFault(RuntimeError):
    pass


def cut_region(region):
    if region is None:
        raise TransientFault("injected")
    return region
