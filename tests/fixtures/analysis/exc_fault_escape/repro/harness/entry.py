"""EXC101 fixture: two API roots, one leaky and one guarded.

``segment_all`` lets the fault out — it is a call-graph root and not a
registered isolation site, so the pass blames it with the full path.
``segment_guarded`` catches the type at the boundary and must stay
clean: the escape analysis has to respect the handler, not just the
call edge.
"""

from repro.core.stage import TransientFault, cut_region


def segment_all(regions):
    return [cut_region(r) for r in regions]


def segment_guarded(regions):
    try:
        return [cut_region(r) for r in regions]
    except TransientFault:
        return []
