"""Emits one registered event and one typo'd, unregistered one."""


def run(tracer, depth):
    tracer.event("cut.decision", depth=depth)
    tracer.event("cut.descision", depth=depth)
