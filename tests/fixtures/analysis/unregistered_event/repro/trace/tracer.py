"""Schema-pass fixture registry: one live name, one stale name."""

EVENT_NAMES = frozenset({"cut.decision", "ocr.retry"})
