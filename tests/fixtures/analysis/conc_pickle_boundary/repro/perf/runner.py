"""CONC102 fixture: a lambda shipped across the process boundary.

``handler`` is bound to a lambda and later submitted to the pool — the
dispatch pickles it and dies.  A module rule would have to connect the
binding to the submit through control flow; the forward picklability
analysis does exactly that.  ``dispatch_ok`` ships a module-level
function and stays clean.
"""


def _work(doc):
    return doc


def dispatch(pool, docs):
    handler = lambda doc: doc  # noqa: E731 - the point of the fixture
    for doc in docs:
        pool.submit(handler, doc)


def dispatch_ok(pool, docs):
    for doc in docs:
        pool.submit(_work, doc)
