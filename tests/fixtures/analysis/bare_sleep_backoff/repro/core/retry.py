"""RES001 fixture: hand-rolled wall-clock backoff inside ``repro.core``.

The sleep makes the retry schedule real time instead of virtual budget
— the one hit this package should produce.
"""

import time


def retry(run, doc, attempts=3):
    for attempt in range(attempts):
        try:
            return run(doc)
        except ValueError:
            time.sleep(0.05 * 2 ** attempt)
    return None
