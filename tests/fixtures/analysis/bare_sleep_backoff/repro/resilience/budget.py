"""The sanctioned home of a real sleep: RES001 must NOT flag this
module — it mirrors ``repro.resilience.budget``'s ``block_forever``."""

import time


def block_forever(poll_s=0.05):
    while True:
        time.sleep(poll_s)
