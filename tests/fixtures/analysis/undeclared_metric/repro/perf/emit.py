"""Emits one declared metric and one typo'd, undeclared one."""


def run(registry, corpus):
    registry.counter("repro.docs.processed", corpus=corpus).inc()
    registry.counter("repro.docs.procesed", corpus=corpus).inc()
