"""Obs-pass fixture registry: one live name, one stale name."""

METRIC_NAMES = {
    "repro.docs.processed": "counter",
    "repro.docs.skipped": "counter",
}
