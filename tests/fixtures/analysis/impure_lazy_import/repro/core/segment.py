"""Determinism-pass fixture: the lazy-import escape hatch.

No single file here looks wrong — the layer rules explicitly allow
function-local imports, and ``repro.harness`` is outside the DET002
deterministic layers.  Only the whole-program pass (DET101) can see
that ``segment`` reaches a wall-clock read two calls away.
"""


def segment(doc):
    from repro.harness.clock import stamp

    return stamp()
