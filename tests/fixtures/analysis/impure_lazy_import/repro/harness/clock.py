"""Harness-side helper whose impurity is invisible per-file."""

import time


def stamp():
    return helper()


def helper():
    return time.time()
