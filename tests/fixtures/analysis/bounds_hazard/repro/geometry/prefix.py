"""BND1xx fixture: definite bound hazards on prefix-array plumbing.

Each function is wrong on *every* execution — exactly the bar the
definite-only detectors require before reporting.
"""

import numpy as np


def last_prefix(row_prefix):
    """BND101: the last valid prefix index is len - 1, not len."""
    n = len(row_prefix)
    return row_prefix[n]


def reversed_offsets(values):
    """BND102: reduceat offsets must ascend; this reverses them."""
    starts = np.arange(4)[::-1]
    return np.add.reduceat(np.asarray(values), starts)


def negative_pad():
    """BND103: a provably negative array extent raises on every call."""
    return np.zeros(3 - 5)
