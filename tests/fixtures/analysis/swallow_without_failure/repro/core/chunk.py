"""RES002 fixture: a broad handler that swallows without recording.

``safe`` neither re-raises nor constructs a ``DocumentFailure`` and its
qualname is not a registered isolation site — the one hit this package
should produce.  ``isolate`` records a ``DocumentFailure`` and must
stay clean.
"""


def safe(run, doc):
    try:
        return run(doc)
    except Exception:
        return None


def isolate(run, doc, failures):
    try:
        return run(doc)
    except Exception as exc:
        failures.append(DocumentFailure(doc, exc))  # noqa: F821 - lint fixture
        return None
