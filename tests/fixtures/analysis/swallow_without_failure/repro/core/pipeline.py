"""RES002 fixture: the registered isolation-site exemption.

This file pretends to be ``repro.core.pipeline``; the broad handler
inside ``VS2Pipeline.run`` is registered in
``repro.resilience.faults.ISOLATION_SITES``, so RES002 must not flag
it even though it neither re-raises nor builds a ``DocumentFailure``.
"""


class VS2Pipeline:
    def run(self, doc):
        try:
            return self._stages(doc)
        except Exception:
            return self._fallback(doc)

    def _stages(self, doc):
        return doc

    def _fallback(self, doc):
        return None
