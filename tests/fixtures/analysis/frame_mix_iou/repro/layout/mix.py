"""Frames-pass fixture: an IoU across two coordinate frames."""


def observed_box(doc):  # frame: observed
    return doc.box


def original_box(node):  # frame: original
    return node.box


def mixed_overlap(doc, node):
    a = observed_box(doc)
    b = original_box(node)
    return a.iou(b)


def same_frame_overlap(doc, other):
    a = observed_box(doc)
    b = observed_box(other)
    return a.iou(b)


def converted_overlap(doc, node, s):
    a = observed_box(doc)
    b = original_box(node).scale(s)
    return a.iou(b)
