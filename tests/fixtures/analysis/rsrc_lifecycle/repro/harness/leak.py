"""RSRC101 fixture: a file handle with one leaking path.

``flush_rows`` closes on the long path but the early ``return`` leaks
the handle — a path property, invisible to any single-statement rule.
``flush_rows_safe`` (with-block) and ``open_log`` (ownership transfer
via return) must stay clean.
"""


def flush_rows(path, rows):
    fh = open(path, "w")
    if not rows:
        return 0
    fh.write("\n".join(rows))
    fh.close()
    return len(rows)


def flush_rows_safe(path, rows):
    with open(path, "w") as fh:
        if rows:
            fh.write("\n".join(rows))
    return len(rows)


def open_log(path):
    return open(path, "a")
