"""RSRC102 fixture: writing to a handle every path already closed."""


def write_tail(path, head, tail):
    fh = open(path, "w")
    fh.write(head)
    fh.close()
    fh.write(tail)
    return path
