"""EXC102 fixture: a broad handler that records on one path only.

``drain`` *does* construct a ``DocumentFailure`` — the syntactic RES002
outcome scan is satisfied — but when the failure list is full the
handler falls through without recording anything.  Only a
path-existence proof over the CFG sees the silent branch.  ``drain_ok``
records on every path and must stay clean.
"""


class DocumentFailure(Exception):
    pass


def drain(run, docs, failures):
    out = []
    for doc in docs:
        try:
            out.append(run(doc))
        except Exception as exc:
            if len(failures) < 10:
                failures.append(DocumentFailure(doc, exc))
    return out


def drain_ok(run, docs, failures):
    out = []
    for doc in docs:
        try:
            out.append(run(doc))
        except Exception as exc:
            failures.append(DocumentFailure(doc, exc))
    return out
