"""Keeps ``repro.core.merging`` alive (it has a real importer)."""

from repro.core.merging import merge_pass


def run(blocks):
    return merge_pass(blocks)
