"""Compatibility shim left behind by a refactor — nobody imports it."""

from repro.core.merging import merge_pass

__all__ = ["merge_pass"]
