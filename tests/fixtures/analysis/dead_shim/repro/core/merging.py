"""The real module a dead shim once forwarded to."""


def merge_pass(blocks):
    return blocks
