"""CONC103 fixture: a process pool created while the module imports.

Importing this module forks two children before any caller asked for
anything — module rules see an assignment, the pass sees an
import-time conc event.
"""

from concurrent.futures import ProcessPoolExecutor

POOL = ProcessPoolExecutor(2)
