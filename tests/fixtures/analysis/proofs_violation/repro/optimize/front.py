"""PROOF101 fixture: a contract site whose obligations are refuted.

``bad_front`` breaks its contract two ways the value analysis can
prove: it returns ``[len(points)]`` (a counter-example to
``front-indices-in-range``, every returned index is out of range) and
it reaches ``offsets`` — which holds a definite BND101 hazard — via
``stamp``, refuting ``no-bound-hazards`` with an interprocedural
witness chain.
"""

from repro.analysis.contracts import check_pareto_front, checked


def offsets(xs):
    n = len(xs)
    return xs[n]


def stamp(xs):
    return offsets(xs)


@checked(post=lambda front, points: check_pareto_front(points, front))
def bad_front(points):
    stamp(points)
    n = len(points)
    return [n]
