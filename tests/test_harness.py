"""Experiment harness: table/figure runners and their paper shapes.

These run on deliberately small contexts (speed); the benchmarks run
the same harness at the default scale and assert the headline shapes.
"""

import pytest

from repro.harness import (
    ExperimentContext,
    figure3,
    figure4_and_6,
    table2,
    table5,
    table6,
    table7,
    table8,
    table9,
    tables3_4,
)
from repro.harness.reporting import TableResult


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext({"D1": 6, "D2": 10, "D3": 10}, seed=0)


class TestReporting:
    def test_format_renders_dash_for_none(self):
        t = TableResult("T", ["A", "B"])
        t.add_row(A="x", B=None)
        assert "-" in t.format()

    def test_percent_rendering(self):
        t = TableResult("T", ["v"])
        t.add_row(v=0.875)
        assert "87.50" in t.format()

    def test_lookup_helpers(self):
        t = TableResult("T", ["k", "v"])
        t.add_row(k="a", v=1)
        assert t.value("k", "a", "v") == 1
        assert t.row_for("k", "missing") is None


class TestContext:
    def test_corpus_cached(self, ctx):
        assert ctx.corpus("D2") is ctx.corpus("D2")

    def test_cleaned_cached(self, ctx):
        assert ctx.cleaned("D2") is ctx.cleaned("D2")

    def test_split_disjoint(self, ctx):
        train, test = ctx.split("D2")
        ids = {c.original.doc_id for c in train} & {c.original.doc_id for c in test}
        assert not ids


class TestTable5(object):
    def test_structure_and_shape(self, ctx):
        t = table5(ctx)
        assert [r["Index"] for r in t.rows] == ["A1", "A2", "A3", "A4", "A5", "A6"]
        # VIPS not applicable to D1
        assert t.value("Index", "A4", "D1 Pr") is None
        # VS2 beats the text-only segmentation baseline everywhere
        for ds in ("D1", "D2", "D3"):
            assert t.value("Index", "A6", f"{ds} Rec") > t.value("Index", "A1", f"{ds} Rec")
        # D1 (structured forms) is VS2's easiest dataset, as in the paper
        assert t.value("Index", "A6", "D1 Rec") >= t.value("Index", "A6", "D2 Rec") - 0.05


class TestTables68:
    def test_table6_rows(self, ctx):
        t = table6(ctx)
        names = [r["Named Entity"] for r in t.rows]
        assert names[:5] == [
            "Event Title", "Event Place", "Event Time", "Event Organizer", "Event Description",
        ]
        assert names[-1] == "Overall"
        assert any("t-test" in n for n in t.notes)

    def test_table8_rows(self, ctx):
        t = table8(ctx)
        overall = t.rows[-1]
        assert overall["Pr"] > 0.8 and overall["Rec"] > 0.8
        # visually salient broker name gains most vs text-only (paper)
        name_gain = t.value("Named Entity", "Broker Name", "dF1")
        email_gain = t.value("Named Entity", "Broker Email", "dF1")
        assert name_gain >= email_gain


class TestTable7:
    def test_structure(self, ctx):
        t = table7(ctx)
        assert t.value("Algorithm", "ClausIE", "D1 Pr") is None
        assert t.value("Algorithm", "ML-based", "D1 Pr") is None
        vs2_d3 = t.value("Algorithm", "VS2", "D3 Rec")
        clausie_d3 = t.value("Algorithm", "ClausIE", "D3 Rec")
        assert vs2_d3 > clausie_d3


class TestTable9:
    def test_ablations_present(self, ctx):
        t = table9(ctx)
        assert len(t.rows) == 4
        # disambiguation is the load-bearing component on D2 (paper A3)
        a3 = t.value("Index", "A3", "dF1 D2")
        assert a3 is not None and a3 >= 0


class TestTable2AndPatterns:
    def test_table2(self):
        t = table2()
        assert [r["Dataset"] for r in t.rows] == ["D1", "D2", "D3"]
        d1 = t.row_for("Dataset", "D1")
        assert d1["Tuples"] == 1369

    def test_tables3_4(self):
        t = tables3_4(max_entries=10)
        entities = [r["Named Entity"] for r in t.rows]
        assert "Event Organizer" in entities and "Broker Email" in entities
        assert all(r["Curated pattern"] for r in t.rows)


class TestFigures:
    def test_figure3_shows_candidate_pool(self, ctx):
        fig = figure3(ctx)
        assert "Person/Organization candidates" in fig.body
        assert any("candidates" in n for n in fig.notes)

    def test_figure4_6_renders_blocks_and_tree(self, ctx):
        fig = figure4_and_6(ctx)
        assert "logical blocks" in fig.body
        assert "layout tree" in fig.body
        assert "interest point" in fig.body or "interest points" in fig.notes[0]
