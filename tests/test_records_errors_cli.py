"""Extraction records / schema mapping, error analysis, and the CLI."""

import io

import pytest

from repro.core.records import (
    ExtractionRecord,
    map_schema,
    normalize_money,
    normalize_phone,
    normalize_sqft,
    read_records,
    write_records,
)
from repro.core.select import Extraction
from repro.doc import Annotation
from repro.geometry import BBox
from repro.harness.error_analysis import ErrorBreakdown, classify_misses, error_report


class TestRecords:
    def record(self):
        e = Extraction("broker_phone", "(614) 555-0100", BBox(1, 2, 3, 4), BBox(1, 2, 3, 4), 0.9)
        return ExtractionRecord.from_extraction("doc-1", e)

    def test_json_roundtrip(self):
        r = self.record()
        assert ExtractionRecord.from_json(r.to_json()) == r

    def test_stream_roundtrip(self):
        buf = io.StringIO()
        n = write_records([self.record(), self.record()], buf)
        assert n == 2
        buf.seek(0)
        assert len(list(read_records(buf))) == 2

    def test_bbox_property(self):
        assert self.record().bbox == BBox(1, 2, 3, 4)


class TestSchemaMapping:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("(614) 555-0100", "(614) 555-0100"),
            ("614.555.0100", "(614) 555-0100"),
            ("1-614-555-0100", "(614) 555-0100"),
            ("not a phone", None),
        ],
    )
    def test_phone(self, raw, expected):
        assert normalize_phone(raw) == expected

    @pytest.mark.parametrize(
        "raw,expected",
        [("$450,000", 450000), ("$450K", 450000), ("$1.2M", 1200000)],
    )
    def test_money(self, raw, expected):
        assert normalize_money(raw) == expected

    @pytest.mark.parametrize(
        "raw,expected",
        [("8,000 sqft", 8000), ("2 acres", 87120), ("300 square feet", 300)],
    )
    def test_sqft(self, raw, expected):
        assert normalize_sqft(raw) == expected

    def test_map_schema_rows(self):
        records = [
            ExtractionRecord("d", "broker_phone", "614.555.0100", 0, 0, 1, 1, 1.0),
            ExtractionRecord("d", "property_size", "2 acres", 0, 0, 1, 1, 1.0),
            ExtractionRecord("d", "broker_name", "Ann Reed", 0, 0, 1, 1, 1.0),
        ]
        rows = map_schema(records)
        assert rows == [
            {
                "doc_id": "d",
                "broker_phone": "(614) 555-0100",
                "property_size": 87120,
                "broker_name": "Ann Reed",
            }
        ]

    def test_unmappable_kept_raw(self):
        rows = map_schema(
            [ExtractionRecord("d", "broker_phone", "call us", 0, 0, 1, 1, 1.0)]
        )
        assert rows[0]["broker_phone_raw"] == "call us"


class TestErrorAnalysis:
    def gt(self, box=BBox(0, 0, 100, 20)):
        return [Annotation("e", "x", box)]

    def test_matched(self):
        b = classify_misses([BBox(0, 0, 100, 20)], self.gt())
        assert b.matched == 1 and b.total_errors == 0

    def test_over_segmentation(self):
        pieces = [BBox(0, 0, 45, 20), BBox(55, 0, 45, 20)]
        b = classify_misses(pieces, self.gt())
        assert b.over_segmentation == 1

    def test_under_segmentation(self):
        merged = [BBox(0, 0, 100, 120)]
        b = classify_misses(merged, self.gt())
        assert b.under_segmentation == 1

    def test_drift(self):
        b = classify_misses([BBox(30, 5, 100, 20)], self.gt())
        assert b.drift == 1

    def test_missing(self):
        b = classify_misses([BBox(500, 500, 10, 10)], self.gt())
        assert b.missing == 1

    def test_report_aggregates(self):
        report = error_report(
            [([BBox(0, 0, 100, 20)], self.gt()), ([BBox(500, 500, 5, 5)], self.gt())]
        )
        assert report.matched == 1 and report.missing == 1

    def test_fraction(self):
        b = ErrorBreakdown(matched=3, over_segmentation=3, missing=1)
        assert b.fraction("over_segmentation") == pytest.approx(0.75)

    def test_mobile_noise_drives_oversegmentation(self, d2_cleaned):
        """§6.3: most D2 errors trace to over-segmentation on noisy
        captures — noisy documents must not have *fewer* failures."""
        from repro.core import VS2Segmenter
        from repro.harness.error_analysis import by_source

        seg = VS2Segmenter()
        pairs = []
        for original, observed, angle in d2_cleaned:
            from repro.ocr import rotate_back

            boxes = [rotate_back(b, angle, observed) for b in seg.block_bboxes(observed)]
            pairs.append((original, boxes))
        groups = by_source(pairs)
        if "mobile" in groups and "pdf" in groups:
            assert groups["mobile"].total_errors >= groups["pdf"].total_errors


class TestCli:
    def test_extract_runs(self, capsys):
        from repro.__main__ import main

        assert main(["extract", "--dataset", "D2", "--n", "1"]) == 0
        out = capsys.readouterr().out
        assert "event_title" in out

    def test_table2_runs(self, capsys):
        from repro.__main__ import main

        assert main(["table", "2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure_runs(self, capsys):
        from repro.__main__ import main

        assert main(["figure", "4"]) == 0
        assert "layout tree" in capsys.readouterr().out

    def test_render_writes_ppm(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "doc.ppm"
        assert main(["render", "--output", str(out), "--scale", "0.25"]) == 0
        assert out.read_bytes()[:2] == b"P6"
