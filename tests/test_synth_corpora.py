"""Synthetic corpora: determinism, ground-truth integrity, distributions."""

import pytest

from repro.synth import generate_corpus, train_test_split
from repro.synth.corpus import entity_vocabulary
from repro.synth.flyers import D3_ENTITIES
from repro.synth.posters import D2_ENTITIES
from repro.synth.tax_forms import all_field_descriptors, form_faces


class TestDeterminism:
    @pytest.mark.parametrize("dataset", ["D1", "D2", "D3"])
    def test_same_seed_same_corpus(self, dataset):
        a = generate_corpus(dataset, n=3, seed=5)
        b = generate_corpus(dataset, n=3, seed=5)
        for da, db in zip(a, b):
            assert da.doc_id == db.doc_id
            assert len(da.elements) == len(db.elements)
            assert [e.text for e in da.text_elements] == [e.text for e in db.text_elements]
            assert [x.bbox for x in da.elements] == [x.bbox for x in db.elements]

    @pytest.mark.parametrize("dataset", ["D1", "D2", "D3"])
    def test_different_seed_differs(self, dataset):
        a = generate_corpus(dataset, n=2, seed=1)
        b = generate_corpus(dataset, n=2, seed=2)
        assert [e.text for e in a[0].text_elements] != [e.text for e in b[0].text_elements]

    def test_prefix_stability(self):
        """Growing a corpus extends it; early documents are unchanged."""
        small = generate_corpus("D2", n=3, seed=4)
        large = generate_corpus("D2", n=6, seed=4)
        assert [e.text for e in small[2].text_elements] == [
            e.text for e in large[2].text_elements
        ]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            generate_corpus("D9", n=1)


class TestGroundTruth:
    @pytest.mark.parametrize("dataset", ["D1", "D2", "D3"])
    def test_annotations_have_text_and_area(self, dataset):
        for doc in generate_corpus(dataset, n=3, seed=2):
            assert doc.annotations
            for a in doc.annotations:
                assert a.text.strip()
                assert a.bbox.area > 0

    def test_d2_every_entity_annotated_once(self):
        for doc in generate_corpus("D2", n=5, seed=3):
            types = [a.entity_type for a in doc.annotations]
            assert sorted(types) == sorted(D2_ENTITIES)

    def test_d3_every_entity_annotated_once(self):
        for doc in generate_corpus("D3", n=5, seed=3):
            types = [a.entity_type for a in doc.annotations]
            assert sorted(types) == sorted(D3_ENTITIES)

    def test_annotation_text_words_appear_in_document(self):
        for doc in generate_corpus("D2", n=3, seed=1):
            words = {e.text for e in doc.text_elements}
            for a in doc.annotations:
                present = [w for w in a.text.split() if w in words]
                assert len(present) >= len(a.text.split()) * 0.6


class TestD1Faces:
    def test_twenty_faces(self):
        assert len(form_faces()) == 20

    def test_field_count_matches_paper(self):
        assert len(all_field_descriptors()) == 1369

    def test_descriptors_unique(self):
        descriptors = all_field_descriptors()
        assert len(set(descriptors)) == len(descriptors)

    def test_faces_deterministic(self):
        from repro.synth.tax_forms import build_faces

        a = build_faces()
        b = build_faces()
        assert [f.fields for f in a] == [f.fields for f in b]

    def test_field_values_annotated_with_descriptor(self):
        doc = generate_corpus("D1", n=1, seed=0)[0]
        for a in doc.annotations:
            assert a.field_descriptor is not None

    def test_fill_rate_controls_annotations(self):
        from repro.synth.tax_forms import TaxFormGenerator

        full = TaxFormGenerator(seed=0, fill_rate=1.0).generate("x", 0)
        assert len(full.annotations) >= 60
        with pytest.raises(ValueError):
            TaxFormGenerator(fill_rate=0.0)


class TestD2Distribution:
    def test_mobile_fraction(self):
        corpus = generate_corpus("D2", n=60, seed=0)
        sources = corpus.by_source()
        mobile = sources.get("mobile", 0)
        assert 0.45 < mobile / len(corpus) < 0.80  # paper: 1375/2190 ≈ 0.63

    def test_mobile_documents_rotated(self):
        corpus = generate_corpus("D2", n=20, seed=0)
        mobile = [d for d in corpus if d.source == "mobile"][0]
        upright = [d for d in corpus if d.source == "pdf"][0]
        # rotated pages have words at visibly slanted baselines
        from repro.ocr.deskew import estimate_skew

        assert abs(estimate_skew(mobile)) > abs(estimate_skew(upright))


class TestD3Html:
    def test_every_flyer_has_dom(self):
        for doc in generate_corpus("D3", n=4, seed=0):
            assert doc.html is not None
            assert doc.html.find("body") is not None

    def test_dom_nodes_carry_boxes(self):
        doc = generate_corpus("D3", n=1, seed=0)[0]
        boxed = [n for n in doc.html.walk() if n.bbox is not None]
        assert len(boxed) >= 6


class TestSplit:
    def test_disjoint_and_complete(self):
        corpus = generate_corpus("D2", n=10, seed=0)
        train, test = train_test_split(corpus, 0.6, seed=1)
        assert len(train) + len(test) == len(corpus)
        assert not ({d.doc_id for d in train} & {d.doc_id for d in test})

    def test_fraction_bounds(self):
        corpus = generate_corpus("D2", n=4, seed=0)
        with pytest.raises(ValueError):
            train_test_split(corpus, 1.5)


class TestVocabulary:
    def test_entity_vocabulary(self):
        assert entity_vocabulary("D2") == D2_ENTITIES
        assert entity_vocabulary("D3") == D3_ENTITIES
        assert len(entity_vocabulary("D1")) == 1369
