"""Extra coverage: interest points on corpora, Eq. 2 weight table,
holdout normality on realistic data, reportminer signature geometry."""

import numpy as np
import pytest

from repro.baselines.extraction.reportminer import layout_signature
from repro.core import VS2Segmenter
from repro.core.config import SelectConfig
from repro.core.holdout import (
    distribution_is_approximately_normal,
    pattern_distribution,
)
from repro.synth.holdout import build_holdout_corpus
from repro.core.interest_points import interest_point_matrix, select_interest_points
from repro.doc import Document, TextElement
from repro.geometry import BBox


class TestInterestPointsOnCorpora:
    def test_front_is_proper_subset_on_posters(self, d2_cleaned):
        seg = VS2Segmenter()
        proper = 0
        for _, observed, _ in d2_cleaned:
            blocks = [b for b in seg.segment(observed).logical_blocks() if b.text_atoms]
            points = select_interest_points(blocks)
            assert points
            if len(points) < len(blocks):
                proper += 1
        assert proper >= len(d2_cleaned) // 2  # usually a strict subset

    def test_objective_matrix_shape(self, d2_cleaned):
        seg = VS2Segmenter()
        _, observed, _ = d2_cleaned[0]
        blocks = [b for b in seg.segment(observed).logical_blocks() if b.text_atoms]
        m = interest_point_matrix(blocks)
        assert m.shape == (len(blocks), 3)


class TestSelectConfigWeights:
    def test_default_weights_follow_section_5_3_2(self):
        cfg = SelectConfig()
        a, b, g, v = cfg.eq2_weights["D2"]
        # visually ornate corpus: visual terms >= textual term
        assert min(a, b, v) >= g
        for ds in ("D1", "D3"):
            w = cfg.eq2_weights[ds]
            assert max(w) - min(w) < 0.11  # balanced

    def test_all_weight_rows_sum_to_one(self):
        for w in SelectConfig().eq2_weights.values():
            assert sum(w) == pytest.approx(1.0)


class TestHoldoutNormality:
    def test_normality_on_synthetic_normalish_counts(self):
        from collections import Counter

        rng = np.random.default_rng(0)
        counts = Counter(
            {("P", str(i)): max(1, int(v)) for i, v in enumerate(rng.normal(40, 5, 30))}
        )
        assert distribution_is_approximately_normal(counts)

    def test_d2_holdout_pattern_distribution_nontrivial(self):
        corpus = build_holdout_corpus("D2", max_entries_per_entity=25)
        counts = pattern_distribution(corpus.texts_for("event_time"))
        assert len(counts) >= 2  # multiple surface patterns per entity


class TestLayoutSignature:
    def doc_with_cluster(self, x, y):
        words = [
            TextElement(f"w{i}", BBox(x + i * 30.0, y, 25.0, 10.0)) for i in range(6)
        ]
        return Document("s", 850, 1100, elements=words)

    def test_signature_normalised(self):
        sig = layout_signature(self.doc_with_cluster(100, 100))
        assert np.isfinite(sig).all()

    def test_same_layout_same_signature(self):
        a = layout_signature(self.doc_with_cluster(100, 100))
        b = layout_signature(self.doc_with_cluster(100, 100))
        assert np.allclose(a, b)

    def test_different_layouts_differ(self):
        a = layout_signature(self.doc_with_cluster(100, 100))
        b = layout_signature(self.doc_with_cluster(500, 900))
        assert float(np.abs(a - b).sum()) > 0.1
