"""sRGB ↔ LAB conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.colors import LabColor, delta_e, lab_to_rgb, mean_lab, rgb_to_lab

channel = st.integers(min_value=0, max_value=255)


class TestKnownValues:
    def test_white(self):
        lab = rgb_to_lab((255, 255, 255))
        assert lab.l == pytest.approx(100.0, abs=0.01)
        assert lab.a == pytest.approx(0.0, abs=0.01)
        assert lab.b == pytest.approx(0.0, abs=0.01)

    def test_black(self):
        lab = rgb_to_lab((0, 0, 0))
        assert lab.l == pytest.approx(0.0, abs=0.01)

    def test_mid_gray_lightness(self):
        lab = rgb_to_lab((119, 119, 119))
        assert 49 < lab.l < 51
        assert abs(lab.a) < 0.5 and abs(lab.b) < 0.5

    def test_red_has_positive_a(self):
        assert rgb_to_lab((255, 0, 0)).a > 50

    def test_blue_has_negative_b(self):
        assert rgb_to_lab((0, 0, 255)).b < -50

    def test_green_has_negative_a(self):
        assert rgb_to_lab((0, 255, 0)).a < -50

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rgb_to_lab((300, 0, 0))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            rgb_to_lab((1, 2, 3, 4))  # type: ignore[arg-type]


class TestDistance:
    def test_delta_e_zero_for_identical(self):
        a = rgb_to_lab((10, 120, 200))
        assert delta_e(a, a) == 0.0

    def test_delta_e_black_white(self):
        assert delta_e(rgb_to_lab((0, 0, 0)), rgb_to_lab((255, 255, 255))) == pytest.approx(
            100.0, abs=0.1
        )

    def test_perceptual_ordering(self):
        red = rgb_to_lab((255, 0, 0))
        dark_red = rgb_to_lab((200, 0, 0))
        blue = rgb_to_lab((0, 0, 255))
        assert delta_e(red, dark_red) < delta_e(red, blue)


class TestMean:
    def test_empty(self):
        m = mean_lab([])
        assert (m.l, m.a, m.b) == (0.0, 0.0, 0.0)

    def test_average(self):
        m = mean_lab([LabColor(0, 0, 0), LabColor(100, 20, -20)])
        assert (m.l, m.a, m.b) == (50.0, 10.0, -10.0)


class TestRoundTrip:
    @given(channel, channel, channel)
    def test_rgb_lab_rgb_round_trip(self, r, g, b):
        out = lab_to_rgb(rgb_to_lab((r, g, b)))
        assert abs(out[0] - r) <= 1
        assert abs(out[1] - g) <= 1
        assert abs(out[2] - b) <= 1

    @given(channel, channel, channel)
    def test_lab_ranges(self, r, g, b):
        lab = rgb_to_lab((r, g, b))
        assert -0.01 <= lab.l <= 100.01
        assert -130 <= lab.a <= 130
        assert -130 <= lab.b <= 130
