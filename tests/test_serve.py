"""Tests of ``repro.serve``: the long-lived extraction service.

Three layers:

* unit tests of the sans-IO state machine — admission/shedding,
  deadline expiry at every stage, batch retry budgets, circuit-breaker
  transitions, drain accounting;
* the deterministic virtual-clock harness — chaos under >= 2x offered
  load with a fault plan armed (every request resolves 200/429/504,
  nothing unaccounted) and the byte-identity of a 1-worker vs an
  N-worker server over the same seeded schedule;
* the ``serve_smoke``-marked end-to-end test — a real subprocess
  server, real sockets, SIGTERM drain, exit 0, no orphan workers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.obs import SERVE_SLOS, SLORule, evaluate_serve, format_verdict
from repro.resilience import FaultPlan
from repro.serve import (
    BENCH_SERVE_SCHEMA,
    ExtractionService,
    LoadSpec,
    ServeConfig,
    arrival_schedule,
    bench_record,
    load_bench,
    run_virtual,
    write_bench,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.config import BreakerConfig

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: The canned chaos plan the acceptance tests arm: admission faults,
#: whole-batch faults, and pipeline-level merge failures, all seeded.
CHAOS_SPEC = "admit:flaky@0.1,batch:flaky@0.2,merge:flaky@0.3"


def _config(**overrides) -> ServeConfig:
    base = dict(dataset="D2", workers=1, corpus_n=8, queue_limit=4,
                deadline_s=10.0, batch_max=2, max_attempts=2)
    base.update(overrides)
    return ServeConfig(**base)


def _service(config=None, fault_plan=None) -> ExtractionService:
    return ExtractionService(config or _config(), fault_plan=fault_plan)


# ----------------------------------------------------------------------
# Admission and shedding
# ----------------------------------------------------------------------
class TestAdmission:
    def test_admit_returns_a_ticket_and_queues_it(self):
        service = _service().boot()
        try:
            ticket, response = service.admit(3, now=1.0)
            assert response is None and ticket is not None
            assert ticket.doc_index == 3
            assert ticket.deadline == pytest.approx(11.0)
            assert service.pending() == 1
            assert service.accounting["submitted"] == 1
        finally:
            service.shutdown()

    def test_full_queue_sheds_with_retry_after(self):
        service = _service(_config(queue_limit=2)).boot()
        try:
            assert service.admit(0, now=0.0)[1] is None
            assert service.admit(1, now=0.0)[1] is None
            ticket, response = service.admit(2, now=0.0)
            assert ticket is None
            assert response.status == 429
            assert response.body["reason"] == "queue_full"
            assert response.retry_after_s == service.config.retry_after_s
            assert service.pending() == 2
            assert service.accounting["shed"] == 1
        finally:
            service.shutdown()

    def test_draining_sheds_every_new_request(self):
        service = _service().boot()
        try:
            service.begin_drain(0.0)
            _, response = service.admit(0, now=0.0)
            assert response.status == 429
            assert response.body["reason"] == "draining"
        finally:
            service.shutdown()

    def test_admit_fault_sheds_as_fault(self):
        service = _service(fault_plan=FaultPlan.from_spec("admit:fail")).boot()
        try:
            _, response = service.admit(0, now=0.0)
            assert response.status == 429
            assert response.body["reason"] == "fault"
        finally:
            service.shutdown()

    def test_request_ids_are_unique_and_stable(self):
        service = _service().boot()
        try:
            t1, _ = service.admit(0, now=0.0)
            t2, _ = service.admit(1, now=0.0)
            assert t1.request_id != t2.request_id
            t3, _ = service.admit(2, now=0.0, request_id="mine")
            assert t3.request_id == "mine"
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Deadlines: 504 at every stage, never a hung slot
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_queue_expiry_resolves_504_at_dequeue(self):
        service = _service().boot()
        try:
            service.admit(0, now=0.0, deadline_s=1.0)
            service.admit(1, now=0.0, deadline_s=30.0)
            batch, expired = service.take_batch(now=2.0)
            assert [r.status for r in expired] == [504]
            assert expired[0].body["where"] == "queue"
            assert len(batch) == 1  # the live request still dispatches
        finally:
            service.shutdown()

    def test_completion_past_deadline_resolves_504(self):
        service = _service().boot()
        try:
            service.admit(0, now=0.0, deadline_s=1.0)
            batch, expired = service.take_batch(now=0.5)
            assert not expired and len(batch) == 1
            outcome = service.run_batch(batch)
            responses = service.resolve(batch, outcome, now=2.0)
            assert [r.status for r in responses] == [504]
            assert responses[0].body["where"] == "result"
        finally:
            service.shutdown()

    def test_accounting_closes_after_timeouts(self):
        service = _service().boot()
        try:
            service.admit(0, now=0.0, deadline_s=1.0)
            service.take_batch(now=5.0)
            snapshot = service.accounting_snapshot()
            assert snapshot["timeout"] == 1
            assert snapshot["unaccounted"] == 0
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Batch faults and the retry budget
# ----------------------------------------------------------------------
class TestBatchRetry:
    def test_whole_batch_fault_requeues_then_succeeds(self):
        plan = FaultPlan.from_spec("batch:flaky@attempts=1")
        service = _service(fault_plan=plan).boot()
        try:
            ticket, _ = service.admit(0, now=0.0)
            batch, _ = service.take_batch(now=0.0)
            outcome = service.run_batch(batch)
            assert outcome.result is None and outcome.fault is not None
            assert service.resolve(batch, outcome, now=0.1) == []
            assert service.pending() == 1  # re-enqueued at the front
            batch, _ = service.take_batch(now=0.2)
            assert batch[0].attempt == 2
            outcome = service.run_batch(batch)
            responses = service.resolve(batch, outcome, now=0.3)
            assert [r.status for r in responses] == [200]
            assert responses[0].body["attempt"] == 2
            assert responses[0].request_id == ticket.request_id
        finally:
            service.shutdown()

    def test_exhausted_attempts_resolve_504_where_batch(self):
        plan = FaultPlan.from_spec("batch:fail")
        service = _service(_config(max_attempts=1), fault_plan=plan).boot()
        try:
            service.admit(0, now=0.0)
            batch, _ = service.take_batch(now=0.0)
            outcome = service.run_batch(batch)
            responses = service.resolve(batch, outcome, now=0.1)
            assert [r.status for r in responses] == [504]
            assert responses[0].body["where"] == "batch"
            assert service.accounting_snapshot()["unaccounted"] == 0
        finally:
            service.shutdown()

    def test_ok_response_carries_extractions(self):
        service = _service().boot()
        try:
            service.admit(2, now=0.0)
            batch, _ = service.take_batch(now=0.0)
            responses = service.resolve(batch, service.run_batch(batch), now=0.5)
            body = responses[0].body
            assert body["status"] == 200
            assert body["doc_id"] == service.corpus[2].doc_id
            assert isinstance(body["extractions"], dict) and body["extractions"]
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            "segment", BreakerConfig(window=4, threshold=0.5, cooldown_batches=1)
        )

    def test_trips_open_at_threshold_and_degrades(self):
        breaker = self._breaker()
        assert breaker.state == CLOSED and not breaker.degrade
        breaker.record_batch(failed=2, total=4, degraded=False)
        assert breaker.state == OPEN and breaker.degrade

    def test_cooldown_leads_to_half_open_trial_then_close(self):
        breaker = self._breaker()
        breaker.record_batch(2, 4, degraded=False)
        breaker.record_batch(0, 4, degraded=True)  # cooldown batch
        assert breaker.state == HALF_OPEN and not breaker.degrade
        breaker.record_batch(0, 4, degraded=False)  # clean trial
        assert breaker.state == CLOSED

    def test_failed_trial_reopens(self):
        breaker = self._breaker()
        breaker.record_batch(2, 4, degraded=False)
        breaker.record_batch(0, 4, degraded=True)
        breaker.record_batch(1, 4, degraded=False)  # trial still failing
        assert breaker.state == OPEN

    def test_below_threshold_stays_closed(self):
        breaker = self._breaker()
        for _ in range(8):
            breaker.record_batch(1, 4, degraded=False)  # 25% < 50%
        assert breaker.state == CLOSED

    def test_transitions_are_counted(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        breaker = CircuitBreaker(
            "select", BreakerConfig(window=2, threshold=0.5, cooldown_batches=1),
            registry=registry,
        )
        breaker.record_batch(2, 2, degraded=False)
        breaker.record_batch(0, 2, degraded=True)
        breaker.record_batch(0, 2, degraded=False)
        states = {
            labels["state"]: value
            for labels, value in registry.samples("repro.serve.breaker_transitions")
            if labels["stage"] == "select"
        }
        assert states == {"open": 1, "half_open": 1, "closed": 1}

    def test_open_segment_breaker_runs_batches_visual_only(self):
        service = _service().boot()
        try:
            service.breakers["segment"]._trip()
            service.admit(0, now=0.0)
            batch, _ = service.take_batch(now=0.0)
            outcome = service.run_batch(batch)
            assert outcome.open_stages == frozenset({"segment"})
            runner = service._runner(frozenset({"segment"}))
            assert runner.config.segment.use_semantic_merging is False
            responses = service.resolve(batch, outcome, now=0.5)
            assert [r.status for r in responses] == [200]
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_checkpoint_and_final_snapshot(self, tmp_path):
        path = tmp_path / "drain.json"
        service = _service(_config(checkpoint_path=str(path))).boot()
        service.admit(0, now=0.0)
        batch, _ = service.take_batch(now=0.0)
        service.resolve(batch, service.run_batch(batch), now=0.5)
        service.begin_drain(1.0)
        snapshot = service.finish_drain(1.0)
        assert snapshot == {
            "submitted": 1, "ok": 1, "shed": 0, "timeout": 0,
            "pending": 0, "unaccounted": 0,
        }
        record = json.loads(path.read_text())
        assert record["schema"] == "repro.serve.checkpoint/1"
        assert record["accounting"] == snapshot
        assert not service.ready  # shut down, pool released


# ----------------------------------------------------------------------
# Virtual-clock load generation: chaos under overload + determinism
# ----------------------------------------------------------------------
def _chaos_spec(workers: int = 1) -> tuple:
    config = _config(workers=workers, corpus_n=16, queue_limit=8,
                     batch_max=4, max_attempts=2)
    spec = LoadSpec(n_requests=32, rate=10.0, seed=7, deadline_s=2.0,
                    doc_service_s=0.25)
    return config, spec


class TestVirtualLoadgen:
    def test_schedule_is_seeded_and_sorted(self):
        spec = LoadSpec(n_requests=16, seed=3)
        first, second = arrival_schedule(spec), arrival_schedule(spec)
        assert first == second
        times = [t for t, _ in first]
        assert times == sorted(times)
        assert arrival_schedule(LoadSpec(n_requests=16, seed=4)) != first

    def test_chaos_under_overload_accounts_for_every_request(self):
        config, spec = _chaos_spec()
        assert spec.overload_factor >= 2.0
        service = ExtractionService(
            config, fault_plan=FaultPlan.from_spec(CHAOS_SPEC, seed=7)
        )
        responses, snapshot = run_virtual(service, spec)
        assert len(responses) == spec.n_requests == snapshot["submitted"]
        assert {r.status for r in responses} <= {200, 429, 504}
        assert snapshot["shed"] > 0 and snapshot["timeout"] > 0  # overload bites
        assert snapshot["ok"] > 0  # but the service still serves
        assert snapshot["pending"] == 0
        assert snapshot["unaccounted"] == 0
        ids = [r.request_id for r in responses]
        assert len(set(ids)) == len(ids)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_one_worker_and_n_worker_servers_are_byte_identical(self):
        outputs = []
        for workers in (1, 3):
            config, spec = _chaos_spec(workers)
            service = ExtractionService(
                config, fault_plan=FaultPlan.from_spec(CHAOS_SPEC, seed=7)
            )
            responses, snapshot = run_virtual(service, spec)
            outputs.append((
                snapshot,
                b"\n".join(r.payload() for r in responses),
                service.registry.normalized_dump(),
            ))
        assert outputs[0][0] == outputs[1][0]  # accounting
        assert outputs[0][1] == outputs[1][1]  # every response payload
        assert outputs[0][2] == outputs[1][2]  # normalized metrics dump

    def test_bench_record_round_trip_and_slo_verdict(self, tmp_path):
        config, spec = _chaos_spec()
        service = ExtractionService(
            config, fault_plan=FaultPlan.from_spec(CHAOS_SPEC, seed=7)
        )
        responses, snapshot = run_virtual(service, spec)
        record = bench_record(service, spec, responses, snapshot,
                              duration_s=1.0, fault_spec=CHAOS_SPEC)
        assert record["schema"] == BENCH_SERVE_SCHEMA
        assert record["accounting"] == snapshot
        assert record["meta"]["overload_factor"] == pytest.approx(2.5)
        path = tmp_path / "BENCH_serve.json"
        write_bench(str(path), record)
        loaded = load_bench(str(path))
        assert loaded == json.loads(json.dumps(record))  # JSON-stable
        verdict = evaluate_serve(loaded)
        assert verdict.ok, format_verdict(verdict)

    def test_load_bench_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="expected schema"):
            load_bench(str(path))


# ----------------------------------------------------------------------
# Serve SLOs
# ----------------------------------------------------------------------
class TestServeSLOs:
    def _bench(self, **overrides):
        base = {
            "schema": BENCH_SERVE_SCHEMA,
            "meta": {"deadline_s": 2.0},
            "latency": {"p95_s": 2.4},
            "accounting": {"unaccounted": 0},
            "shed_rate": 0.3,
        }
        base.update(overrides)
        return base

    def test_green_bench_passes(self):
        verdict = evaluate_serve(self._bench())
        assert verdict.ok and len(verdict.rows) == len(SERVE_SLOS)

    def test_p95_past_ceiling_fails(self):
        verdict = evaluate_serve(self._bench(latency={"p95_s": 3.5}))
        assert not verdict.ok
        assert [r.rule_id for r in verdict.rows if not r.ok] == ["SLO-SERVE-P95"]

    def test_shed_rate_and_unaccounted_fail(self):
        verdict = evaluate_serve(
            self._bench(shed_rate=0.9, accounting={"unaccounted": 2})
        )
        failed = {r.rule_id for r in verdict.rows if not r.ok}
        assert failed == {"SLO-SERVE-SHED", "SLO-SERVE-ACCT"}

    def test_non_serve_rule_is_rejected(self):
        rule = SLORule("SLO-P95", "p95_ceiling", 3.0)
        with pytest.raises(ValueError, match="not a serve rule"):
            evaluate_serve(self._bench(), rules=(rule,))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_loadgen_then_report_serve(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_serve.json"
        assert main([
            "loadgen", "--n", "16", "--rate", "10", "--deadline", "2",
            "--seed", "7", "--faults", CHAOS_SPEC, "--out", str(out),
        ]) == 0
        assert load_bench(str(out))["meta"]["faults"] == CHAOS_SPEC
        assert main(["report", "--serve", str(out)]) == 0
        text = capsys.readouterr().out
        assert "unaccounted=0" in text
        assert "run health: PASS" in text

    def test_report_serve_missing_file_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["report", "--serve", "/nonexistent/bench.json"]) == 2


# ----------------------------------------------------------------------
# End to end: real server, real sockets, SIGTERM drain
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestServeHTTP:
    def _boot(self, tmp_path, *extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2",
             "--corpus-n", "8", "--deadline", "20",
             "--checkpoint", str(tmp_path / "drain.json"), *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, start_new_session=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        assert match, f"unexpected boot line: {line!r}"
        return proc, int(match.group(1))

    def _get(self, port, path):
        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as resp:
            return resp.status, resp.read()

    def test_server_lifecycle_sigterm_drains_cleanly(self, tmp_path):
        import urllib.request

        proc, port = self._boot(tmp_path)
        try:
            status, body = self._get(port, "/health")
            assert status == 200 and json.loads(body)["status"] == "ok"
            status, body = self._get(port, "/ready")
            assert status == 200 and json.loads(body)["ready"] is True

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/extract",
                data=json.dumps({"index": 3}).encode(), method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as resp:
                body = json.loads(resp.read())
            assert resp.status == 200
            assert body["doc_id"] and body["extractions"]

            status, text = self._get(port, "/metrics")
            assert status == 200
            assert 'repro_serve_requests{status="200"} 1' in text.decode()
        finally:
            pgid = os.getpgid(proc.pid)
            os.killpg(pgid, signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        drained = [l for l in out.splitlines() if "drained" in l]
        assert drained and json.loads(drained[0].split("drained ", 1)[1]) == {
            "submitted": 1, "ok": 1, "shed": 0, "timeout": 0,
            "pending": 0, "unaccounted": 0,
        }
        with pytest.raises(ProcessLookupError):  # no orphan workers
            os.killpg(pgid, 0)
        record = json.loads((tmp_path / "drain.json").read_text())
        assert record["accounting"]["unaccounted"] == 0

    def test_http_loadgen_accounts_for_every_request(self, tmp_path):
        from repro.serve import run_http

        proc, port = self._boot(
            tmp_path, "--queue-limit", "4", "--faults", CHAOS_SPEC,
        )
        try:
            counts = run_http(
                "127.0.0.1", port,
                LoadSpec(n_requests=12, rate=50.0, seed=7, deadline_s=20.0,
                         http_concurrency=12),
            )
            assert set(counts) <= {"200", "429", "504"}
            assert sum(counts.values()) == 12
        finally:
            pgid = os.getpgid(proc.pid)
            os.killpg(pgid, signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        with pytest.raises(ProcessLookupError):
            os.killpg(pgid, 0)

    def test_malformed_extract_body_is_400(self, tmp_path):
        import urllib.error
        import urllib.request

        proc, port = self._boot(tmp_path)
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/extract",
                data=b"not json", method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=30)
            assert err.value.code == 400
        finally:
            os.killpg(os.getpgid(proc.pid), signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
