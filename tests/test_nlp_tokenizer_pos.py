"""Tokenizer and POS tagger."""

import pytest
from hypothesis import given, strategies as st

from repro.nlp.pos import TAGSET, pos_tag
from repro.nlp.tokenizer import (
    STOPWORDS,
    Token,
    normalize_text,
    remove_stopwords,
    sentences,
    tokenize,
    words,
)


class TestTokenize:
    def test_simple(self):
        assert [t.text for t in tokenize("Hello world")] == ["Hello", "world"]

    def test_offsets(self):
        toks = tokenize("ab cd")
        assert (toks[0].start, toks[0].end) == (0, 2)
        assert (toks[1].start, toks[1].end) == (3, 5)

    def test_email_stays_single_token(self):
        toks = [t.text for t in tokenize("mail me at a.b@example.com now")]
        assert "a.b@example.com" in toks

    def test_hyphenated_number(self):
        assert "555-1234" in [t.text for t in tokenize("call 555-1234")]

    def test_punctuation_separate(self):
        toks = [t.text for t in tokenize("end.")]
        assert toks == ["end", "."]

    def test_token_flags(self):
        t = Token("Hello", 0, 5)
        assert t.is_word and t.is_capitalized and not t.is_all_caps
        assert Token("ACME", 0, 4).is_all_caps
        assert Token("1,234", 0, 5).is_numeric


class TestNormalize:
    def test_unicode_quotes(self):
        assert normalize_text("’tis “fine”") == "'tis \"fine\""

    def test_collapse_spaces(self):
        assert normalize_text("a   b\t c") == "a b c"

    def test_newlines_kept(self):
        assert normalize_text("a \n b") == "a\nb"


class TestSentences:
    def test_split_on_period(self):
        assert sentences("One. Two.") == ["One.", "Two."]

    def test_split_on_newline(self):
        assert sentences("line one\nline two") == ["line one", "line two"]


class TestStopwords:
    def test_removal(self):
        toks = tokenize("the cat and the hat")
        kept = [t.text for t in remove_stopwords(toks)]
        assert kept == ["cat", "hat"]

    def test_words_lowercase(self):
        assert words("Big DOG!") == ["big", "dog"]


class TestPosTagger:
    def tags(self, text):
        return [(t.text, tag) for t, tag in pos_tag(text)]

    def test_determiner_noun(self):
        tags = dict(self.tags("the event"))
        assert tags["the"] == "DT"
        assert tags["event"] == "NN"

    def test_verb(self):
        tags = dict(self.tags("we host concerts"))
        assert tags["host"] == "VB"

    def test_numeric(self):
        tags = dict(self.tags("4 beds"))
        assert tags["4"] == "CD"

    def test_proper_noun_by_gazetteer(self):
        tags = dict(self.tags("visit Columbus today"))
        assert tags["Columbus"] == "NNP"

    def test_capitalized_unknown_is_nnp(self):
        tags = dict(self.tags("the Fenka group"))
        assert tags["Fenka"] == "NNP"

    def test_suffix_rules(self):
        tags = dict(self.tags("a sparkling arrangement"))
        assert tags["sparkling"] == "VBG"
        assert tags["arrangement"] == "NN"

    def test_to_infinitive_repair(self):
        pairs = self.tags("we want to host")
        assert pairs[-1] == ("host", "VB")

    def test_determiner_forces_nominal(self):
        pairs = dict(self.tags("the host"))
        assert pairs["host"] == "NN"

    def test_all_tags_in_tagset(self):
        text = "Dr. Smith hosted 3 amazing concerts at the Acme Hall on Friday!"
        for _, tag in pos_tag(text):
            assert tag in TAGSET

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=80))
    def test_never_crashes(self, text):
        for _, tag in pos_tag(text):
            assert tag in TAGSET
