"""Soundness of the abstract value domain (:mod:`repro.analysis.values`).

The load-bearing property of any abstract interpreter is *soundness*:
for every concrete execution, the concrete value must lie inside the
abstract one.  The Hypothesis suites below generate random straight-line
programs over ``+ - * // min max len`` and slicing, run them both ways
(CPython vs :func:`exit_env`), and assert containment variable by
variable.  A second suite proves the *termination* half of the bargain:
widening must reach a fixpoint on unbounded loops within the solver's
iteration budget.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings, strategies as st

from repro.analysis.values import (
    Bound,
    Interval,
    NEG_INF,
    POS_INF,
    analyze_function,
    bound_le,
    bound_lt,
    exit_env,
    interval_add,
    interval_floordiv,
    interval_max,
    interval_min,
    interval_mul,
    interval_sub,
    join_interval,
    widen_interval,
)

# ----------------------------------------------------------------------
# Helpers: run a program concretely and abstractly
# ----------------------------------------------------------------------


def _as_function(body_src: str) -> ast.FunctionDef:
    indented = "\n".join("    " + line for line in body_src.splitlines())
    tree = ast.parse(f"def prog():\n{indented}\n")
    return tree.body[0]


def both_ways(body_src: str):
    """(concrete locals, abstract exit environment) for a program body."""
    namespace: dict = {}
    exec(compile(f"def prog():\n" + "\n".join(  # noqa: S102 - test-only
        "    " + line for line in body_src.splitlines()
    ) + "\n    return dict(locals())\n", "<prog>", "exec"), namespace)
    concrete = namespace["prog"]()
    return concrete, exit_env(_as_function(body_src))


def assert_sound(body_src: str):
    concrete, abstract = both_ways(body_src)
    for name, value in concrete.items():
        if name not in abstract:
            continue  # missing binding means TOP: trivially sound
        absval = abstract[name]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if absval.kind == "num":
                assert absval.ival.contains_value(value), (
                    f"{name} = {value} escapes {absval.ival!r}\n{body_src}"
                )
        elif isinstance(value, list):
            if absval.kind == "seq":
                assert absval.length.contains_value(len(value)), (
                    f"len({name}) = {len(value)} escapes {absval.length!r}\n{body_src}"
                )
                for item in value:
                    assert absval.elem.contains_value(item), (
                        f"{name} element {item} escapes {absval.elem!r}\n{body_src}"
                    )


# ----------------------------------------------------------------------
# Interval algebra: soundness of each operator on concrete corners
# ----------------------------------------------------------------------

ints = st.integers(min_value=-50, max_value=50)


def _ival(a: int, b: int) -> Interval:
    return Interval.of(min(a, b), max(a, b))


class TestIntervalAlgebra:
    @settings(max_examples=120, deadline=None)
    @given(ints, ints, ints, ints, st.data())
    def test_binary_ops_contain_concrete_results(self, a, b, c, d, data):
        x = data.draw(st.integers(min_value=min(a, b), max_value=max(a, b)))
        y = data.draw(st.integers(min_value=min(c, d), max_value=max(c, d)))
        ix, iy = _ival(a, b), _ival(c, d)
        assert interval_add(ix, iy).contains_value(x + y)
        assert interval_sub(ix, iy).contains_value(x - y)
        assert interval_mul(ix, iy).contains_value(x * y)
        assert interval_min(ix, iy).contains_value(min(x, y))
        assert interval_max(ix, iy).contains_value(max(x, y))
        if y != 0:
            assert interval_floordiv(ix, iy).contains_value(x // y)

    @settings(max_examples=120, deadline=None)
    @given(ints, ints, ints, ints, st.data())
    def test_join_is_an_upper_bound(self, a, b, c, d, data):
        ix, iy = _ival(a, b), _ival(c, d)
        joined = join_interval(ix, iy)
        x = data.draw(st.integers(min_value=min(a, b), max_value=max(a, b)))
        y = data.draw(st.integers(min_value=min(c, d), max_value=max(c, d)))
        assert joined.contains_value(x) and joined.contains_value(y)

    @settings(max_examples=120, deadline=None)
    @given(ints, ints, ints, ints)
    def test_widen_is_monotone_and_idempotent(self, a, b, c, d):
        old, new = _ival(a, b), _ival(c, d)
        wide = widen_interval(old, join_interval(old, new))
        # An upper bound of both inputs...
        assert bound_le(wide.lo, old.lo) and bound_le(old.hi, wide.hi)
        assert bound_le(wide.lo, new.lo) and bound_le(new.hi, wide.hi)
        # ...and a fixpoint: widening again changes nothing.
        assert widen_interval(wide, join_interval(wide, new)) == wide

    def test_symbolic_length_bounds_compare(self):
        n_minus_1 = Bound("xs", -1)
        assert bound_lt(Bound(None, -1), Bound("xs", 0))  # -1 < len(xs)
        assert bound_le(Bound(None, 0), Bound("xs", 0))   # 0 <= len(xs)
        assert bound_lt(n_minus_1, Bound("xs", 0))
        assert not bound_le(Bound("xs", 0), Bound(None, 10))  # len unbounded
        assert bound_le(NEG_INF, Bound("xs", -3)) and bound_le(Bound("xs", -3), POS_INF)


# ----------------------------------------------------------------------
# Random straight-line programs: end-to-end soundness
# ----------------------------------------------------------------------

_ATOMS = ("a", "b", "len(xs)")


def _expr(draw, depth: int) -> str:
    if depth <= 0:
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 3:
            return str(draw(ints))
        return _ATOMS[choice % len(_ATOMS)]
    left = _expr(draw, depth - 1)
    right = _expr(draw, depth - 1)
    op = draw(st.sampled_from(["+", "-", "*", "//", "min", "max"]))
    if op in ("min", "max"):
        return f"{op}({left}, {right})"
    if op == "//":
        # Keep the concrete run total; the abstract side sees the raw
        # divisor interval and must still contain the result.
        return f"({left}) // (({right}) if ({right}) != 0 else 1)"
    return f"({left}) {op} ({right})"


@st.composite
def programs(draw) -> str:
    a = draw(ints)
    b = draw(ints)
    xs = draw(st.lists(ints, min_size=0, max_size=6))
    lines = [f"a = {a}", f"b = {b}", f"xs = {xs!r}"]
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        lines.append(f"v{i} = {_expr(draw, draw(st.integers(min_value=1, max_value=2)))}")
    lo = draw(st.integers(min_value=-8, max_value=8))
    hi = draw(st.integers(min_value=-8, max_value=8))
    lines.append(f"tail = xs[{lo}:{hi}]")
    lines.append("head = xs[1:]")
    return "\n".join(lines)


class TestProgramSoundness:
    @settings(max_examples=150, deadline=None)
    @given(programs())
    def test_abstract_contains_concrete(self, body):
        assert_sound(body)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(ints, min_size=1, max_size=6), ints)
    def test_branchy_programs(self, xs, k):
        assert_sound(
            f"xs = {xs!r}\n"
            f"k = {k}\n"
            "if k > 0:\n"
            "    v = k + len(xs)\n"
            "else:\n"
            "    v = 0 - k\n"
            "w = min(v, 100)\n"
        )

    def test_loop_accumulator_is_sound(self):
        assert_sound(
            "total = 0\n"
            "xs = [1, 2, 3]\n"
            "for x in xs:\n"
            "    total = total + x\n"
        )


# ----------------------------------------------------------------------
# Widening: unbounded loops terminate inside the iteration budget
# ----------------------------------------------------------------------


class TestWideningTermination:
    def _analyze(self, src: str):
        return analyze_function(ast.parse(src).body[0])

    def test_counting_loop_terminates(self):
        # Without widening the interval [0,0], [0,1], [0,2]... ascends
        # forever; widening must jump the moving bound to +inf.
        summary = self._analyze(
            "def prog():\n"
            "    x = 0\n"
            "    while x < 10 ** 9:\n"
            "        x = x + 1\n"
            "    return x\n"
        )
        assert summary.hazards == []

    def test_nested_loops_terminate(self):
        summary = self._analyze(
            "def prog(xs):\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while i < 10 ** 6:\n"
            "        j = 0\n"
            "        while j < i:\n"
            "            total = total + j\n"
            "            j = j + 1\n"
            "        i = i + 1\n"
            "    return total\n"
        )
        assert "nonneg-return" in summary.facts

    def test_widened_exit_still_sound(self):
        env = exit_env(
            ast.parse(
                "def prog():\n"
                "    x = 0\n"
                "    n = 0\n"
                "    while n < 50:\n"
                "        x = x + 2\n"
                "        n = n + 1\n"
                "    return x\n"
            ).body[0]
        )
        # Concretely x ends at 100; the (widened) abstract value must
        # still admit it, and must keep the stable lower bound 0.
        assert env["x"].ival.contains_value(100)
        assert bound_le(Bound(None, 0), env["x"].ival.lo) or env["x"].ival.lo == NEG_INF
