"""Document model: elements, annotations, documents, reading order."""

import pytest

from repro.colors import rgb_to_lab
from repro.doc import Annotation, Document, ImageElement, TextElement
from repro.doc.document import group_into_lines, join_in_reading_order
from repro.geometry import BBox


def word(text, x, y, w=40, h=12, **kw):
    return TextElement(text, BBox(x, y, w, h), **kw)


class TestTextElement:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            TextElement("", BBox(0, 0, 10, 10))

    def test_nonpositive_font_rejected(self):
        with pytest.raises(ValueError):
            TextElement("x", BBox(0, 0, 10, 10), font_size=0)

    def test_with_text_preserves_geometry(self):
        w = word("hello", 5, 6)
        v = w.with_text("he11o")
        assert v.text == "he11o" and v.bbox == w.bbox

    def test_ids_unique(self):
        assert word("a", 0, 0).element_id != word("a", 0, 0).element_id

    def test_is_textual(self):
        assert word("a", 0, 0).is_textual
        assert not ImageElement("art", BBox(0, 0, 5, 5)).is_textual


class TestImageElement:
    def test_zero_area_rejected(self):
        with pytest.raises(ValueError):
            ImageElement("art", BBox(0, 0, 0, 5))


class TestAnnotation:
    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            Annotation("", "text", BBox(0, 0, 1, 1))

    def test_matches_box(self):
        a = Annotation("t", "x", BBox(0, 0, 100, 20))
        assert a.matches_box(BBox(2, 1, 98, 19))
        assert not a.matches_box(BBox(50, 0, 100, 20))


class TestDocument:
    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError):
            Document("d", 0, 100)

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            Document("d", 100, 100, source="fax")

    def test_text_and_image_partition(self):
        doc = Document(
            "d", 200, 100,
            elements=[word("a", 0, 0), ImageElement("i", BBox(0, 50, 10, 10))],
        )
        assert len(doc.text_elements) == 1
        assert len(doc.image_elements) == 1

    def test_elements_in_majority_overlap(self):
        doc = Document("d", 200, 100, elements=[word("a", 0, 0, w=40)])
        assert doc.elements_in(BBox(0, 0, 100, 50)) != []
        # only 25% of the word inside -> excluded at the 0.5 default
        assert doc.elements_in(BBox(30, 0, 100, 50)) == []

    def test_text_of_region(self):
        doc = Document(
            "d", 400, 100,
            elements=[word("right", 200, 10), word("left", 10, 10)],
        )
        assert doc.text_of(BBox(0, 0, 400, 100)) == "left right"

    def test_validate_rejects_far_off_page(self):
        doc = Document("d", 100, 100, elements=[word("x", 900, 900)])
        with pytest.raises(ValueError):
            doc.validate()

    def test_annotations_of(self):
        doc = Document(
            "d", 100, 100,
            annotations=[
                Annotation("a", "1", BBox(0, 0, 5, 5)),
                Annotation("b", "2", BBox(10, 0, 5, 5)),
                Annotation("a", "3", BBox(20, 0, 5, 5)),
            ],
        )
        assert len(doc.annotations_of("a")) == 2
        assert doc.entity_types() == ["a", "b"]


class TestReadingOrder:
    def test_lines_grouped_by_vertical_centroid(self):
        words = [word("b", 0, 20), word("a", 0, 0), word("c", 50, 21)]
        lines = group_into_lines(words)
        assert [w.text for w in lines[0]] == ["a"]
        assert [w.text for w in lines[1]] == ["b", "c"]

    def test_left_to_right_within_line(self):
        words = [word("two", 100, 0), word("one", 0, 0)]
        assert join_in_reading_order(words) == "one two"

    def test_columns_interleave(self):
        """Side-by-side columns interleave in whole-page reading order —
        the Fig. 3 failure mode the paper builds on."""
        words = [
            word("L1", 0, 0), word("L2", 0, 20),
            word("R1", 300, 1), word("R2", 300, 21),
        ]
        assert join_in_reading_order(words) == "L1 R1\nL2 R2"

    def test_empty(self):
        assert join_in_reading_order([]) == ""


class TestFullTextVsBlockText:
    def test_block_scoped_text_restores_context(self):
        doc = Document(
            "d", 600, 100,
            elements=[
                word("alpha", 0, 0), word("beta", 0, 20),
                word("gamma", 300, 0), word("delta", 300, 20),
            ],
        )
        assert doc.full_text() == "alpha gamma\nbeta delta"
        assert doc.text_of(BBox(0, 0, 200, 100)) == "alpha\nbeta"
        assert doc.text_of(BBox(250, 0, 350, 100)) == "gamma\ndelta"
