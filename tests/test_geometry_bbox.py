"""Bounding-box primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import BBox, enclosing_bbox, pairwise_iou

finite = st.floats(min_value=-500, max_value=500, allow_nan=False)
extent = st.floats(min_value=0.0, max_value=400, allow_nan=False)
boxes = st.builds(BBox, finite, finite, extent, extent)
nonempty_boxes = st.builds(
    BBox, finite, finite,
    st.floats(min_value=0.5, max_value=400),
    st.floats(min_value=0.5, max_value=400),
)


class TestConstruction:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BBox(0, 0, -1, 5)

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 5, -1)

    def test_zero_size_allowed(self):
        assert BBox(1, 2, 0, 0).area == 0

    def test_from_corners(self):
        b = BBox.from_corners(1, 2, 4, 8)
        assert (b.x, b.y, b.w, b.h) == (1, 2, 3, 6)

    def test_from_corners_inverted_rejected(self):
        with pytest.raises(ValueError):
            BBox.from_corners(4, 2, 1, 8)


class TestDerived:
    def test_edges(self):
        b = BBox(10, 20, 30, 40)
        assert (b.x2, b.y2) == (40, 60)

    def test_centroid(self):
        assert BBox(0, 0, 10, 20).centroid == (5, 10)

    def test_area(self):
        assert BBox(0, 0, 3, 4).area == 12

    def test_angular_distance_on_axis(self):
        b = BBox(10, -0.5, 2, 1)  # centroid on +x axis
        assert abs(b.angular_distance) < 1e-9

    def test_angular_distance_diagonal(self):
        b = BBox(9, 9, 2, 2)  # centroid (10, 10)
        assert math.isclose(b.angular_distance, math.pi / 4)


class TestRelations:
    def test_contains_point_inclusive_topleft(self):
        b = BBox(0, 0, 10, 10)
        assert b.contains_point(0, 0)
        assert not b.contains_point(10, 10)

    def test_contains_bbox(self):
        assert BBox(0, 0, 10, 10).contains_bbox(BBox(2, 2, 3, 3))
        assert not BBox(0, 0, 10, 10).contains_bbox(BBox(8, 8, 5, 5))

    def test_intersection_disjoint(self):
        assert BBox(0, 0, 5, 5).intersection(BBox(6, 6, 5, 5)) is None

    def test_intersection_overlap(self):
        inter = BBox(0, 0, 10, 10).intersection(BBox(5, 5, 10, 10))
        assert inter == BBox(5, 5, 5, 5)

    def test_touching_boxes_do_not_intersect(self):
        assert not BBox(0, 0, 5, 5).intersects(BBox(5, 0, 5, 5))

    def test_union(self):
        u = BBox(0, 0, 2, 2).union(BBox(8, 8, 2, 2))
        assert u == BBox(0, 0, 10, 10)

    def test_iou_identical(self):
        assert BBox(1, 1, 5, 5).iou(BBox(1, 1, 5, 5)) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert BBox(0, 0, 5, 5).iou(BBox(10, 10, 5, 5)) == 0.0

    def test_iou_half_overlap(self):
        # overlap 5x10 = 50; union 100 + 100 - 50 = 150
        assert BBox(0, 0, 10, 10).iou(BBox(5, 0, 10, 10)) == pytest.approx(1 / 3)

    def test_gap_distance_overlapping_is_zero(self):
        assert BBox(0, 0, 10, 10).gap_distance(BBox(5, 5, 10, 10)) == 0.0

    def test_gap_distance_horizontal(self):
        assert BBox(0, 0, 10, 10).gap_distance(BBox(15, 0, 5, 10)) == 5.0

    def test_gap_distance_diagonal(self):
        assert BBox(0, 0, 10, 10).gap_distance(BBox(13, 14, 5, 5)) == 5.0

    def test_centroid_l1(self):
        assert BBox(0, 0, 2, 2).centroid_l1_distance(BBox(3, 4, 2, 2)) == 7.0


class TestTransforms:
    def test_translate(self):
        assert BBox(1, 2, 3, 4).translate(10, 20) == BBox(11, 22, 3, 4)

    def test_scale(self):
        assert BBox(1, 2, 3, 4).scale(2) == BBox(2, 4, 6, 8)

    def test_expand(self):
        assert BBox(5, 5, 10, 10).expand(2) == BBox(3, 3, 14, 14)

    def test_expand_negative_clamps(self):
        b = BBox(5, 5, 2, 2).expand(-3)
        assert b.w == 0 and b.h == 0

    def test_clip(self):
        assert BBox(-5, -5, 20, 20).clip(BBox(0, 0, 10, 10)) == BBox(0, 0, 10, 10)

    def test_rotate_90_degrees(self):
        b = BBox(10, 0, 4, 2).rotate(math.pi / 2, 0, 0)
        assert b.w == pytest.approx(2)
        assert b.h == pytest.approx(4)

    def test_rotate_identity(self):
        b = BBox(10, 20, 4, 2)
        r = b.rotate(0.0, 50, 50)
        assert r.as_tuple() == pytest.approx(b.as_tuple())

    def test_rotate_grows_enclosure(self):
        b = BBox(0, 0, 100, 10)
        r = b.rotate(math.radians(10), 50, 5)
        assert r.w >= b.w * 0.95
        assert r.h > b.h


class TestEnclosing:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            enclosing_bbox([])

    def test_single(self):
        b = BBox(1, 2, 3, 4)
        assert enclosing_bbox([b]) == b

    def test_many(self):
        e = enclosing_bbox([BBox(0, 0, 1, 1), BBox(9, 9, 1, 1), BBox(4, 0, 1, 1)])
        assert e == BBox(0, 0, 10, 10)


class TestPairwiseIoU:
    def test_empty(self):
        assert pairwise_iou([], [BBox(0, 0, 1, 1)]).shape == (0, 1)

    def test_matches_scalar_iou(self):
        a = [BBox(0, 0, 10, 10), BBox(5, 5, 10, 10)]
        b = [BBox(0, 0, 10, 10), BBox(20, 20, 4, 4)]
        m = pairwise_iou(a, b)
        for i, bi in enumerate(a):
            for j, bj in enumerate(b):
                assert m[i, j] == pytest.approx(bi.iou(bj), abs=1e-9)


class TestProperties:
    @given(boxes, boxes)
    def test_iou_symmetric(self, a, b):
        assert a.iou(b) == pytest.approx(b.iou(a), abs=1e-9)

    @given(boxes)
    def test_iou_self_is_one_for_positive_area(self, a):
        if a.area > 1e-6:
            assert a.iou(a) == pytest.approx(1.0)

    @given(boxes, boxes)
    def test_iou_bounded(self, a, b):
        assert 0.0 <= a.iou(b) <= 1.0 + 1e-9

    @given(boxes, boxes)
    def test_union_contains_both(self, a, b):
        u = a.union(b).expand(1e-6)
        assert u.contains_bbox(a) and u.contains_bbox(b)

    @given(boxes, boxes)
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.expand(1e-6).contains_bbox(inter)
            assert b.expand(1e-6).contains_bbox(inter)

    @given(nonempty_boxes, nonempty_boxes)
    def test_gap_zero_iff_touching_or_overlapping(self, a, b):
        gap = a.gap_distance(b)
        assert gap >= 0.0
        if a.intersects(b):
            assert gap == 0.0

    @given(nonempty_boxes, finite, finite)
    def test_translate_preserves_shape(self, a, dx, dy):
        t = a.translate(dx, dy)
        assert t.w == a.w and t.h == a.h
