"""Direct coverage of remaining helper surfaces: baseline feature
vectors, parse helpers, lesk ranking, website variants, misc."""

import numpy as np
import pytest

from repro.baselines.extraction.features import (
    block_feature_vector,
    candidate_dom_nodes,
    dom_feature_vector,
    text_features,
    visual_features,
)
from repro.core.clustering import clusters_to_bboxes
from repro.core.features import color_feature, pairwise_feature_distance, feature_matrix
from repro.core.interest_points import semantic_coherence
from repro.doc import Document, LayoutNode, TextElement
from repro.embeddings import default_embedding
from repro.geometry import BBox
from repro.html import el, parse_html
from repro.html.wrapper import extract_records
from repro.nlp.lesk import LeskCandidate, lesk_rank
from repro.nlp.parse import parse_chunks
from repro.nlp.verbnet import known_classes
from repro.synth.websites import (
    ACM_WRAPPER,
    HOMESBYOWNER_WRAPPER,
    acm_talk_listing,
    homesbyowner_listing,
)


def word(text, x, y, w=40, h=12):
    return TextElement(text, BBox(x, y, w, h))


class TestBaselineFeatures:
    def test_text_features_flags(self):
        v = text_features("Call (614) 555-0100 or a@b.com on Friday at 4 Oak Street, Columbus, OH")
        phone, email, timex, geo = v[3], v[4], v[5], v[6]
        assert phone == 1.0 and email == 1.0 and timex == 1.0 and geo == 1.0

    def test_text_features_plain(self):
        v = text_features("nothing special here")
        assert v[3] == 0.0 and v[4] == 0.0

    def test_visual_features_normalised(self):
        doc = Document("f", 800, 1000, elements=[word("x", 100, 200)])
        v = visual_features(doc, BBox(100, 200, 40, 12))
        assert all(np.isfinite(v))
        assert 0 <= v[0] <= 1 and 0 <= v[1] <= 1

    def test_block_vector_length_stable(self):
        doc = Document("f", 800, 1000, elements=[word("x", 100, 200)])
        a = block_feature_vector(doc, BBox(100, 200, 40, 12))
        b = block_feature_vector(doc, BBox(0, 0, 10, 10))
        assert a.shape == b.shape

    def test_dom_features(self, d3_corpus):
        doc = d3_corpus[0]
        nodes = candidate_dom_nodes(doc.html)
        assert nodes
        v = dom_feature_vector(nodes[0], doc.html, doc.width, doc.height)
        assert np.isfinite(v).all()


class TestCoreFeatureExtras:
    def test_pairwise_feature_distance_symmetric(self):
        elements = [word("a", 0, 0), word("b", 100, 0), word("c", 0, 100)]
        m = pairwise_feature_distance(feature_matrix(elements, BBox(0, 0, 200, 200)))
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0)

    def test_color_feature(self):
        assert len(color_feature([word("a", 0, 0)])) == 3
        assert color_feature([]) == [0.0, 0.0, 0.0]

    def test_clusters_to_bboxes(self):
        boxes = clusters_to_bboxes([[word("a", 0, 0), word("b", 50, 0)], []])
        assert len(boxes) == 1
        assert boxes[0].w > 40

    def test_semantic_coherence_caps_quadratic_blowup(self):
        many = [word("concert", i * 50, 0) for i in range(60)]
        node = LayoutNode(BBox(0, 0, 3000, 12), many)
        value = semantic_coherence(node, default_embedding())
        assert value <= 40 * 39 / 2  # capped word count


class TestParseHelpers:
    def test_parse_chunks_returns_chunk_trees(self):
        chunks = parse_chunks("Hosted by John Smith")
        assert chunks and all(c.label in ("NP", "VP", "O") for c in chunks)

    def test_verbnet_classes_listed(self):
        assert "captain" in known_classes()


class TestLeskRank:
    def test_rank_order(self):
        candidates = [
            LeskCandidate("a", "completely unrelated words"),
            LeskCandidate("b", "hosted and organized by the club"),
        ]
        order = lesk_rank(candidates, "event_organizer")
        assert order[0] == 1


class TestWebsiteVariants:
    def test_acm_listing(self):
        records = extract_records(parse_html(acm_talk_listing(0, 6)), ACM_WRAPPER)
        assert len(records) == 6
        assert all(r["event_organizer"] for r in records)

    def test_homesbyowner_listing(self):
        records = extract_records(
            parse_html(homesbyowner_listing(0, 6)), HOMESBYOWNER_WRAPPER
        )
        assert len(records) == 6
        assert all("@" in r["broker_email"] for r in records)


class TestNestedWrapperRecords:
    def test_outermost_container_wins(self):
        inner = el("div", el("span", "X", class_="f"), class_="rec")
        outer = el("div", inner, class_="rec")
        from repro.html import WrapperRule

        rule = WrapperRule(("div", "rec"), {"f": ("span", "f")})
        records = extract_records(el("html", outer), rule)
        assert len(records) == 1
