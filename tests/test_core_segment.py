"""VS2-Segment: delimiters, clustering, merging, end-to-end quality."""

import pytest

from repro.colors import rgb_to_lab
from repro.core import VS2Segmenter
from repro.core.clustering import cluster_elements
from repro.core.config import SegmentConfig
from repro.core.delimiters import (
    first_inflection_index,
    identify_visual_delimiters,
    prefix_correlations,
    score_cut_sets,
)
from repro.core.features import (
    VISUAL_FEATURES,
    clustering_distance_matrix,
    element_feature_vector,
    feature_matrix,
    visually_separated,
)
from repro.core.merging import merge_threshold, semantic_merge
from repro.doc import Document, ImageElement, TextElement
from repro.eval.metrics import corpus_segmentation_scores
from repro.geometry import BBox, OccupancyGrid
from repro.geometry.cuts import interior_cut_sets


def word(text, x, y, w=40, h=12, size=12.0, color=(25, 25, 25)):
    return TextElement(text, BBox(x, y, w, h), font_size=size, color=rgb_to_lab(color))


class TestFeatures:
    def test_feature_vector_length(self):
        v = element_feature_vector(word("a", 10, 10), BBox(0, 0, 100, 100))
        assert len(v) == len(VISUAL_FEATURES)

    def test_matrix_normalised(self):
        m = feature_matrix([word("a", 10, 10), word("b", 60, 60)], BBox(0, 0, 100, 100))
        assert (abs(m) <= 2.0).all()

    def test_clustering_distance_word_gap_small(self):
        a, b = word("one", 0, 0), word("two", 44, 0)  # normal word gap
        d = clustering_distance_matrix([a, b], BBox(0, 0, 200, 20))
        assert d[0, 1] < 0.3

    def test_clustering_distance_block_gap_large(self):
        a, b = word("one", 0, 0), word("two", 0, 80)
        d = clustering_distance_matrix([a, b], BBox(0, 0, 200, 100))
        assert d[0, 1] > 0.8

    def test_clustering_distance_style_matters(self):
        a = word("one", 0, 0)
        b = word("two", 0, 18, size=30, h=30, color=(150, 20, 20))
        c = word("three", 0, 18)
        d = clustering_distance_matrix([a, b, c], BBox(0, 0, 200, 60))
        assert d[0, 1] > d[0, 2]

    def test_visually_separated_by_third_element(self):
        a, b = word("a", 0, 0), word("b", 200, 0)
        wall = word("wall", 90, 0, w=40)
        assert visually_separated(a, b, [a, wall, b])

    def test_background_image_not_a_separator(self):
        a, b = word("a", 10, 10), word("b", 100, 10)
        banner = ImageElement("banner", BBox(0, 0, 300, 50))
        assert not visually_separated(a, b, [a, b, banner])


class TestDelimiters:
    def grid_and_boxes(self, gaps):
        """Stacked 12-px lines separated by the given gaps."""
        boxes = []
        y = 0.0
        for gap in gaps:
            boxes.append(BBox(0, y, 300, 12))
            y += 12 + gap
        boxes.append(BBox(0, y, 300, 12))
        grid = OccupancyGrid.from_bboxes(boxes, 300, y + 12, cell=4)
        return grid, boxes

    def test_uniform_row_gaps_all_delimit(self):
        grid, boxes = self.grid_and_boxes([16, 16, 16])
        cuts = interior_cut_sets(grid, "horizontal")
        accepted = identify_visual_delimiters(cuts, boxes, min_gap_ratio=0.6)
        assert len(accepted) == 3

    def test_small_gaps_rejected_by_floor(self):
        grid, boxes = self.grid_and_boxes([4, 4])
        cuts = interior_cut_sets(grid, "horizontal")
        accepted = identify_visual_delimiters(cuts, boxes, min_gap_ratio=0.6)
        assert accepted == []

    def test_wide_separator_beats_line_spacing(self):
        grid, boxes = self.grid_and_boxes([6, 60, 6])
        cuts = interior_cut_sets(grid, "horizontal")
        accepted = identify_visual_delimiters(cuts, boxes, min_gap_ratio=0.6)
        assert len(accepted) == 1
        assert accepted[0].span_units >= 48

    def test_empty_inputs(self):
        assert identify_visual_delimiters([], [], 0.6) == []

    def test_scoring_uses_neighbour_height(self):
        grid, boxes = self.grid_and_boxes([20])
        cuts = interior_cut_sets(grid, "horizontal")
        scored = score_cut_sets(cuts, boxes)
        assert scored and scored[0].normalized_width > 0

    def test_prefix_correlations_length(self):
        grid, boxes = self.grid_and_boxes([16, 16, 16])
        cuts = interior_cut_sets(grid, "horizontal")
        scored = score_cut_sets(cuts, boxes)
        assert len(prefix_correlations(scored)) == max(len(scored) - 1, 0)

    def test_inflection_index(self):
        assert first_inflection_index([10, 9, 1, 0.9, 0.8]) is not None
        assert first_inflection_index([1, 1]) is None


class TestClustering:
    def test_paragraph_stays_whole(self):
        elements = [word(f"w{i}", (i % 5) * 46, (i // 5) * 16) for i in range(15)]
        clusters = cluster_elements(elements, BBox(0, 0, 300, 60))
        assert len(clusters) == 1

    def test_distinct_styles_split(self):
        title = [word(t, 10 + i * 110, 0, w=100, h=40, size=40) for i, t in enumerate(["Big", "Title"])]
        body = [word(t, 10 + i * 46, 44, h=11, size=11, color=(90, 90, 90)) for i, t in enumerate(["small", "body", "text"])]
        clusters = cluster_elements(title + body, BBox(0, 0, 300, 60))
        assert len(clusters) == 2

    def test_empty(self):
        assert cluster_elements([], BBox(0, 0, 10, 10)) == []

    def test_singleton(self):
        assert len(cluster_elements([word("a", 0, 0)], BBox(0, 0, 100, 20))) == 1


class TestMerging:
    def test_threshold_schedule(self):
        cfg = SegmentConfig()
        assert merge_threshold(0, cfg) == 0.0
        assert merge_threshold(5, cfg) == pytest.approx(0.5)
        assert merge_threshold(2, cfg) < merge_threshold(4, cfg)

    def test_merge_repairs_styled_lead_split(self):
        """A styled lead line over a same-topic paragraph re-merges."""
        lead = [word(t, 10 + i * 80, 0, w=70, h=18, size=18, color=(140, 20, 30))
                for i, t in enumerate(["Free", "admission", "tonight!"])]
        body = [word(t, 10 + (i % 6) * 48, 24 + (i // 6) * 15, h=11, size=11)
                for i, t in enumerate(
                    "join us for an evening of jazz music tickets at the door".split())]
        far = [word(t, 10 + i * 48, 300, h=11, size=11)
               for i, t in enumerate("call the broker hotline".split())]
        doc = Document("m-1", 400, 400, elements=lead + body + far)
        tree = VS2Segmenter().segment(doc)
        blocks = [b for b in tree.logical_blocks() if b.text_atoms]
        texts = [b.text() for b in blocks]
        assert any("admission" in t and "jazz" in t for t in texts), texts

    def test_semantically_distinct_neighbours_stay_split(self):
        title = [word(t, 10 + i * 110, 0, w=100, h=36, size=36, color=(140, 20, 30))
                 for i, t in enumerate(["Jazz", "Festival"])]
        when = [word(t, 10 + i * 52, 40, h=14, size=14)
                for i, t in enumerate(["Friday,", "Mar", "4", "at", "9:15", "am"])]
        doc = Document("m-2", 500, 120, elements=title + when)
        tree = VS2Segmenter().segment(doc)
        blocks = [b.text() for b in tree.logical_blocks() if b.text_atoms]
        assert len(blocks) >= 2

    def test_merge_counter(self):
        doc = Document("m-3", 100, 50, elements=[word("solo", 10, 10)])
        tree = VS2Segmenter(SegmentConfig(use_semantic_merging=False)).segment(doc)
        assert semantic_merge(tree, SegmentConfig()) == 0


class TestEndToEnd:
    @pytest.mark.parametrize(
        "fixture,min_p,min_r",
        [("d1_cleaned", 0.80, 0.90), ("d2_cleaned", 0.75, 0.85), ("d3_cleaned", 0.70, 0.90)],
    )
    def test_segmentation_quality(self, request, fixture, min_p, min_r):
        cleaned = request.getfixturevalue(fixture)
        seg = VS2Segmenter()
        per_doc = []
        from repro.ocr import rotate_back

        for original, observed, angle in cleaned:
            boxes = [rotate_back(b, angle, observed) for b in seg.block_bboxes(observed)]
            per_doc.append((boxes, original.annotations))
        prf = corpus_segmentation_scores(per_doc)
        assert prf.precision >= min_p
        assert prf.recall >= min_r

    def test_rotation_robustness_without_deskew(self, d2_corpus, ocr_engine):
        """§5.1.2 claims robustness to rotation: segmentation on the raw
        rotated capture must still find most blocks (slanted cuts)."""
        mobile = [d for d in d2_corpus if d.source == "mobile"][:4]
        seg = VS2Segmenter()
        per_doc = []
        for doc in mobile:
            observed = ocr_engine.transcribe(doc).as_document(doc)
            per_doc.append((seg.block_bboxes(observed), doc.annotations))
        prf = corpus_segmentation_scores(per_doc)
        assert prf.recall >= 0.5

    def test_tree_is_well_nested(self, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        tree = VS2Segmenter().segment(observed)
        tree.validate_nesting()

    def test_ablation_flags_respected(self, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        tree = VS2Segmenter(SegmentConfig(use_visual_clustering=False)).segment(observed)
        assert all(n.kind != "cluster" for n in tree.walk())
