"""VS2-Select: patterns, interest points, disambiguation, extraction."""

import numpy as np
import pytest

from repro.core import VS2Segmenter, VS2Selector
from repro.core.config import SelectConfig
from repro.core.disambiguate import Eq2Weights, multimodal_distance, rank_candidates
from repro.core.interest_points import block_objectives, select_interest_points
from repro.core.patterns import (
    CURATED_PATTERNS,
    compile_mined_pattern,
    curated_pattern_for,
    mine_entity_patterns,
)
from repro.doc import LayoutNode, TextElement
from repro.geometry import BBox


def word(text, x, y, w=40, h=12, size=12.0):
    return TextElement(text, BBox(x, y, w, h), font_size=size)


def block(texts, x, y, h=12, size=12.0):
    atoms = [word(t, x + i * (len(t) * 7 + 5), y, w=len(t) * 7, h=h, size=size) for i, t in enumerate(texts)]
    node = LayoutNode(BBox(x, y, 10, 10), atoms, kind="cluster")
    node.refit_bbox()
    return node


class TestCuratedPatterns:
    def find(self, entity, text):
        return curated_pattern_for(entity).find(text)

    def test_unknown_entity(self):
        with pytest.raises(KeyError):
            curated_pattern_for("nonsense")

    def test_time_pattern(self):
        matches = self.find("event_time", "When: Friday, Mar 4 at 9:15 am")
        assert matches and "9:15" in matches[0].text

    def test_place_pattern_geocode(self):
        matches = self.find("event_place", "at 123 Maple Street, Columbus, OH 43210")
        assert matches and matches[0].strength > 0.8

    def test_place_pattern_venue_fallback(self):
        matches = self.find("event_place", "Venue: Acme Librory, 1968 Hikory Lxne")
        assert matches  # noisy address still matches via the venue line

    def test_organizer_promoted_by_verb(self):
        matches = self.find("event_organizer", "Hosted by the Acme Arts Foundation")
        assert matches and matches[0].strength > 0.9

    def test_organizer_skips_place_lines(self):
        matches = self.find("event_organizer", "Venue: Acme Library, 1968 Hickory Lane, Fresno")
        assert matches == []

    def test_title_accepts_proper_noun_np(self):
        assert self.find("event_title", "Midnight Film Hackathon")

    def test_title_rejects_schedule_lines(self):
        assert self.find("event_title", "Date & Time: Nov 8 at 5:30 PM") == []

    def test_title_rejects_sentences(self):
        assert self.find("event_title", "Join us tonight. Bring your friends.") == []

    def test_title_rejects_organizer_lines(self):
        assert self.find("event_title", "Hosted by Kevin Roberts") == []

    def test_title_block_scope_returns_whole_text(self):
        text = "Grand Jazz Festival"
        matches = self.find("event_title", text)
        assert matches[0].text == text

    def test_description_needs_verbosity(self):
        assert self.find("event_description", "Jazz Festival") == []
        long = ("Join us for an evening of jazz with friends and neighbors. "
                "Light refreshments and drinks will be served at the venue.")
        assert self.find("event_description", long)

    def test_phone_pattern(self):
        matches = self.find("broker_phone", "Phone: (614) 555-0199")
        assert matches and matches[0].text == "(614) 555-0199"

    def test_email_pattern(self):
        matches = self.find("broker_email", "Email: jane.doe@realtypro.org")
        assert matches and "@" in matches[0].text

    def test_broker_name_ngram(self):
        matches = self.find("broker_name", "Listed by: Jessica Hughes - Acme Realty")
        assert any("Jessica" in m.text for m in matches)

    def test_size_pattern_units(self):
        for text in ("4,698 square feet", "11.5 acres", "4 beds, 2 baths"):
            assert self.find("property_size", text), text

    def test_size_rejects_plain_numbers(self):
        assert self.find("property_size", "founded in 1988 by volunteers") == []

    def test_property_description(self):
        text = ("Prime retail space in the heart of Columbus. Recently renovated "
                "building with modern finishes throughout and parking.")
        assert self.find("property_description", text)

    def test_ocr_repair_applied(self):
        matches = self.find("broker_phone", "Phone: (6l4) 555-0l99")
        assert matches  # l→1 repair inside the pattern layer


class TestMinedPatterns:
    def test_mined_time_patterns_match_times(self):
        entries = [
            "Friday, Mar 4 at 9:15 am", "April 2, 2025 at 7 pm", "Sunday, Jun 1 at noon",
            "Monday, Jan 5 at 8:30 pm", "Oct 12 at 6 pm", "Saturday, Feb 7 at 5 pm",
        ]
        mined = mine_entity_patterns(entries, min_support_fraction=0.5)
        assert mined
        pattern = compile_mined_pattern(mined)
        assert pattern.find("doors at Friday, Mar 21 at 8:00 pm for all")
        assert not pattern.find("a plain sentence about nothing at all")

    def test_mined_pattern_empty_holdout(self):
        assert mine_entity_patterns([]) == []
        assert compile_mined_pattern([]).find("anything") == []


class TestInterestPoints:
    def test_title_like_block_selected(self):
        title = block(["Grand", "Jazz", "Festival"], 100, 20, h=40, size=40)
        body = block(["join", "us", "for", "music", "and", "more"], 60, 200)
        points = select_interest_points([title, body])
        assert title in points

    def test_empty_blocks_skipped(self):
        empty = LayoutNode(BBox(0, 0, 50, 50))
        assert select_interest_points([empty]) == []

    def test_objectives_signs(self):
        b = block(["dense", "words", "here"], 0, 0)
        o = block_objectives(b)
        assert o.height > 0 and o.negated_density <= 0


class TestEq2:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Eq2Weights(0.5, 0.5, 0.5, 0.5)

    def test_distance_zero_for_same_block(self):
        b = block(["alpha", "beta"], 10, 10)
        w = Eq2Weights(0.25, 0.25, 0.25, 0.25)
        assert multimodal_distance(b, b, w, page_diag=1000) == pytest.approx(0.0, abs=0.05)

    def test_distance_grows_with_separation(self):
        a = block(["alpha", "beta"], 10, 10)
        near = block(["alpha", "gamma"], 10, 40)
        far = block(["totally", "different", "words", "indeed"], 600, 900)
        w = Eq2Weights(0.25, 0.25, 0.25, 0.25)
        assert multimodal_distance(a, near, w, 1000) < multimodal_distance(a, far, w, 1000)

    def test_rank_candidates_prefers_interest_point(self):
        ip = block(["Big", "Title"], 100, 10, h=40, size=40)
        c1 = block(["Big", "Title"], 100, 10, h=40, size=40)
        c2 = block(["tiny", "note"], 500, 800)
        order = rank_candidates([c2, c1], [ip], Eq2Weights(0.25, 0.25, 0.25, 0.25), 1000)
        assert order[0] == 1

    def test_no_interest_points_infinite(self):
        from repro.core.disambiguate import distance_to_interest_points

        b = block(["x", "y"], 0, 0)
        assert distance_to_interest_points(b, [], Eq2Weights(0.25, 0.25, 0.25, 0.25), 100) == float("inf")


class TestSelectorModes:
    def make_selector(self, mode):
        return VS2Selector("D2", SelectConfig(disambiguation=mode))

    def test_invalid_mode_raises(self, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        blocks = VS2Segmenter().segment(observed).logical_blocks()
        selector = self.make_selector("bogus")
        with pytest.raises(ValueError):
            selector.extract(observed, blocks)

    @pytest.mark.parametrize("mode", ["multimodal", "none", "lesk"])
    def test_modes_run(self, mode, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        blocks = VS2Segmenter().segment(observed).logical_blocks()
        extractions = self.make_selector(mode).extract(observed, blocks)
        assert extractions
        types = {e.entity_type for e in extractions}
        assert types <= set(CURATED_PATTERNS)

    def test_extractions_carry_boxes(self, d3_cleaned):
        _, observed, _ = d3_cleaned[0]
        blocks = VS2Segmenter().segment(observed).logical_blocks()
        for e in VS2Selector("D3").extract(observed, blocks):
            assert e.bbox.area > 0
            assert e.text


class TestD1Selector:
    def test_extracts_field_values(self, d1_cleaned):
        original, observed, _ = d1_cleaned[0]
        blocks = VS2Segmenter().segment(observed).logical_blocks()
        extractions = VS2Selector("D1").extract(observed, blocks)
        assert len(extractions) >= 0.8 * len(original.annotations)
        gt = {a.entity_type: a for a in original.annotations}
        hits = sum(
            1 for e in extractions if e.entity_type in gt and gt[e.entity_type].bbox.iou(e.bbox) > 0.65
        )
        assert hits >= 0.8 * len(extractions)

    def test_face_identification_required(self):
        selector = VS2Selector("D1")
        from repro.doc import Document

        empty = Document("x", 100, 100)
        assert selector.extract(empty, []) == []
