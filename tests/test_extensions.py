"""The paper's §7 future-work extensions implemented in this repo:
Eq. 2 weight learning and the font-type clustering feature."""

import pytest

from repro.core.config import SegmentConfig
from repro.core.features import _font_type_distance, clustering_distance_matrix
from repro.core.weight_learning import (
    WeightLearningResult,
    candidate_weight_grid,
    learn_eq2_weights,
)
from repro.doc import ImageElement, TextElement
from repro.geometry import BBox


class TestWeightGrid:
    def test_grid_on_simplex(self):
        for w in candidate_weight_grid(0.25):
            assert sum(w) == pytest.approx(1.0)
            assert all(v >= 0 for v in w)

    def test_grid_size(self):
        assert len(candidate_weight_grid(0.25)) == 35  # C(4+4-1, 3)
        assert len(candidate_weight_grid(0.5)) == 10

    def test_bad_step(self):
        with pytest.raises(ValueError):
            candidate_weight_grid(0.0)


class TestWeightLearning:
    def test_learns_reasonable_weights(self, d2_cleaned):
        dev = [(orig, obs, angle) for orig, obs, angle in d2_cleaned[:5]]
        result = learn_eq2_weights("D2", dev, step=0.5)
        assert isinstance(result, WeightLearningResult)
        assert sum(result.weights) == pytest.approx(1.0)
        assert result.f1 > 0.5
        assert result.tried == 10

    def test_learned_weights_not_worse_than_default(self, d2_cleaned):
        """Learning on the dev split can only match or beat the §5.3.2
        hand-set weights *on that split* (the default is in the grid's
        convex hull but (0.3,0.3,0.1,0.3) isn't on the 0.25-grid, so we
        compare against the measured default instead)."""
        from repro.core import VS2Segmenter, VS2Selector
        from repro.core.select import Extraction
        from repro.eval.metrics import end_to_end_scores
        from repro.ocr import rotate_back

        dev = [(orig, obs, angle) for orig, obs, angle in d2_cleaned[:5]]
        learned = learn_eq2_weights("D2", dev, step=0.25)

        seg = VS2Segmenter()
        selector = VS2Selector("D2")
        results = []
        for orig, obs, angle in dev:
            blocks = seg.segment(obs).logical_blocks()
            exts = [
                Extraction(e.entity_type, e.text, rotate_back(e.bbox, angle, obs),
                           rotate_back(e.span_bbox, angle, obs), e.score)
                for e in selector.extract(obs, blocks)
            ]
            results.append((exts, orig))
        default_f1 = end_to_end_scores(results)[0].f1
        assert learned.f1 >= default_f1 - 1e-9

    def test_rejects_d1(self):
        with pytest.raises(ValueError):
            learn_eq2_weights("D1", [])


class TestFontTypeFeature:
    def word(self, **kw):
        defaults = dict(text="x", bbox=BBox(0, 0, 10, 10))
        defaults.update(kw)
        return TextElement(**defaults)

    def test_distance_components(self):
        a = self.word()
        same = self.word()
        bolded = self.word(bold=True)
        other_face = self.word(font_family="mono", bold=True, italic=True)
        assert _font_type_distance(a, same) == 0.0
        assert _font_type_distance(a, bolded) == pytest.approx(1 / 3)
        assert _font_type_distance(a, other_face) == 1.0

    def test_images_score_zero(self):
        img = ImageElement("art", BBox(0, 0, 5, 5))
        assert _font_type_distance(self.word(), img) == 0.0

    def test_weight_changes_matrix(self):
        a = self.word(text="a", bbox=BBox(0, 0, 40, 12))
        b = self.word(text="b", bbox=BBox(46, 0, 40, 12), bold=True, font_family="mono")
        frame = BBox(0, 0, 100, 20)
        plain = clustering_distance_matrix([a, b], frame)
        with_font = clustering_distance_matrix([a, b], frame, font_type_weight=0.3)
        assert with_font[0, 1] > plain[0, 1]

    def test_config_plumbs_through(self, d2_cleaned):
        from repro.core import VS2Segmenter

        _, observed, _ = d2_cleaned[0]
        baseline = VS2Segmenter(SegmentConfig()).segment(observed)
        extended = VS2Segmenter(SegmentConfig(font_type_weight=0.25)).segment(observed)
        # Both produce valid trees; the extension may split differently.
        baseline.validate_nesting()
        extended.validate_nesting()
