"""The ``repro check`` lint engine and its rule catalogue.

Fixture-driven: every rule is exercised three ways — a positive hit, a
clean counterpart, and the hit suppressed with ``# repro: noqa[RULE]``.
The suppression case is generated from the positive one (append the
noqa comment to the reported line), so the noqa machinery is proven
against the exact line each rule reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.lint import (
    ALL_RULES,
    Violation,
    format_human,
    format_json,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.engine import apply_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_lint(tmp_path: Path, source: str, rel_path: str, rules=None):
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([tmp_path], rule_ids=rules, root=tmp_path)


#: (rule_id, path the file pretends to live at, dirty source, clean source).
#: Each dirty source triggers its rule exactly once.
FIXTURES = [
    (
        "DET001",
        "mod.py",
        "import random\nvalue = random.random()\n",
        "import numpy as np\nvalue = np.random.default_rng(0).random()\n",
    ),
    (
        "DET001",
        "np_legacy.py",
        "import numpy as np\nvalue = np.random.rand(3)\n",
        "import numpy as np\nvalue = np.random.default_rng(7).random(3)\n",
    ),
    (
        "DET001",
        "entropy.py",
        "from numpy.random import default_rng\nrng = default_rng()\n",
        "from numpy.random import default_rng\nrng = default_rng(0)\n",
    ),
    (
        # Lives in repro/nlp (a deterministic layer outside repro.core)
        # so the perf_counter clean counterpart is not an OBS001 hit.
        "DET002",
        "repro/nlp/stamp.py",
        "import time\n\ndef stamp():\n    return time.time()\n",
        "import time\n\ndef took():\n    return time.perf_counter()\n",
    ),
    (
        "OBS001",
        "repro/core/hot.py",
        "import time\n\ndef took():\n    return time.perf_counter()\n",
        "def timed(metrics, work):\n"
        "    with metrics.stage('segment'):\n"
        "        return work()\n",
    ),
    (
        "DET003",
        "mod.py",
        "def f(xs):\n    return [x for x in set(xs)]\n",
        "def f(xs):\n    return [x for x in sorted(set(xs))]\n",
    ),
    (
        "MUT001",
        "mod.py",
        "def f(xs=[]):\n    return xs\n",
        "def f(xs=None):\n    return xs or []\n",
    ),
    (
        "EXC001",
        "mod.py",
        "try:\n    work = 1\nexcept Exception:\n    pass\n",
        "try:\n    work = 1\nexcept ValueError:\n    work = 0\n",
    ),
    (
        "LAYER001",
        "repro/core/bad.py",
        "from repro.synth import generate_corpus\n",
        "from repro.datasets import entity_vocabulary\n",
    ),
    (
        "LAYER002",
        "repro/geometry/bad.py",
        "from repro.doc import Document\n",
        "from repro.geometry.bbox import BBox\n",
    ),
    (
        "LAYER003",
        "repro/baselines/bad.py",
        "from repro.core.segment import VS2Segmenter\n",
        "from repro.core.select import Extraction\n",
    ),
    (
        "FRAME001",
        "mod.py",
        "def mid(b):\n    return b.x + b.w / 2\n",
        "def mid(b):\n    return b.centroid[0]\n",
    ),
    (
        "FRAME002",
        "mod.py",
        "from repro.geometry import BBox\n\ndef load(t):\n    return BBox(*t)\n",
        "from repro.geometry import BBox\n\ndef load(t):\n    return BBox.from_tuple(t)\n",
    ),
    (
        "RES001",
        "repro/core/wait.py",
        "import time\n\ndef backoff(attempt):\n    time.sleep(0.05 * attempt)\n",
        "def backoff(clock, attempt):\n    clock.charge(0.05 * attempt)\n",
    ),
    (
        "RES002",
        "repro/core/swallow.py",
        "def safe(run, doc):\n"
        "    try:\n"
        "        return run(doc)\n"
        "    except Exception:\n"
        "        return None\n",
        "def safe(run, doc, failures):\n"
        "    try:\n"
        "        return run(doc)\n"
        "    except Exception as exc:\n"
        "        failures.append(DocumentFailure(doc, exc))\n"
        "        return None\n",
    ),
]

_CASE_IDS = [f"{rule}:{path}" for rule, path, _, _ in FIXTURES]


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id, rel_path, dirty, clean", FIXTURES, ids=_CASE_IDS)
    def test_positive_hit(self, tmp_path, rule_id, rel_path, dirty, clean):
        violations = run_lint(tmp_path, dirty, rel_path)
        assert [v.rule for v in violations] == [rule_id]
        v = violations[0]
        assert v.path == rel_path and v.line >= 1
        assert rule_id in f"{v.location}: {v.rule} {v.message}" and ":" in v.location

    @pytest.mark.parametrize("rule_id, rel_path, dirty, clean", FIXTURES, ids=_CASE_IDS)
    def test_clean_counterpart(self, tmp_path, rule_id, rel_path, dirty, clean):
        assert run_lint(tmp_path, clean, rel_path) == []

    @pytest.mark.parametrize("rule_id, rel_path, dirty, clean", FIXTURES, ids=_CASE_IDS)
    def test_noqa_suppresses_reported_line(self, tmp_path, rule_id, rel_path, dirty, clean):
        violations = run_lint(tmp_path, dirty, rel_path)
        lines = dirty.splitlines()
        lines[violations[0].line - 1] += f"  # repro: noqa[{rule_id}]"  # noqa: SUPP001
        assert run_lint(tmp_path, "\n".join(lines) + "\n", rel_path) == []


class TestResilienceFixturePackages:
    """The on-disk RES001/RES002 fixture trees, including the two
    sanctioned escape hatches (the budget module, registered isolation
    sites) that inline fixtures cannot express."""

    def _lint(self, tmp_path, name):
        import shutil

        src = REPO_ROOT / "tests" / "fixtures" / "analysis" / name
        dst = tmp_path / name
        shutil.copytree(src, dst)
        return lint_paths([dst], root=dst)

    def test_bare_sleep_flagged_only_outside_budget_module(self, tmp_path):
        violations = self._lint(tmp_path, "bare_sleep_backoff")
        assert [(v.rule, v.path) for v in violations] == [
            ("RES001", "repro/core/retry.py")
        ]

    def test_broad_except_exempt_only_at_isolation_sites(self, tmp_path):
        violations = self._lint(tmp_path, "swallow_without_failure")
        assert [(v.rule, v.path) for v in violations] == [
            ("RES002", "repro/core/chunk.py")
        ]


class TestSuppression:
    def test_blanket_noqa_silences_rules_but_reports_supp001(self, tmp_path):
        source = "import random\nvalue = random.random()  # repro: noqa\n"  # noqa: SUPP001
        violations = run_lint(tmp_path, source, "mod.py")
        assert [v.rule for v in violations] == ["SUPP001"]
        assert violations[0].line == 2

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        source = "import random\nvalue = random.random()  # repro: noqa[MUT001]\n"
        assert [v.rule for v in run_lint(tmp_path, source, "mod.py")] == ["DET001"]

    def test_conventional_colon_list_form(self, tmp_path):
        source = "import random\nvalue = random.random()  # noqa: DET001,FRAME101\n"
        assert run_lint(tmp_path, source, "mod.py") == []

    def test_colon_form_for_other_rule_does_not_suppress(self, tmp_path):
        source = "import random\nvalue = random.random()  # noqa: MUT001\n"
        assert [v.rule for v in run_lint(tmp_path, source, "mod.py")] == ["DET001"]

    def test_supp001_suppressed_only_by_explicit_listing(self, tmp_path):
        source = "import random\nvalue = random.random()  # repro: noqa , and # noqa: SUPP001\n"  # noqa: SUPP001
        assert run_lint(tmp_path, source, "mod.py") == []


class TestEngine:
    def test_rule_catalogue_is_complete(self):
        expected = {
            "DET001", "DET002", "DET003",
            "LAYER001", "LAYER002", "LAYER003",
            "FRAME001", "FRAME002",
            "MUT001", "EXC001",
            "OBS001",
            "RES001", "RES002",
        }
        assert expected <= set(ALL_RULES)
        for rule in ALL_RULES.values():
            assert rule.summary

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([tmp_path], rule_ids=["NOPE999"])

    def test_rule_subset_restricts_run(self, tmp_path):
        source = "import random\n\ndef f(xs=[]):\n    return random.random()\n"
        violations = run_lint(tmp_path, source, "mod.py", rules=["MUT001"])
        assert [v.rule for v in violations] == ["MUT001"]

    def test_unparseable_file_reports_parse001(self, tmp_path):
        violations = run_lint(tmp_path, "def broken(:\n", "mod.py")
        assert [v.rule for v in violations] == ["PARSE001"]

    def test_violations_sorted_by_location(self, tmp_path):
        source = (
            "import random\n"
            "def f(xs=[]):\n"
            "    return random.random()\n"
        )
        violations = run_lint(tmp_path, source, "mod.py")
        assert violations == sorted(violations)

    def test_type_checking_imports_exempt_from_layering(self, tmp_path):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.perf.runner import CorpusRunner\n"
        )
        assert run_lint(tmp_path, source, "repro/core/typed.py") == []

    def test_function_local_import_is_the_layering_escape_hatch(self, tmp_path):
        source = (
            "def run_corpus():\n"
            "    from repro.perf.runner import CorpusRunner\n"
            "    return CorpusRunner\n"
        )
        assert run_lint(tmp_path, source, "repro/core/lazy.py") == []


class TestBaseline:
    def test_roundtrip_and_filtering(self, tmp_path):
        dirty = "import random\nvalue = random.random()\n"
        violations = run_lint(tmp_path, dirty, "mod.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, violations)
        fingerprints = load_baseline(baseline_path)
        assert fingerprints == {v.fingerprint() for v in violations}
        assert apply_baseline(violations, fingerprints) == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_fingerprint_survives_line_shift(self):
        a = Violation("m.py", 3, 1, "DET001", "msg")
        b = Violation("m.py", 30, 9, "DET001", "msg")
        assert a.fingerprint() == b.fingerprint()

    def test_shipped_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / "lint_baseline.json") == set()


class TestOutput:
    def test_json_format(self, tmp_path):
        import json

        violations = run_lint(tmp_path, "import random\nv = random.random()\n", "mod.py")
        payload = json.loads(format_json(violations))
        assert payload[0]["rule"] == "DET001"
        assert set(payload[0]) == {"path", "line", "col", "rule", "message"}

    def test_human_format(self, tmp_path):
        violations = run_lint(tmp_path, "import random\nv = random.random()\n", "mod.py")
        text = format_human(violations)
        assert "mod.py:2:" in text and "DET001" in text and "1 violation(s)" in text
        assert format_human([]) == "repro check: clean"


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert repro_main(["check", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_nonzero_with_rule_and_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        assert repro_main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py:2:" in out

    def test_list_rules(self, capsys):
        assert repro_main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "LAYER003" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert repro_main(
            ["check", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert repro_main(["check", str(tmp_path), "--baseline", str(baseline)]) == 0


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        """The repo's own src/ and tests/ hold zero violations — new
        rules must ship with their hits fixed, not baselined."""
        violations = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT
        )
        assert violations == [], format_human(violations)
