"""Synthetic websites, web wrapper, holdout corpus (Table 2 pipeline)."""

import pytest

from repro.core.holdout import (
    distribution_is_approximately_normal,
    pattern_distribution,
    pattern_signature,
)
from repro.synth.holdout import build_holdout_corpus
from repro.html import parse_html
from repro.html.wrapper import extract_records
from repro.synth.websites import (
    ALLEVENTS_WRAPPER,
    FSBO_WRAPPER,
    HOLDOUT_SOURCES,
    IRS_WRAPPER,
    allevents_listing,
    fsbo_listing,
    irs_field_tables,
)


class TestWebsites:
    def test_allevents_page_parses_and_wraps(self):
        html = allevents_listing(seed=0, n_results=12)
        records = extract_records(parse_html(html), ALLEVENTS_WRAPPER)
        assert len(records) == 12
        assert all(r["event_title"] for r in records)
        assert all(r["event_time"] for r in records)

    def test_fsbo_page(self):
        html = fsbo_listing(seed=0, n_results=8)
        records = extract_records(parse_html(html), FSBO_WRAPPER)
        assert len(records) == 8
        assert all("@" in r["broker_email"] for r in records)

    def test_irs_field_index_covers_all_fields(self):
        html = irs_field_tables(seed=0)
        records = extract_records(parse_html(html), IRS_WRAPPER)
        assert len(records) == 1369

    def test_sources_table_matches_paper(self):
        assert len(HOLDOUT_SOURCES["D1"]) == 1
        assert len(HOLDOUT_SOURCES["D2"]) == 2  # allevents.in + dl.acm.org
        assert len(HOLDOUT_SOURCES["D3"]) == 2  # fsbo.com + homesbyowner.com


class TestHoldoutCorpus:
    def test_d2_entities_populated(self):
        corpus = build_holdout_corpus("D2", max_entries_per_entity=20)
        for entity in (
            "event_title",
            "event_time",
            "event_place",
            "event_organizer",
            "event_description",
        ):
            assert len(corpus.texts_for(entity)) >= 10

    def test_d3_entities_populated(self):
        corpus = build_holdout_corpus("D3", max_entries_per_entity=15)
        assert len(corpus.texts_for("broker_phone")) >= 10

    def test_d1_descriptor_entries(self):
        corpus = build_holdout_corpus("D1")
        assert corpus.size() == 1369
        entries = corpus.texts_for(next(iter(corpus.entity_types())))
        assert entries and entries[0]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            build_holdout_corpus("D7")

    def test_max_entries_respected(self):
        corpus = build_holdout_corpus("D2", max_entries_per_entity=5)
        assert all(len(v) <= 5 for v in corpus.entries.values())


class TestPatternDistribution:
    def test_signature_stable(self):
        assert pattern_signature("the grand concert") == pattern_signature(
            "a small festival"
        )

    def test_distribution_counts(self):
        counts = pattern_distribution(["one two", "three four", "five"])
        assert sum(counts.values()) == 3

    def test_normality_check_needs_three_patterns(self):
        from collections import Counter

        assert not distribution_is_approximately_normal(Counter({("NP",): 5}))
