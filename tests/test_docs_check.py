"""The docs hygiene checker (``tools/docs_check.py``): link parsing,
dead-link detection, README reachability — and the real repo is clean."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import docs_check  # noqa: E402


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def test_markdown_links_ignore_external_anchors_and_code(tmp_path):
    md = _write(
        tmp_path,
        "a.md",
        "[ok](docs/x.md#section) and [web](https://example.com) and\n"
        "[anchor](#local) and [mail](mailto:x@y.z)\n"
        "```\n[not a link](inside/fence.md)\n```\n"
        "inline `[also not](inline/code.md)` span\n",
    )
    assert docs_check.markdown_links(md) == ["docs/x.md"]


def test_check_links_flags_dead_and_escaping_targets(tmp_path):
    _write(tmp_path, "README.md", "[gone](docs/missing.md) [up](../outside.md)")
    problems = docs_check.check_links(tmp_path)
    assert any("dead link: docs/missing.md" in p for p in problems)
    assert any("escapes the repository" in p for p in problems)


def test_check_links_clean_tree(tmp_path):
    _write(tmp_path, "README.md", "[d](docs/D.md)")
    _write(tmp_path, "docs/D.md", "[back](../README.md)")
    assert docs_check.check_links(tmp_path) == []


def test_reachability_flags_orphaned_doc(tmp_path):
    _write(tmp_path, "README.md", "[d](docs/LINKED.md)")
    _write(tmp_path, "docs/LINKED.md", "no further links")
    _write(tmp_path, "docs/ORPHAN.md", "nobody links here")
    problems = docs_check.check_reachability(tmp_path)
    assert len(problems) == 1
    assert "ORPHAN.md" in problems[0] and "unreachable" in problems[0]


def test_reachability_follows_chains(tmp_path):
    _write(tmp_path, "README.md", "[a](docs/A.md)")
    _write(tmp_path, "docs/A.md", "[b](B.md)")
    _write(tmp_path, "docs/B.md", "leaf")
    assert docs_check.check_reachability(tmp_path) == []


def test_main_exit_codes(tmp_path, capsys):
    _write(tmp_path, "README.md", "[d](docs/D.md)")
    _write(tmp_path, "docs/D.md", "ok")
    assert docs_check.main([str(tmp_path)]) == 0
    assert "ok" in capsys.readouterr().out
    _write(tmp_path, "docs/D.md", "[dead](nope.md)")
    assert docs_check.main([str(tmp_path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_repository_docs_are_clean():
    """The repo's own documentation passes its own gate."""
    problems, stats = docs_check.run(REPO_ROOT)
    assert problems == []
    assert stats["files"] >= 6  # README + docs/*.md at minimum
