"""Runtime contracts: the ``@checked`` machinery and every invariant.

All tests carry the ``contracts`` marker so ``make test`` runs them a
second time with ``REPRO_CONTRACTS=1`` in the environment; they also
pass under plain pytest because they toggle contracts through the API.
"""

from __future__ import annotations

import pytest

from repro.analysis.contracts import (
    ContractViolation,
    check_cut_sets_in_whitespace,
    check_extraction_spans,
    check_layout_tree,
    check_pareto_front,
    check_separators_clear_of_boxes,
    checked,
    contracts,
    contracts_enabled,
    enable_contracts,
)
from repro.core.delimiters import identify_visual_delimiters
from repro.core.segment import VS2Segmenter
from repro.core.select import Extraction
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.geometry import BBox, OccupancyGrid
from repro.geometry.cuts import CutSet, interior_cut_sets
from repro.optimize.pareto import pareto_front

pytestmark = pytest.mark.contracts


# ----------------------------------------------------------------------
# The @checked decorator
# ----------------------------------------------------------------------
class TestCheckedDecorator:
    def test_post_not_called_when_disabled(self):
        calls = []

        @checked(post=lambda result, x: calls.append(x))
        def double(x):
            return 2 * x

        with contracts(False):
            assert double(3) == 6
        assert calls == []

    def test_post_called_when_enabled(self):
        calls = []

        @checked(post=lambda result, x: calls.append((x, result)))
        def double(x):
            return 2 * x

        with contracts(True):
            assert double(3) == 6
        assert calls == [(3, 6)]

    def test_violation_propagates_through_decorated_call(self):
        """A broken implementation is caught at the call site."""

        @checked(post=lambda front, points: check_pareto_front(points, front))
        def broken_front(points):
            return []  # drops every non-dominated point

        with contracts(True):
            with pytest.raises(ContractViolation, match="missing from front"):
                broken_front([(1.0, 0.0), (0.0, 1.0)])

    def test_context_manager_restores_state(self):
        before = contracts_enabled()
        with contracts(not before):
            assert contracts_enabled() is (not before)
        assert contracts_enabled() is before

    def test_enable_contracts_toggles(self):
        before = contracts_enabled()
        try:
            enable_contracts(True)
            assert contracts_enabled()
            enable_contracts(False)
            assert not contracts_enabled()
        finally:
            enable_contracts(before)


# ----------------------------------------------------------------------
# Segmentation invariants
# ----------------------------------------------------------------------
def _grid_with_band(occupied_rows):
    """A 40x40-unit grid (10x10 cells of 4) with two content bands."""
    grid = OccupancyGrid(40, 40, cell=4.0)
    for row in occupied_rows:
        grid.occupied[row, :] = True
    return grid


class TestCutWhitespace:
    def test_cut_through_whitespace_passes(self):
        grid = _grid_with_band([1, 2, 7, 8])
        cut = CutSet("horizontal", start_index=4, size=2, cell=4.0)
        check_cut_sets_in_whitespace(grid, [cut])

    def test_cut_through_content_raises(self):
        grid = _grid_with_band([1, 2, 7, 8])
        cut = CutSet("horizontal", start_index=6, size=2, cell=4.0)
        with pytest.raises(ContractViolation, match="occupied cell"):
            check_cut_sets_in_whitespace(grid, [cut])

    def test_sloped_cut_checked_along_its_line(self):
        grid = OccupancyGrid(40, 40, cell=4.0)
        grid.occupied[8, 9] = True  # only hit by a line drifting down
        flat = CutSet("horizontal", start_index=5, size=1, cell=4.0, slope=0.0)
        check_cut_sets_in_whitespace(grid, [flat])
        sloped = CutSet("horizontal", start_index=5, size=1, cell=4.0, slope=0.3)
        with pytest.raises(ContractViolation):
            check_cut_sets_in_whitespace(grid, [sloped])

    def test_vertical_orientation(self):
        grid = OccupancyGrid(40, 40, cell=4.0)
        grid.occupied[:, 5] = True
        good = CutSet("vertical", start_index=2, size=1, cell=4.0)
        check_cut_sets_in_whitespace(grid, [good])
        with pytest.raises(ContractViolation, match="vertical cut"):
            check_cut_sets_in_whitespace(
                grid, [CutSet("vertical", start_index=5, size=1, cell=4.0)]
            )

    def test_agrees_with_vectorised_cut_finder(self):
        """The scalar re-walk accepts whatever the production
        (vectorised) cut finder emits — on every slope it scans."""
        grid = _grid_with_band([2, 3, 11 % 10])
        for orientation in ("horizontal", "vertical"):
            check_cut_sets_in_whitespace(grid, interior_cut_sets(grid, orientation))


class TestSeparatorsClearOfBoxes:
    def test_separator_between_boxes_passes(self):
        boxes = [BBox(0, 0, 40, 10), BBox(0, 30, 40, 10)]
        sep = CutSet("horizontal", start_index=4, size=2, cell=4.0)  # mid y=20
        check_separators_clear_of_boxes([sep], boxes)

    def test_separator_through_box_raises(self):
        boxes = [BBox(0, 10, 40, 20)]  # interior y in (10, 30)
        sep = CutSet("horizontal", start_index=4, size=2, cell=4.0)  # mid y=20
        with pytest.raises(ContractViolation, match="runs through content"):
            check_separators_clear_of_boxes([sep], boxes)

    def test_identify_visual_delimiters_is_checked(self):
        """The decorated Algorithm 1 runs its post-condition when
        contracts are on (accepted separators clear the content)."""
        boxes = [BBox(0, 0, 100, 12), BBox(0, 40, 100, 12), BBox(0, 80, 100, 12)]
        grid = OccupancyGrid.from_bboxes(boxes, 100, 100, cell=4.0)
        with contracts(True):
            separators = identify_visual_delimiters(
                interior_cut_sets(grid, "horizontal"), boxes, min_gap_ratio=0.5
            )
        assert separators  # the gaps are real delimiters


def _tree(atoms_by_leaf):
    """Root with one child per atom group (boxes enclose their atoms)."""
    from repro.doc.elements import TextElement
    from repro.geometry import enclosing_bbox

    leaves = []
    all_atoms = []
    for i, boxes in enumerate(atoms_by_leaf):
        atoms = [
            TextElement(f"w{i}_{j}", box, font_size=10.0)
            for j, box in enumerate(boxes)
        ]
        all_atoms.extend(atoms)
        leaves.append(
            LayoutNode(bbox=enclosing_bbox(boxes), atoms=atoms, kind="cut")
        )
    root = LayoutNode(bbox=BBox(0, 0, 200, 200), atoms=all_atoms, kind="root")
    for leaf in leaves:
        root.add_child(leaf)
    return LayoutTree(root)


class TestLayoutTree:
    def test_well_formed_tree_passes(self):
        tree = _tree([[BBox(10, 10, 30, 10)], [BBox(10, 100, 30, 10)]])
        check_layout_tree(tree)

    def test_dropped_atom_raises(self):
        tree = _tree([[BBox(10, 10, 30, 10)], [BBox(10, 100, 30, 10)]])
        tree.root.children[1].atoms.clear()  # child loses its atom
        with pytest.raises(ContractViolation, match="dropped or invented"):
            check_layout_tree(tree)

    def test_duplicated_atom_raises(self):
        tree = _tree([[BBox(10, 10, 30, 10)], [BBox(10, 100, 30, 10)]])
        stolen = tree.root.children[0].atoms[0]
        tree.root.children[1].atoms.append(stolen)
        with pytest.raises(ContractViolation, match="two sibling areas"):
            check_layout_tree(tree)

    def test_escaping_child_raises(self):
        tree = _tree([[BBox(10, 10, 30, 10)], [BBox(10, 100, 30, 10)]])
        tree.root.children[0].bbox = BBox(10, 10, 500, 10)  # past the root
        with pytest.raises(ContractViolation, match="nesting broken"):
            check_layout_tree(tree)

    def test_heavily_overlapping_cut_siblings_raise(self):
        tree = _tree([[BBox(10, 10, 30, 10)], [BBox(12, 10, 30, 10)]])
        with pytest.raises(ContractViolation, match="siblings .* overlap"):
            check_layout_tree(tree)


class TestSegmenterEndToEnd:
    def test_segmenting_a_real_document_passes(self, d2_corpus):
        with contracts(True):
            tree = VS2Segmenter().segment(d2_corpus[0])
        assert tree.logical_blocks()


# ----------------------------------------------------------------------
# Selection invariants
# ----------------------------------------------------------------------
class TestParetoContract:
    def test_valid_front_passes(self):
        points = [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5), (0.2, 0.2)]
        check_pareto_front(points, [0, 1, 2])

    def test_dominated_member_raises(self):
        points = [(1.0, 1.0), (0.0, 0.0)]
        with pytest.raises(ContractViolation, match="is dominated by"):
            check_pareto_front(points, [0, 1])

    def test_missing_member_raises(self):
        points = [(1.0, 0.0), (0.0, 1.0)]
        with pytest.raises(ContractViolation, match="missing from front"):
            check_pareto_front(points, [0])

    def test_duplicates_both_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        check_pareto_front(points, [0, 1])  # neither strictly dominates

    def test_production_pareto_front_satisfies_contract(self):
        points = [(float(i % 3), float(i % 5), float(-i)) for i in range(30)]
        with contracts(True):
            front = pareto_front(points)
        assert front  # and the decorated post-condition just ran


class TestExtractionSpans:
    def test_span_inside_block_passes(self):
        e = Extraction("t", "x", BBox(0, 0, 100, 20), BBox(10, 5, 30, 10), 1.0)
        check_extraction_spans([e])

    def test_span_escaping_block_raises(self):
        e = Extraction("t", "x", BBox(0, 0, 100, 20), BBox(90, 50, 30, 10), 1.0)
        with pytest.raises(ContractViolation, match="escapes block"):
            check_extraction_spans([e])


# ----------------------------------------------------------------------
# Full pipeline under contracts
# ----------------------------------------------------------------------
class TestPipelineUnderContracts:
    @pytest.mark.parametrize("dataset", ["D1", "D2", "D3"])
    def test_pipeline_runs_clean(self, request, dataset):
        from repro.core.pipeline import VS2Pipeline

        corpus = request.getfixturevalue(f"{dataset.lower()}_corpus")
        with contracts(True):
            result = VS2Pipeline(dataset).run(corpus[0])
        assert result.doc_id == corpus[0].doc_id
