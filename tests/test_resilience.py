"""Chaos suite for :mod:`repro.resilience`.

Everything here runs under a *deterministic* :class:`FaultPlan` — the
same seed schedules the same faults whether the corpus runs serially,
across a supervised worker pool, or resumed from a checkpoint.  The
suite covers the three layers of the resilience stack:

* the fault plan itself (spec grammar, seeded decisions, OCR
  corruption),
* the degradation ladder inside :class:`VS2Pipeline` (semantic-merge
  and pattern-match failures fall back instead of failing the doc),
* the supervised runner (retry with virtual backoff, quarantine,
  per-document timeout with worker replacement, crash containment,
  checkpoint/resume byte-identity).
"""

from __future__ import annotations

import json
import logging
import multiprocessing
from dataclasses import dataclass

import pytest

from repro.instrument import PipelineMetrics
from repro.perf import CorpusRunError, CorpusRunner
from repro.resilience import (
    FaultPlan,
    FaultRule,
    PermanentFault,
    SupervisionPolicy,
    TransientFault,
    doc_scope,
    drain_virtual_latency,
    fault_site,
    install,
    uninstall,
)
from repro.synth import generate_corpus
from repro.trace import Tracer, jsonl_lines

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Fast supervision knobs shared by most tests: tiny virtual backoff,
#: short (real) watchdog timeout for the hang tests.
FAST = {"backoff_base_s": 0.01, "backoff_cap_s": 0.04}


def corpus(n: int = 6, seed: int = 3):
    return list(generate_corpus("D2", n=n, seed=seed))


def canonical(outcome) -> bytes:
    """Byte-stable JSON of the extractable output (``None`` slots —
    quarantined docs — serialise as ``null``)."""
    payload = [
        None
        if r is None
        else {
            "doc_id": r.doc_id,
            "skew": r.skew_angle,
            "extractions": [
                (e.entity_type, e.text, e.bbox.as_tuple(), e.score)
                for e in r.extractions
            ],
        }
        for r in outcome.results
    ]
    return json.dumps(payload, sort_keys=True).encode()


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no ambient plan installed."""
    uninstall()
    yield
    uninstall()


# ----------------------------------------------------------------------
# The fault plan
# ----------------------------------------------------------------------
class TestFaultPlanSpec:
    def test_spec_grammar(self):
        plan = FaultPlan.from_spec(
            "ocr:flaky@0.1,worker:crash@doc=7,merge:slow@latency=0.5,select:corrupt@severity=0.9@p=0.2",
            seed=5,
        )
        assert plan.seed == 5
        assert [r.site for r in plan.rules] == [
            "ocr.transcribe", "worker.chunk", "segment.merge", "select.match",
        ]
        assert plan.rules[0].kind == "flaky" and plan.rules[0].p == 0.1
        assert plan.rules[1].kind == "crash" and plan.rules[1].doc == 7
        assert plan.rules[2].latency_s == 0.5
        assert plan.rules[3].severity == 0.9 and plan.rules[3].p == 0.2

    @pytest.mark.parametrize(
        "bad", ["ocr", "nowhere:fail", "ocr:melt", "ocr:fail@banana=1"]
    )
    def test_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.from_spec("ocr:corrupt@0.3@severity=0.7,boot:fail@doc=1", seed=9)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.from_file(str(path))
        assert loaded == plan
        assert loaded.spec_key() == plan.spec_key()

    def test_decide_is_a_pure_function_of_coordinates(self):
        plan = FaultPlan.from_spec("ocr:flaky@0.5", seed=13)
        draws = [
            plan.decide("ocr.transcribe", f"doc-{i}", i, attempt)
            for i in range(40)
            for attempt in (1, 2)
        ]
        again = [
            plan.decide("ocr.transcribe", f"doc-{i}", i, attempt)
            for i in range(40)
            for attempt in (1, 2)
        ]
        assert [d is not None for d in draws] == [d is not None for d in again]
        fired = sum(d is not None for d in draws)
        assert 0 < fired < len(draws)  # p=0.5 actually samples

    def test_decide_respects_doc_and_attempt_filters(self):
        plan = FaultPlan.from_spec("ocr:fail@doc=2@attempts=1")
        assert plan.decide("ocr.transcribe", "a", 2, 1) is not None
        assert plan.decide("ocr.transcribe", "a", 1, 1) is None  # wrong doc
        assert plan.decide("ocr.transcribe", "a", 2, 2) is None  # attempt window over
        assert plan.decide("segment.cuts", "a", 2, 1) is None  # wrong site

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.from_spec("ocr:fail@doc=1,ocr:flaky")
        assert plan.decide("ocr.transcribe", "x", 1, 1).kind == "fail"
        assert plan.decide("ocr.transcribe", "x", 0, 1).kind == "flaky"


class _Word:
    def __init__(self, text):
        self.text = text

    def with_text(self, text):
        return _Word(text)


class TestFaultActions:
    def test_corrupt_words_is_deterministic(self):
        plan = FaultPlan.from_spec("ocr:corrupt@severity=0.5", seed=4)
        action = plan.decide("ocr.transcribe", "doc-0", 0, 1)
        words = [_Word(w) for w in ("invoice", "total", "42.50", "due")]
        first = [w.text for w in action.corrupt_words(words)]
        second = [w.text for w in action.corrupt_words(words)]
        assert first == second
        assert first != [w.text for w in words]  # something got garbled

    def test_corrupt_full_severity_garbles_everything(self):
        plan = FaultPlan.from_spec("ocr:corrupt@severity=1.0", seed=4)
        action = plan.decide("ocr.transcribe", "doc-0", 0, 1)
        out = action.corrupt_words([_Word("ab-1")])
        assert out[0].text == "##-#"

    def test_slow_charges_virtual_latency_once_per_site(self):
        install(FaultPlan.from_spec("merge:slow@latency=0.5"))
        with doc_scope("doc-0", 0, attempt=1):
            assert fault_site("segment.merge") is None
            assert fault_site("segment.merge") is None  # memoised, no double charge
        assert drain_virtual_latency() == pytest.approx(0.5)
        assert drain_virtual_latency() == 0.0

    def test_typed_raises(self):
        install(FaultPlan.from_spec("ocr:flaky,select:fail"))
        with doc_scope("doc-0", 0):
            with pytest.raises(TransientFault):
                fault_site("ocr.transcribe")
            with pytest.raises(PermanentFault):
                fault_site("select.match")

    def test_hang_and_crash_simulate_as_transient_outside_workers(self):
        install(FaultPlan.from_spec("merge:hang,worker:crash"), preemptible=False)
        with doc_scope("doc-0", 0):
            with pytest.raises(TransientFault):
                fault_site("segment.merge")
            with pytest.raises(TransientFault):
                fault_site("worker.chunk")


# ----------------------------------------------------------------------
# The degradation ladder inside the pipeline
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_merge_failure_degrades_to_visual_only(self):
        docs = corpus(n=3)
        outcome = CorpusRunner("D2", fault_plan=FaultPlan.from_spec("merge:fail@doc=1")).run(docs)
        assert not outcome.failures
        degraded = outcome.results[1]
        assert [d.to_dict() for d in degraded.degradations] == [
            {
                "stage": "segment",
                "fallback": "visual_only",
                "error_type": "PermanentFault",
                "message": degraded.degradations[0].message,
            }
        ]
        assert not outcome.results[0].degradations
        assert degraded.extractions  # the visual-only tree still extracts

    def test_select_failure_degrades_to_ner_fallback(self):
        docs = corpus(n=3)
        outcome = CorpusRunner("D2", fault_plan=FaultPlan.from_spec("select:fail@doc=2")).run(docs)
        assert not outcome.failures
        degraded = outcome.results[2]
        assert [(d.stage, d.fallback) for d in degraded.degradations] == [
            ("select", "ner_fallback")
        ]
        assert degraded.extractions
        assert all(e.entity_type.startswith("ner:") for e in degraded.extractions)

    def test_transient_faults_pass_through_the_ladder(self):
        """A ``TransientFault`` inside a ladder stage must reach the
        supervisor (for retry) instead of being absorbed as a
        degradation."""
        docs = corpus(n=3)
        outcome = CorpusRunner("D2", fault_plan=FaultPlan.from_spec("merge:flaky@doc=1")).run(docs)
        assert [f.doc_id for f in outcome.failures] == [docs[1].doc_id]
        assert outcome.failures[0].transient


# ----------------------------------------------------------------------
# Plain-runner satellites
# ----------------------------------------------------------------------
@dataclass
class _Exploding:
    def __post_init__(self):
        self.metrics = PipelineMetrics()

    def run(self, doc):
        raise ValueError(f"no parser for {doc.doc_id}")


class TestRunnerFailureReporting:
    def test_raise_first_preserves_type_and_chains_cause(self):
        docs = corpus(n=2)
        outcome = CorpusRunner("D2", pipeline_factory=_Exploding).run(docs)
        assert [f.error_type for f in outcome.failures] == ["ValueError"] * 2
        with pytest.raises(CorpusRunError) as excinfo:
            outcome.raise_first()
        assert excinfo.value.error_type == "ValueError"
        assert docs[0].doc_id in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_degrade_to_serial_is_loud(self, monkeypatch, caplog):
        """The old silent ``except (OSError, ValueError)`` fallback now
        logs, traces ``runner.degrade`` and records the reason."""
        from repro.perf import runner as runner_mod

        def _no_pool(*args, **kwargs):
            raise OSError("process pools forbidden here")

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", _no_pool)
        tracer = Tracer()
        docs = corpus(n=3)
        with caplog.at_level(logging.WARNING, logger="repro.perf.runner"):
            outcome = CorpusRunner("D2", workers=2, tracer=tracer).run(docs)
        assert all(r is not None for r in outcome.results)
        assert outcome.degrade_reason == "OSError: process pools forbidden here"
        assert any("degraded to serial" in r.message for r in caplog.records)
        log = "\n".join(jsonl_lines(tracer.drain(), normalize=True))
        assert "runner.degrade" in log


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------
def supervised(docs, plan, workers=1, tracer=None, **policy):
    policy = SupervisionPolicy(**{**FAST, **policy})
    runner = CorpusRunner(
        "D2",
        workers=workers,
        fault_plan=plan,
        supervision=policy,
        tracer=tracer if tracer is not None else Tracer(),
    )
    return runner.run(docs)


class TestSupervisedSerial:
    def test_flaky_doc_succeeds_on_retry(self):
        docs = corpus()
        tracer = Tracer()
        outcome = supervised(
            docs, FaultPlan.from_spec("ocr:flaky@doc=1@attempts=1"), tracer=tracer
        )
        assert not outcome.failures and all(r is not None for r in outcome.results)
        report = outcome.supervision
        assert report.attempts[docs[1].doc_id] == 2
        retries = [e for e in report.events if e.kind == "retry"]
        assert [(e.doc_index, e.attempt, e.error_type) for e in retries] == [
            (1, 1, "TransientFault")
        ]
        assert report.backoff_s == pytest.approx(FAST["backoff_base_s"])
        log = "\n".join(jsonl_lines(tracer.drain(), normalize=True))
        assert "runner.retry" in log and "fault.injected" in log

    def test_poison_doc_quarantined_after_max_attempts(self, tmp_path):
        docs = corpus()
        report_path = tmp_path / "quarantine.json"
        outcome = supervised(
            docs,
            FaultPlan.from_spec("ocr:flaky@doc=2"),  # never clears
            max_attempts=3,
            quarantine_report_path=str(report_path),
        )
        assert outcome.results[2] is None
        assert [f.doc_id for f in outcome.failures] == [docs[2].doc_id]
        entry = outcome.supervision.quarantine.entries[0]
        assert entry.doc_index == 2 and entry.error_type == "TransientFault"
        assert [(a.attempt, a.kind) for a in entry.attempts] == [
            (1, "transient"), (2, "transient"), (3, "transient"),
        ]
        written = json.loads(report_path.read_text())
        assert written["schema"] == "repro.quarantine/1"
        assert [e["doc_id"] for e in written["entries"]] == [docs[2].doc_id]

    def test_permanent_fault_skips_retries(self):
        docs = corpus()
        outcome = supervised(docs, FaultPlan.from_spec("ocr:fail@doc=0"))
        report = outcome.supervision
        assert not [e for e in report.events if e.kind == "retry"]
        assert report.attempts[docs[0].doc_id] == 1
        assert outcome.supervision.quarantine.doc_ids() == [docs[0].doc_id]
        assert outcome.failures[0].error_type == "PermanentFault"
        assert not outcome.failures[0].transient

    def test_virtual_backoff_never_sleeps(self):
        """The retry schedule is charged to the virtual clock — three
        capped-exponential backoffs, zero wall time."""
        import time as _time

        docs = corpus(n=4)
        start = _time.monotonic()
        outcome = supervised(
            docs,
            FaultPlan.from_spec("ocr:flaky"),
            max_attempts=4,
            backoff_base_s=10.0,
            backoff_cap_s=30.0,
        )
        elapsed = _time.monotonic() - start
        # 4 docs x backoffs of 10 + 20 + 30 virtual seconds each
        assert outcome.supervision.backoff_s == pytest.approx(240.0)
        assert elapsed < 240.0  # and nothing actually slept


class TestCheckpointResume:
    def _plan(self):
        return FaultPlan.from_spec("ocr:flaky@doc=1@attempts=1,worker:fail@doc=3", seed=7)

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        docs = corpus()
        baseline = supervised(docs, self._plan(), checkpoint_path=str(tmp_path / "a.jsonl"))
        want = canonical(baseline)

        # Uninterrupted first run, then simulate a kill by truncating
        # the log mid-record (a torn final write).
        path = tmp_path / "b.jsonl"
        supervised(docs, self._plan(), checkpoint_path=str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 1 + len(docs)  # header + one record per doc
        path.write_bytes(b"".join(lines[:4]) + lines[4][: len(lines[4]) // 2])

        resumed = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert canonical(resumed) == want
        assert resumed.supervision.resumed_docs == 3
        resume_docs = [e.doc_index for e in resumed.supervision.events if e.kind == "resume"]
        assert resume_docs == [0, 1, 2]

        # A third run over the repaired log resumes everything.
        final = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert canonical(final) == want
        assert final.supervision.resumed_docs == len(docs)

    def test_truncated_payload_in_final_record_is_dropped(self, tmp_path, caplog):
        docs = corpus()
        baseline = supervised(docs, self._plan(), checkpoint_path=str(tmp_path / "a.jsonl"))
        want = canonical(baseline)

        # A crash can land after the JSON framing of the final record
        # was flushed but with its pickle payload torn: the line parses,
        # the payload does not.  That is the same kill artefact as a
        # torn line and must be dropped with a warning, not crash the
        # resume.
        path = tmp_path / "b.jsonl"
        supervised(docs, self._plan(), checkpoint_path=str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[-1])
        assert record["type"] == "result"
        record["payload"] = record["payload"][: len(record["payload"]) // 2]
        torn = (json.dumps(record, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines[:-1]) + torn)

        with caplog.at_level(logging.WARNING, logger="repro.resilience.checkpoint"):
            resumed = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert canonical(resumed) == want
        assert resumed.supervision.resumed_docs == len(docs) - 1  # torn doc re-ran
        assert any("truncated final record" in m for m in caplog.messages)

    def test_final_line_cut_inside_a_multibyte_char_is_dropped(self, tmp_path):
        docs = corpus()
        path = tmp_path / "run.jsonl"
        first = supervised(docs, self._plan(), checkpoint_path=str(path))
        want = canonical(first)
        # Simulate a kill mid-write that stops inside a multi-byte
        # UTF-8 sequence: the final line is not even decodable, let
        # alone parseable.  Loading must drop it, not raise
        # UnicodeDecodeError.
        torn = '{"type": "result", "doc_id": "é'.encode("utf-8")
        path.write_bytes(path.read_bytes() + torn[:-1])
        resumed = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert canonical(resumed) == want
        assert resumed.supervision.resumed_docs == len(docs)  # nothing re-ran

    def test_undecodable_payload_before_the_end_is_corrupt(self, tmp_path):
        docs = corpus()
        path = tmp_path / "run.jsonl"
        supervised(docs, self._plan(), checkpoint_path=str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[2])
        assert record["type"] == "result"
        record["payload"] = record["payload"][: len(record["payload"]) // 2]
        lines[2] = (json.dumps(record, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        with pytest.raises(ValueError, match="undecodable result payload on line 3"):
            supervised(docs, self._plan(), checkpoint_path=str(path))

    def test_resume_restores_quarantine(self, tmp_path):
        docs = corpus()
        path = tmp_path / "run.jsonl"
        first = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert [f.doc_id for f in first.failures] == [docs[3].doc_id]
        resumed = supervised(docs, self._plan(), checkpoint_path=str(path))
        assert [f.doc_id for f in resumed.failures] == [docs[3].doc_id]
        assert resumed.failures[0].error_type == first.failures[0].error_type
        assert resumed.supervision.quarantine.doc_ids() == [docs[3].doc_id]

    def test_checkpoint_refuses_a_different_run(self, tmp_path):
        docs = corpus()
        path = tmp_path / "run.jsonl"
        supervised(docs, self._plan(), checkpoint_path=str(path))
        with pytest.raises(ValueError, match="different run"):
            supervised(docs, FaultPlan.from_spec("ocr:fail@doc=0"), checkpoint_path=str(path))


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestSupervisedParallel:
    def test_hang_times_out_and_worker_is_replaced(self):
        docs = corpus()
        tracer = Tracer()
        outcome = supervised(
            docs,
            FaultPlan.from_spec("merge:hang@doc=1@attempts=1"),
            workers=2,
            tracer=tracer,
            timeout_s=3.0,
        )
        assert not outcome.failures and all(r is not None for r in outcome.results)
        report = outcome.supervision
        assert report.attempts[docs[1].doc_id] == 2
        assert report.worker_replacements >= 1
        kinds = [(e.kind, e.doc_index) for e in report.events if e.doc_index == 1]
        assert ("retry", 1) in kinds
        retry = next(e for e in report.events if e.kind == "retry")
        assert retry.error_type == "DocumentTimeout"
        log = "\n".join(jsonl_lines(tracer.drain(), normalize=True))
        assert "runner.timeout" in log and "runner.worker_replace" in log

    def test_crash_mid_chunk_leaves_rest_of_corpus_intact(self):
        docs = corpus()
        outcome = supervised(
            docs,
            FaultPlan.from_spec("worker:crash@doc=3@attempts=1"),
            workers=2,
            timeout_s=30.0,
        )
        assert not outcome.failures and all(r is not None for r in outcome.results)
        report = outcome.supervision
        assert report.attempts[docs[3].doc_id] == 2
        retry = next(e for e in report.events if e.kind == "retry")
        assert (retry.doc_index, retry.error_type) == (3, "WorkerCrash")
        assert report.worker_replacements >= 1

    def test_parallel_results_match_serial_under_the_same_plan(self):
        docs = corpus()
        plan = FaultPlan.from_spec(
            "ocr:fail@doc=2,worker:flaky@doc=4@attempts=2", seed=7
        )
        serial = supervised(docs, plan, workers=1)
        parallel = supervised(docs, plan, workers=2, timeout_s=30.0)
        assert canonical(serial) == canonical(parallel)
        assert serial.supervision.ledger() == parallel.supervision.ledger()


# ----------------------------------------------------------------------
# The chaos smoke (the acceptance scenario; also wired to `make chaos-smoke`)
# ----------------------------------------------------------------------
@pytest.mark.chaos_smoke
@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_chaos_smoke_every_failure_is_explained():
    """20 documents under a hang + crash + poison + 10% transient plan:
    every non-quarantined document extracts, and every document that
    did not is explained by the supervision ledger."""
    docs = corpus(n=20, seed=11)
    plan = FaultPlan.from_spec(
        "merge:hang@doc=2@attempts=1,"
        "worker:crash@doc=11@attempts=1,"
        "worker:fail@doc=5,"
        "select:fail@doc=8,"
        "ocr:flaky@0.1",
        seed=11,
    )
    tracer = Tracer()
    outcome = supervised(docs, plan, workers=2, tracer=tracer, timeout_s=3.0, max_attempts=3)
    report = outcome.supervision

    quarantined = set(report.quarantine.doc_ids())
    for index, doc in enumerate(docs):
        if doc.doc_id in quarantined:
            assert outcome.results[index] is None
        else:
            assert outcome.results[index] is not None, f"doc {index} lost without explanation"
            assert outcome.results[index].extractions or outcome.results[index].degradations

    # Zero unexplained failures: the failure list and the quarantine
    # ledger agree exactly, and each quarantine has its attempt history.
    assert {f.doc_id for f in outcome.failures} == quarantined
    assert docs[5].doc_id in quarantined  # the poison doc
    ledger = report.ledger()
    for entry in report.quarantine.entries:
        assert entry.attempts  # every quarantine explains its attempts
        assert any(
            row["kind"] == "quarantine" and row["doc_id"] == entry.doc_id for row in ledger
        )

    # The pattern-match poison on doc 8 degraded to the NER fallback
    # instead of failing the document.
    assert outcome.results[8] is not None
    assert [(d.stage, d.fallback) for d in outcome.results[8].degradations] == [
        ("select", "ner_fallback")
    ]

    # The hang and the crash were both survived.
    assert outcome.results[2] is not None and outcome.results[11] is not None
    assert report.attempts[docs[2].doc_id] >= 2
    assert report.attempts[docs[11].doc_id] >= 2
    assert report.worker_replacements >= 2

    # And the run narrates itself: the trace carries the whole story.
    log = "\n".join(jsonl_lines(tracer.drain(), normalize=True))
    for needle in ("fault.injected", "runner.retry", "runner.quarantine"):
        assert needle in log
