"""The whole-program machinery: ProjectIndex, result cache, runner, CLI.

Covers the index's summaries and resolution (imports with scopes, the
approximate call graph, re-export chains, importer liveness), the
content-hash cache (warm-run speedup, per-file invalidation, fingerprint
busting, corruption tolerance), multiprocess parity (``--jobs 2`` equals
serial output byte for byte) and the new ``repro check`` CLI surface
(--explain, --graph, --rekey, --cache, --stats).
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.cache import CACHE_SCHEMA, ResultCache, engine_fingerprint
from repro.analysis.index import ModuleSummary, ProjectIndex, summarize_module
from repro.analysis.lint.engine import ModuleInfo, rekey_baseline, write_baseline
from repro.analysis.runner import check_project

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _run_check_with_cache(tree: Path, root: Path, cache: Path) -> None:
    """Child-process body for the concurrent cache-save race test."""
    check_project([tree], root=root, cache_path=cache)


def make_summary(tmp_path: Path, rel: str, source: str) -> ModuleSummary:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return summarize_module(ModuleInfo(path, source, rel))


class TestModuleSummary:
    def test_import_scopes(self, tmp_path):
        summary = make_summary(
            tmp_path,
            "repro/core/mod.py",
            "import math\n"
            "from repro.geometry import BBox\n"
            "\n"
            "\n"
            "def lazy():\n"
            "    from repro.perf.runner import CorpusRunner\n"
            "    return CorpusRunner\n",
        )
        scopes = {(r.module, r.scope) for r in summary.imports}
        assert ("math", "module") in scopes
        assert ("repro.geometry", "module") in scopes
        assert ("repro.perf.runner", "lazy") in scopes

    def test_event_registry_and_emissions(self, tmp_path):
        summary = make_summary(
            tmp_path,
            "repro/trace/mod.py",
            'EVENT_NAMES = frozenset({"a.b", "c.d"})\n'
            "\n"
            "\n"
            "def go(tracer):\n"
            '    tracer.event("a.b", n=1)\n',
        )
        assert summary.event_registry is not None
        assert sorted(summary.event_registry[0]) == ["a.b", "c.d"]
        assert [name for name, _ in summary.events] == ["a.b"]

    def test_reexport_only_detection(self, tmp_path):
        shim = make_summary(
            tmp_path,
            "repro/core/shim.py",
            '"""Shim."""\n\nfrom repro.core.real import thing\n\n__all__ = ["thing"]\n',
        )
        assert shim.reexport_only and shim.all_names == ["thing"]
        real = make_summary(
            tmp_path, "repro/core/real.py", "def thing():\n    return 1\n"
        )
        assert not real.reexport_only

    def test_roundtrip_through_plain_data(self, tmp_path):
        summary = make_summary(
            tmp_path,
            "repro/core/rt.py",
            "from repro.geometry import BBox\n"
            "\n"
            "\n"
            "class Walker:\n"
            "    def step(self):  # det: reviewed\n"
            "        return self.jump()\n"
            "\n"
            "    def jump(self):\n"
            "        return BBox(0, 0, 1, 1)\n",
        )
        clone = ModuleSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert clone.module == summary.module == "repro.core.rt"
        assert set(clone.functions) == {"Walker.step", "Walker.jump"}
        assert clone.functions["Walker.step"].det_reviewed
        assert clone.classes == summary.classes
        assert [r.to_dict() for r in clone.imports] == [
            r.to_dict() for r in summary.imports
        ]


class TestProjectIndex:
    def build(self, tmp_path, files):
        summaries = [make_summary(tmp_path, rel, src) for rel, src in files.items()]
        return ProjectIndex(summaries)

    def test_cross_module_call_resolution(self, tmp_path):
        index = self.build(
            tmp_path,
            {
                "repro/core/a.py": (
                    "from repro.core.b import helper\n"
                    "\n"
                    "\n"
                    "def top():\n"
                    "    return helper()\n"
                ),
                "repro/core/b.py": "def helper():\n    return 1\n",
            },
        )
        graph = index.call_graph()
        assert graph["repro.core.a::top"] == ["repro.core.b::helper"]

    def test_self_method_and_reexport_chain(self, tmp_path):
        index = self.build(
            tmp_path,
            {
                "repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
                "repro/pkg/impl.py": "def work():\n    return 2\n",
                "repro/use.py": (
                    "from repro.pkg import work\n"
                    "\n"
                    "\n"
                    "class Runner:\n"
                    "    def go(self):\n"
                    "        return self.step()\n"
                    "\n"
                    "    def step(self):\n"
                    "        return work()\n"
                ),
            },
        )
        graph = index.call_graph()
        assert graph["repro.use::Runner.go"] == ["repro.use::Runner.step"]
        assert graph["repro.use::Runner.step"] == ["repro.pkg.impl::work"]

    def test_importers_of_sees_parent_package_pull(self, tmp_path):
        index = self.build(
            tmp_path,
            {
                "repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
                "repro/pkg/impl.py": "def work():\n    return 2\n",
                "repro/use.py": "from repro.pkg import work\n",
            },
        )
        importers = dict(index.importers_of("repro.pkg.impl"))
        assert "repro/pkg/__init__.py" in importers
        # `from repro.pkg import work` pulls impl's name via the parent.
        assert index.resolves_name("repro.pkg", "work")
        assert not index.resolves_name("repro.pkg", "missing")

    def test_graph_dumps(self, tmp_path):
        index = self.build(
            tmp_path,
            {
                "repro/core/a.py": "from repro.core.b import helper\n",
                "repro/core/b.py": "def helper():\n    return 1\n",
            },
        )
        dot = index.to_dot()
        assert '"repro.core.a" -> "repro.core.b"' in dot
        payload = index.to_json()
        assert "repro.core.a" in payload["modules"]
        assert "repro.core.b::helper" in payload["calls"]


def write_tree(tmp_path: Path, n: int = 40) -> Path:
    """A plain (non-package) tree big enough for timing comparisons."""
    tree = tmp_path / "tree"
    tree.mkdir()
    body = "\n".join(
        f"def fn_{i}(x):\n"
        f"    y = x + {i}\n"
        f"    items = sorted([y, {i}])\n"
        f"    return sum(items)\n"
        for i in range(30)
    )
    for i in range(n):
        (tree / f"mod_{i:03d}.py").write_text(f'"""Module {i}."""\n\n{body}\n')
    return tree


class TestResultCache:
    def test_warm_run_hits_and_is_faster(self, tmp_path):
        tree = write_tree(tmp_path, n=60)
        cache = tmp_path / "cache.json"
        t0 = time.perf_counter()
        cold = check_project([tree], root=tmp_path, cache_path=cache)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = check_project([tree], root=tmp_path, cache_path=cache)
        warm_s = time.perf_counter() - t0
        assert cold.stats["cached"] == 0 and cold.stats["parsed"] == 60
        assert warm.stats["cached"] == 60 and warm.stats["parsed"] == 0
        assert warm.violations == cold.violations
        print(f"cold={cold_s:.3f}s warm={warm_s:.3f}s ratio={cold_s / warm_s:.1f}x")
        assert warm_s < cold_s

    def test_edit_invalidates_only_that_file(self, tmp_path):
        tree = write_tree(tmp_path, n=5)
        cache = tmp_path / "cache.json"
        check_project([tree], root=tmp_path, cache_path=cache)
        target = tree / "mod_002.py"
        target.write_text(target.read_text() + "\n\nimport random\nV = random.random()\n")
        result = check_project([tree], root=tmp_path, cache_path=cache)
        assert result.stats["parsed"] == 1 and result.stats["cached"] == 4
        assert [v.rule for v in result.violations] == ["DET001"]
        # A touch without a content change stays cached.
        result = check_project([tree], root=tmp_path, cache_path=cache)
        assert result.stats["parsed"] == 0

    def test_rule_set_change_busts_fingerprint(self, tmp_path):
        tree = write_tree(tmp_path, n=3)
        cache = tmp_path / "cache.json"
        check_project([tree], root=tmp_path, cache_path=cache)
        result = check_project(
            [tree], root=tmp_path, cache_path=cache, rule_ids=["DET001"]
        )
        assert result.stats["parsed"] == 3

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        tree = write_tree(tmp_path, n=2)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result = check_project([tree], root=tmp_path, cache_path=cache)
        assert result.stats["parsed"] == 2
        # And the save overwrote it with a valid file.
        data = json.loads(cache.read_text())
        assert data["schema"] == CACHE_SCHEMA and len(data["entries"]) == 2

    def test_unseen_entries_evicted_on_save(self, tmp_path):
        tree = write_tree(tmp_path, n=3)
        cache = tmp_path / "cache.json"
        check_project([tree], root=tmp_path, cache_path=cache)
        (tree / "mod_000.py").unlink()
        check_project([tree], root=tmp_path, cache_path=cache)
        data = json.loads(cache.read_text())
        assert sorted(data["entries"]) == ["tree/mod_001.py", "tree/mod_002.py"]

    def test_fingerprint_depends_on_rules(self):
        assert engine_fingerprint(["A", "B"]) == engine_fingerprint(["B", "A"])
        assert engine_fingerprint(["A"]) != engine_fingerprint(["A", "B"])

    def test_cache_never_returns_mismatched_sha(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        summary = ModuleSummary(display_path="x.py", module=None)
        cache.put("x.py", "sha1", "fp", summary, [])
        assert cache.get("x.py", "sha2", "fp") is None
        assert cache.get("x.py", "sha1", "other-fp") is None
        assert cache.get("x.py", "sha1", "fp") is not None

    def test_warm_run_rebuilds_zero_cfgs(self, tmp_path):
        """The whole point of caching FlowSummary facts: a warm run
        serves every function's flow facts from the cache and never
        touches the CFG builder (CI asserts this via --stats)."""
        tree = write_tree(tmp_path, n=6)
        cache = tmp_path / "cache.json"
        cold = check_project([tree], root=tmp_path, cache_path=cache)
        assert cold.stats["cfgs"] > 0
        assert cold.stats["value_summaries"] > 0
        warm = check_project([tree], root=tmp_path, cache_path=cache)
        assert warm.stats["cfgs"] == 0
        assert warm.stats["value_summaries"] == 0
        assert warm.stats["values_cached"] == warm.stats["cached"]
        assert warm.violations == cold.violations

    def test_parallel_run_counts_cfgs_from_workers(self, tmp_path):
        tree = write_tree(tmp_path, n=6)
        serial = check_project([tree], root=tmp_path, jobs=1)
        parallel = check_project([tree], root=tmp_path, jobs=2)
        assert parallel.stats["cfgs"] == serial.stats["cfgs"] > 0
        assert parallel.stats["value_summaries"] == serial.stats["value_summaries"] > 0

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_concurrent_saves_never_corrupt_the_cache(self, tmp_path):
        """Two ``repro check --cache`` processes racing on the same
        cache file must each land a complete file (atomic tmp-file
        rename, last writer wins) — never an interleaved corrupt one."""
        tree = write_tree(tmp_path, n=12)
        cache = tmp_path / "cache.json"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=_run_check_with_cache, args=(tree, tmp_path, cache)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        data = json.loads(cache.read_text())
        assert data["schema"] == CACHE_SCHEMA and len(data["entries"]) == 12
        # No orphaned tmp files, and the survivor is fully warm.
        assert list(tmp_path.glob("cache.json.*.tmp")) == []
        warm = check_project([tree], root=tmp_path, cache_path=cache)
        assert warm.stats["cached"] == 12 and warm.stats["cfgs"] == 0


class TestParallelParity:
    def test_jobs_two_matches_serial_output(self, tmp_path):
        tree = write_tree(tmp_path, n=8)
        (tree / "dirty_a.py").write_text("import random\nV = random.random()\n")
        (tree / "dirty_b.py").write_text("def f(xs=[]):\n    return xs\n")
        serial = check_project([tree], root=tmp_path, jobs=1)
        parallel = check_project([tree], root=tmp_path, jobs=2)
        assert serial.violations == parallel.violations
        assert [v.rule for v in serial.violations] == ["DET001", "MUT001"]

    def test_jobs_two_runs_passes_identically(self, tmp_path):
        import shutil

        fixture = (
            Path(__file__).resolve().parent / "fixtures" / "analysis" / "impure_lazy_import"
        )
        tree = tmp_path / "fx"
        shutil.copytree(fixture, tree)
        serial = check_project([tree], root=tree, jobs=1)
        parallel = check_project([tree], root=tree, jobs=2)
        assert serial.violations == parallel.violations
        assert [v.rule for v in parallel.violations] == ["DET101"]


class TestCli:
    def test_explain_pass_rule(self, capsys):
        assert repro_main(["check", "--explain", "DET101"]) == 0
        out = capsys.readouterr().out
        assert "DET101" in out and "Example:" in out and "Fix:" in out

    def test_explain_module_rule(self, capsys):
        assert repro_main(["check", "--explain", "MUT001"]) == 0
        out = capsys.readouterr().out
        assert "mutable default" in out.lower()

    def test_explain_unknown_rule(self, capsys):
        assert repro_main(["check", "--explain", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explain_covers_every_registered_rule(self, capsys):
        """Exhaustiveness gate: every rule the engine can emit — the
        per-file catalogue, every pass family (incl. PROOF1xx/BND1xx),
        and the parse sentinel — must explain itself with a worked
        example and a fix."""
        from repro.analysis.lint import ALL_RULES
        from repro.analysis.passes import load_catalogue
        from repro.analysis.runner import PARSE_RULE

        rule_ids = set(ALL_RULES)
        for pass_obj in load_catalogue().values():
            rule_ids.update(pass_obj.rules)
        rule_ids.add(PARSE_RULE)
        assert {"PROOF101", "BND101", "BND102", "BND103"} <= rule_ids
        for rule_id in sorted(rule_ids):
            assert repro_main(["check", "--explain", rule_id]) == 0, rule_id
            out = capsys.readouterr().out
            assert "Example:" in out, f"{rule_id} has no example"
            assert "Fix:" in out, f"{rule_id} has no fix"

    def test_graph_json(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "a.py").write_text("from repro.b import f\n\n\ndef g():\n    return f()\n")
        (pkg / "b.py").write_text("def f():\n    return 1\n")
        assert repro_main(["check", str(tmp_path), "--graph", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["calls"]["repro.a::g"] == ["repro.b::f"]

    def test_graph_dot(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "a.py").write_text("from repro.b import f\n")
        (pkg / "b.py").write_text("def f():\n    return 1\n")
        assert repro_main(["check", str(tmp_path), "--graph", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_cache_and_stats_flags(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "c.json"
        assert repro_main(
            ["check", str(tmp_path), "--cache", str(cache), "--stats"]
        ) == 0
        assert "1 parsed" in capsys.readouterr().err
        assert repro_main(
            ["check", str(tmp_path), "--cache", str(cache), "--stats"]
        ) == 0
        assert "1 from cache" in capsys.readouterr().err
        assert repro_main(
            ["check", str(tmp_path), "--cache", str(cache), "--no-cache", "--stats"]
        ) == 0
        assert "0 from cache" in capsys.readouterr().err

    def test_stats_reports_cfg_counter(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(x):\n    return x + 1\n")
        cache = tmp_path / "c.json"
        assert repro_main(
            ["check", str(tmp_path), "--cache", str(cache), "--stats"]
        ) == 0
        cold = capsys.readouterr().err
        assert "1 CFG(s) built" in cold
        assert "1 value summaries built (0 from cache)" in cold
        assert repro_main(
            ["check", str(tmp_path), "--cache", str(cache), "--stats"]
        ) == 0
        warm = capsys.readouterr().err
        assert "0 CFG(s) built" in warm
        assert "0 value summaries built (1 from cache)" in warm

    def test_timings_flag_prints_stage_table(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(x):\n    return x\n")
        assert repro_main(["check", str(tmp_path), "--timings"]) == 0
        err = capsys.readouterr().err
        assert "repro check timings" in err
        assert "check.files" in err and "check.index" in err
        assert "check.pass.concurrency" in err

    def test_jobs_flag(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        assert repro_main(["check", str(tmp_path), "--jobs", "2"]) == 0
        assert "clean" in capsys.readouterr().out


class TestRekey:
    def test_rekey_baseline_function(self, tmp_path):
        from repro.analysis.lint.engine import Violation, load_baseline

        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [Violation("old/name.py", 3, 1, "DET001", "msg")])
        changed = rekey_baseline(baseline, {"old/name.py": "new/name.py"})
        assert changed == 1
        assert load_baseline(baseline) == {"DET001::new/name.py::msg"}

    def test_rekey_cli_keeps_renamed_file_suppressed(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert repro_main(
            ["check", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        bad.rename(tmp_path / "renamed.py")
        # The stale fingerprint no longer matches: finding resurfaces.
        assert repro_main(
            ["check", str(tmp_path), "--baseline", str(baseline)]
        ) == 1
        capsys.readouterr()
        assert repro_main(
            ["check", "--baseline", str(baseline), "--rekey", "bad.py=renamed.py"]
        ) == 0
        out = capsys.readouterr().out
        assert "rewrote 1 fingerprint(s)" in out
        assert repro_main(
            ["check", str(tmp_path), "--baseline", str(baseline)]
        ) == 0

    def test_rekey_rejects_malformed_spec(self, capsys):
        assert repro_main(["check", "--rekey", "no-equals"]) == 2
        assert "OLD=NEW" in capsys.readouterr().err


class TestRuleValidation:
    def test_pass_rule_ids_accepted(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = check_project([tmp_path], rule_ids=["DET101", "FRAME101"], root=tmp_path)
        assert result.violations == []

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            check_project([tmp_path], rule_ids=["NOPE999"], root=tmp_path)
