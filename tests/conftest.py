"""Shared fixtures: small corpora and transcriptions, session-scoped
so the expensive generation/segmentation work runs once."""

from __future__ import annotations

import pytest

from repro.ocr import OcrEngine
from repro.ocr.deskew import deskew
from repro.synth import generate_corpus


@pytest.fixture(scope="session")
def ocr_engine():
    return OcrEngine(seed=7)


@pytest.fixture(scope="session")
def d1_corpus():
    return generate_corpus("D1", n=6, seed=1)


@pytest.fixture(scope="session")
def d2_corpus():
    return generate_corpus("D2", n=8, seed=1)


@pytest.fixture(scope="session")
def d3_corpus():
    return generate_corpus("D3", n=8, seed=1)


def _clean(corpus, engine):
    out = []
    for doc in corpus:
        observed, angle = deskew(engine.transcribe(doc).as_document(doc))
        out.append((doc, observed, angle))
    return out


@pytest.fixture(scope="session")
def d1_cleaned(d1_corpus, ocr_engine):
    return _clean(d1_corpus, ocr_engine)


@pytest.fixture(scope="session")
def d2_cleaned(d2_corpus, ocr_engine):
    return _clean(d2_corpus, ocr_engine)


@pytest.fixture(scope="session")
def d3_cleaned(d3_corpus, ocr_engine):
    return _clean(d3_corpus, ocr_engine)
