"""Occupancy grids and whitespace cuts (paper §5.1.1 / Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import BBox, OccupancyGrid
from repro.geometry.cuts import (
    CutSet,
    consecutive_cut_sets,
    find_horizontal_cuts,
    find_vertical_cuts,
    has_valid_horizontal_movement,
    has_valid_vertical_movement,
    interior_cut_sets,
    sheared_cut_rows,
)


def two_band_grid():
    """Two text bands with a whitespace band between rows 20–59."""
    return OccupancyGrid.from_bboxes(
        [BBox(0, 0, 100, 20), BBox(0, 60, 100, 20)], 100, 100, cell=4
    )


class TestOccupancyGrid:
    def test_dimensions(self):
        g = OccupancyGrid(100, 60, cell=5)
        assert (g.n_cols, g.n_rows) == (20, 12)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            OccupancyGrid(0, 10)

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            OccupancyGrid(10, 10, cell=0)

    def test_add_bbox_marks_cells(self):
        g = OccupancyGrid(40, 40, cell=4)
        g.add_bbox(BBox(4, 4, 8, 8))
        assert g.occupied[1:3, 1:3].all()
        assert not g.occupied[0, 0]

    def test_zero_area_box_ignored(self):
        g = OccupancyGrid(40, 40, cell=4)
        g.add_bbox(BBox(4, 4, 0, 0))
        assert not g.occupied.any()

    def test_off_page_box_clipped(self):
        g = OccupancyGrid(40, 40, cell=4)
        g.add_bbox(BBox(-100, -100, 20, 20))
        assert not g.occupied.all()

    def test_is_whitespace(self):
        g = two_band_grid()
        assert g.is_whitespace(50, 40)
        assert not g.is_whitespace(50, 10)
        assert not g.is_whitespace(-5, -5)  # off page = not a position

    def test_occupancy_ratio(self):
        g = two_band_grid()
        assert 0.3 < g.occupancy_ratio() < 0.5

    def test_projections(self):
        g = two_band_grid()
        assert g.horizontal_projection()[0] == g.n_cols
        assert g.horizontal_projection()[10] == 0

    def test_empty_row_runs(self):
        g = two_band_grid()
        runs = g.empty_row_runs()
        assert (5, 10) in runs  # rows 5..14 = y 20..60

    def test_subgrid(self):
        g = two_band_grid()
        sub = g.subgrid(BBox(0, 0, 100, 40))
        assert sub.occupied[:5].all()
        assert not sub.occupied[5:].any()


class TestMovements:
    def test_horizontal_movement_in_open_space(self):
        g = two_band_grid()
        assert has_valid_horizontal_movement(g, 0, 8)

    def test_no_movement_from_occupied(self):
        g = two_band_grid()
        assert not has_valid_horizontal_movement(g, 0, 0)

    def test_movement_with_drift(self):
        # column 1 blocked at the same row, open one row below
        g = OccupancyGrid(12, 12, cell=4)
        g.add_bbox(BBox(4, 0, 4, 4))
        assert has_valid_horizontal_movement(g, 0, 0)

    def test_vertical_movement(self):
        g = two_band_grid()
        assert has_valid_vertical_movement(g, 0, 8)


class TestCuts:
    def test_horizontal_cut_in_band(self):
        g = two_band_grid()
        flags = find_horizontal_cuts(g)
        assert flags[7]  # inside the whitespace band
        assert not flags[2]  # inside the top text band

    def test_no_vertical_cut_through_full_width_text(self):
        g = two_band_grid()
        flags = find_vertical_cuts(g)
        assert not flags.any()

    def test_vertical_cut_between_columns(self):
        g = OccupancyGrid.from_bboxes(
            [BBox(0, 0, 30, 100), BBox(70, 0, 30, 100)], 100, 100, cell=4
        )
        flags = find_vertical_cuts(g)
        assert flags[10]  # x = 40, inside the channel

    def test_sheared_cut_follows_slope(self):
        # A slanted gap: occupied everywhere except a 2-row band whose
        # vertical position rises one row every 5 columns.
        ws = np.zeros((30, 40), dtype=bool)
        for c in range(40):
            r = 10 + c // 5
            ws[r : r + 2, c] = True
        assert not sheared_cut_rows(ws, 0.0).any()
        assert sheared_cut_rows(ws, 0.2).any()

    def test_consecutive_cut_sets_grouping(self):
        g = two_band_grid()
        sets = consecutive_cut_sets(g, "horizontal")
        bands = [(s.start_index, s.size) for s in sets]
        assert (5, 10) in bands

    def test_interior_excludes_margins(self):
        g = OccupancyGrid.from_bboxes([BBox(0, 40, 100, 20)], 100, 100, cell=4)
        interior = interior_cut_sets(g, "horizontal")
        assert interior == []  # only margin runs exist

    def test_interior_picks_dominant_slope(self):
        g = two_band_grid()
        sets = interior_cut_sets(g, "horizontal")
        assert len(sets) == 1
        assert sets[0].slope == 0.0

    def test_bad_orientation_rejected(self):
        g = two_band_grid()
        with pytest.raises(ValueError):
            consecutive_cut_sets(g, "diagonal")


class TestCutSet:
    def test_validation(self):
        with pytest.raises(ValueError):
            CutSet("horizontal", 0, 0, 4.0)
        with pytest.raises(ValueError):
            CutSet("slanted", 0, 1, 4.0)

    def test_units(self):
        s = CutSet("horizontal", 5, 10, 4.0)
        assert s.span_units == 40
        assert s.start_units == 20
        assert s.mid_units == 40

    def test_origin_offset(self):
        s = CutSet("horizontal", 5, 10, 4.0, origin=(100.0, 200.0))
        assert s.start_units == 220  # origin y-offset + 5 cells
        assert s.start_position() == (100.0, 220.0)

    def test_line_value_at_slope(self):
        s = CutSet("horizontal", 5, 2, 4.0, slope=0.1)
        assert s.line_value_at(100.0) == pytest.approx(s.mid_units + 10.0)

    def test_neighbouring_bbox(self):
        s = CutSet("horizontal", 5, 10, 4.0)  # band y 20..60
        near = BBox(0, 0, 50, 20)
        far = BBox(0, 90, 50, 10)
        assert s.neighbouring_bbox([near, far]) == near


class TestCutProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=90),
                st.integers(min_value=2, max_value=30),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_cut_rows_are_whitespace_rows_at_zero_slope(self, bands):
        boxes = [BBox(0, float(y), 100.0, float(h)) for y, h in bands]
        g = OccupancyGrid.from_bboxes(boxes, 100, 130, cell=4)
        flags = find_horizontal_cuts(g, slope=0.0)
        ws_rows = ~g.occupied.any(axis=1)
        assert (flags == ws_rows).all()
