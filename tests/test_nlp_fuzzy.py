"""Fuzzy matching and OCR repair."""

import pytest
from hypothesis import given, strategies as st

from repro.nlp.fuzzy import (
    edit_distance,
    fuzzy_prefix_match,
    normalize_for_match,
    ocr_fold,
    repair_ocr_text,
    similarity_ratio,
)

short_text = st.text(alphabet="abcdef 123", max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("abc", "abc") == 0

    def test_substitution(self):
        assert edit_distance("abc", "axc") == 1

    def test_insertion(self):
        assert edit_distance("abc", "abxc") == 1

    def test_deletion(self):
        assert edit_distance("abc", "ac") == 1

    def test_cutoff_early_exit(self):
        assert edit_distance("aaaa", "bbbb", cutoff=2) == 3  # cutoff + 1

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestSimilarityRatio:
    def test_identical(self):
        assert similarity_ratio("abc", "abc") == 1.0

    def test_empty(self):
        assert similarity_ratio("", "") == 1.0

    def test_single_edit(self):
        assert similarity_ratio("abcd", "abce") == 0.75


class TestNormalize:
    def test_strips_punctuation_and_case(self):
        assert normalize_for_match("Wages, Salaries & Tips!") == "wages salaries tips"


class TestOcrFold:
    def test_digit_letter_classes(self):
        assert ocr_fold("l2") == ocr_fold("12")
        assert ocr_fold("O0") == ocr_fold("00")

    def test_distinct_tokens_stay_distinct(self):
        assert ocr_fold("12") != ocr_fold("13")


class TestFuzzyPrefix:
    def test_exact_prefix(self):
        assert fuzzy_prefix_match("wages paid 123", "wages paid") == len("wages paid")

    def test_noisy_prefix(self):
        assert fuzzy_prefix_match("wagcs paid 123", "wages paid") is not None

    def test_rejects_different(self):
        assert fuzzy_prefix_match("total income 50", "wages paid") is None

    def test_empty_prefix(self):
        assert fuzzy_prefix_match("anything", "") is None


class TestRepair:
    def test_digits_in_word_become_letters(self):
        assert repair_ocr_text("Po5ter") == "Poster"

    def test_letters_in_number_become_digits(self):
        assert repair_ocr_text("2l3,893") == "213,893"

    def test_inner_caps_relax(self):
        assert repair_ocr_text("ScreEning") == "Screening"

    def test_acronyms_survive(self):
        assert repair_ocr_text("NASA") == "NASA"

    def test_clean_text_unchanged(self):
        text = "Hosted by the Acme Society at 7:30 pm"
        assert repair_ocr_text(text) == text

    @given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=40))
    def test_length_preserved(self, text):
        """Spans computed on repaired text must stay valid offsets."""
        assert len(repair_ocr_text(text)) == len(text)
