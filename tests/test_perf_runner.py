"""The perf layer: metrics accumulator, transcription cache, and the
parallel corpus runner (serial/parallel equivalence, error isolation,
deterministic ordering)."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.pipeline import VS2Pipeline
from repro.harness import ExperimentContext
from repro.ocr import OcrEngine
from repro.perf import (
    CorpusRunner,
    PipelineMetrics,
    TranscriptionCache,
    compare,
    delta_line,
    load_snapshot,
    write_snapshot,
)
from repro.synth import generate_corpus

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _extraction_key(result):
    """Byte-stable view of one document's extractions."""
    return [
        (e.entity_type, e.text, tuple(vars(e.bbox).values()),
         tuple(vars(e.span_bbox).values()), e.score)
        for e in result.extractions
    ]


class ExplodingPipeline(VS2Pipeline):
    """Raises mid-pipeline for one specific document."""

    BAD_DOC = "D2-00002"

    def run(self, doc):
        if doc.doc_id == self.BAD_DOC:
            raise RuntimeError("injected mid-pipeline failure")
        return super().run(doc)


def _exploding_factory():
    return ExplodingPipeline("D2", cache=TranscriptionCache())


class ExplodeAllPipeline(VS2Pipeline):
    """Raises for every document (failure-ordering tests)."""

    def run(self, doc):
        raise RuntimeError("boom")


def _explode_all_factory():
    return ExplodeAllPipeline("D2", cache=TranscriptionCache())


@pytest.fixture(scope="module")
def corpus():
    return list(generate_corpus("D2", n=8, seed=3))


# ----------------------------------------------------------------------
# PipelineMetrics / StageTimer
# ----------------------------------------------------------------------
class TestPipelineMetrics:
    def test_stage_timer_records(self):
        m = PipelineMetrics()
        with m.stage("segment") as t:
            t.items = 5
        assert m["segment"].calls == 1
        assert m["segment"].items == 5
        assert m["segment"].seconds >= 0.0

    def test_records_even_when_block_raises(self):
        m = PipelineMetrics()
        with pytest.raises(ValueError):
            with m.stage("segment"):
                raise ValueError("boom")
        assert m["segment"].calls == 1

    def test_merge_and_drain(self):
        a, b = PipelineMetrics(), PipelineMetrics()
        a.record("ocr", 0.5, items=10)
        b.record("ocr", 0.25, items=5)
        b.record("select", 0.1)
        a.merge(b)
        assert a["ocr"].calls == 2
        assert a["ocr"].seconds == pytest.approx(0.75)
        assert a["ocr"].items == 15
        drained = a.drain()
        assert not a.stages and drained["select"].calls == 1

    def test_dict_roundtrip(self):
        m = PipelineMetrics()
        m.record("ocr", 1.5, items=3, calls=2)
        again = PipelineMetrics.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()

    def test_format_table_lists_stages(self):
        m = PipelineMetrics()
        m.record("ocr", 0.1, items=7)
        m.record("segment.cuts", 0.05)
        table = m.format_table()
        assert "ocr" in table and "segment.cuts" in table

    def test_total_excludes_substages(self):
        m = PipelineMetrics()
        m.record("segment", 1.0)
        m.record("segment.cuts", 0.8)
        m.record("corpus", 2.0)
        assert m.total_seconds() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Latency histograms (p50/p95/max)
# ----------------------------------------------------------------------
class TestLatencyHistograms:
    def test_observed_samples_populate_quantiles(self):
        m = PipelineMetrics()
        for seconds in (0.001, 0.002, 0.004, 0.100):
            m.record("segment", seconds)
        stats = m["segment"]
        assert sum(stats.hist) == 4
        assert stats.max_seconds == pytest.approx(0.100)
        assert stats.p50_ms is not None and stats.p95_ms is not None
        # Quantiles are bucket upper-edge estimates: monotone and
        # bounded by the observed maximum.
        assert stats.p50_ms <= stats.p95_ms <= stats.max_ms
        assert stats.max_ms == pytest.approx(100.0)

    def test_aggregate_records_stay_out_of_the_histogram(self):
        """A multi-call aggregate carries no per-call distribution, so
        it must not fabricate histogram samples."""
        m = PipelineMetrics()
        m.record("ocr", 1.5, calls=3)
        assert m["ocr"].calls == 3
        assert sum(m["ocr"].hist) == 0
        assert m["ocr"].p50_ms is None and m["ocr"].max_ms is None

    def test_count_is_not_a_latency_sample(self):
        m = PipelineMetrics()
        m.count("ocr.cache_hit", items=1)
        assert m["ocr.cache_hit"].calls == 1
        assert sum(m["ocr.cache_hit"].hist) == 0

    def test_merge_folds_histograms(self):
        a, b = PipelineMetrics(), PipelineMetrics()
        a.record("segment", 0.010)
        b.record("segment", 0.500)
        a.merge(b)
        assert sum(a["segment"].hist) == 2
        assert a["segment"].max_seconds == pytest.approx(0.500)

    def test_format_table_has_percentile_columns(self):
        m = PipelineMetrics()
        m.record("segment", 0.020)
        table = m.format_table()
        assert "p50 ms" in table and "p95 ms" in table and "max ms" in table

    def test_timing_table_has_percentile_columns(self):
        from repro.harness import timing_table

        m = PipelineMetrics()
        m.record("segment", 0.020)
        m.record("ocr", 3.0, calls=4)  # aggregate: dashes, not percentages
        text = timing_table(m).format()
        assert "p50 ms" in text and "p95 ms" in text


class TestMetricsRoundTripProperty:
    """Satellite invariant: ``from_dict(m.to_dict()) == m`` exactly,
    for any accumulator reachable through the public recording API."""

    def test_property_roundtrip_is_lossless(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        ops = st.lists(
            st.tuples(
                st.sampled_from(["ocr", "segment", "segment.cuts", "select", "odd"]),
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=1, max_value=7),
            ),
            max_size=40,
        )

        @settings(max_examples=200, deadline=None)
        @given(ops=ops)
        def check(ops):
            m = PipelineMetrics()
            for name, seconds, items, calls in ops:
                m.record(name, seconds, items=items, calls=calls)
            again = PipelineMetrics.from_dict(m.to_dict())
            assert again == m
            assert again.to_dict() == m.to_dict()
            # And through the JSON layer snapshots actually use.
            assert PipelineMetrics.from_dict(
                json.loads(json.dumps(m.to_dict()))
            ) == m

        check()

    def test_degenerate_stats_survive(self):
        """calls=0 with nonzero seconds (a hand-edited snapshot) must
        not be 'repaired' by the round-trip."""
        payload = {"ocr": {"calls": 0, "seconds": 1.25, "items": 3}}
        m = PipelineMetrics.from_dict(payload)
        assert m["ocr"].calls == 0 and m["ocr"].seconds == 1.25
        assert m.to_dict() == payload


# ----------------------------------------------------------------------
# TranscriptionCache
# ----------------------------------------------------------------------
class TestTranscriptionCache:
    def test_hit_returns_identical_transcription(self, corpus):
        engine = OcrEngine(seed=7)
        cache = TranscriptionCache()
        doc = corpus[0]
        ocr1, obs1, angle1 = cache.cleaned(engine, doc)
        ocr2, obs2, angle2 = cache.cleaned(engine, doc)
        assert cache.hits == 1 and cache.misses == 1
        assert ocr1 is ocr2 and obs1 is obs2 and angle1 == angle2

    def test_matches_uncached_clean_step(self, corpus):
        """Cached output must equal what engine+deskew produce directly."""
        from repro.ocr.deskew import deskew

        engine = OcrEngine(seed=7)
        doc = corpus[1]
        cached_ocr, cached_obs, cached_angle = TranscriptionCache().cleaned(engine, doc)
        direct = engine.transcribe(doc)
        direct_obs, direct_angle = deskew(direct.as_document(doc))
        assert [w.text for w in cached_ocr.words] == [w.text for w in direct.words]
        assert cached_angle == direct_angle
        assert [e.text for e in cached_obs.elements] == [
            e.text for e in direct_obs.elements
        ]

    def test_seed_partitions_the_key(self, corpus):
        cache = TranscriptionCache()
        doc = corpus[0]
        cache.cleaned(OcrEngine(seed=1), doc)
        cache.cleaned(OcrEngine(seed=2), doc)
        assert cache.misses == 2 and len(cache) == 2

    def test_max_entries_bounds_memory(self, corpus):
        cache = TranscriptionCache(max_entries=2)
        engine = OcrEngine(seed=7)
        for doc in corpus[:4]:
            cache.cleaned(engine, doc)
        assert len(cache) == 2

    def test_shared_between_pipeline_and_harness(self):
        """One cache serves ExperimentContext and VS2Pipeline: the
        pipeline's engine seed matches, so the corpus transcribes once."""
        ctx = ExperimentContext({"D2": 3}, seed=1, ocr_seed=0)
        ctx.cleaned("D2")
        misses_after_harness = ctx.cache.misses
        pipeline = VS2Pipeline("D2", cache=ctx.cache)
        for doc in ctx.corpus("D2"):
            pipeline.run(doc)
        assert ctx.cache.misses == misses_after_harness
        assert ctx.cache.hits >= len(ctx.corpus("D2"))


# ----------------------------------------------------------------------
# CorpusRunner
# ----------------------------------------------------------------------
class TestCorpusRunner:
    def test_serial_run_collects_everything(self, corpus):
        outcome = CorpusRunner("D2", workers=1).run(corpus)
        assert not outcome.failures
        assert [r.doc_id for r in outcome.results] == [d.doc_id for d in corpus]

    def test_parallel_identical_to_serial(self, corpus):
        serial = CorpusRunner("D2", workers=1).run(corpus)
        parallel = CorpusRunner("D2", workers=3, chunk_size=2).run(corpus)
        assert [r.doc_id for r in parallel.results] == [d.doc_id for d in corpus]
        for s, p in zip(serial.results, parallel.results):
            assert _extraction_key(s) == _extraction_key(p)
            assert s.skew_angle == p.skew_angle

        def canon(outcome):
            return json.dumps(
                [_extraction_key(r) for r in outcome.results],
                sort_keys=True, default=float,
            ).encode()

        assert canon(serial) == canon(parallel)  # byte-identical output

    def test_metrics_cover_all_stages(self, corpus):
        outcome = CorpusRunner("D2", workers=2).run(corpus[:4])
        for stage in ("ocr", "deskew", "segment", "select"):
            assert outcome.metrics[stage].calls > 0, stage
        assert outcome.metrics["ocr"].items > 0  # words transcribed
        assert outcome.metrics["segment"].items > 0  # blocks produced

    def test_failure_isolated_serial(self, corpus):
        runner = CorpusRunner("D2", workers=1, pipeline_factory=_exploding_factory)
        outcome = runner.run(corpus[:5])
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.doc_id == ExplodingPipeline.BAD_DOC
        assert failure.error_type == "RuntimeError"
        assert "injected" in failure.message
        bad_index = [d.doc_id for d in corpus].index(ExplodingPipeline.BAD_DOC)
        assert outcome.results[bad_index] is None
        assert len(outcome.ok) == 4

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_failure_isolated_parallel(self, corpus):
        runner = CorpusRunner(
            "D2", workers=2, chunk_size=1, pipeline_factory=_exploding_factory
        )
        outcome = runner.run(corpus[:5])
        assert [f.doc_id for f in outcome.failures] == [ExplodingPipeline.BAD_DOC]
        assert len(outcome.ok) == 4
        # the surviving documents still match the healthy serial run
        healthy = CorpusRunner("D2", workers=1).run(corpus[:5])
        for h, p in zip(healthy.results, outcome.results):
            if p is not None:
                assert _extraction_key(h) == _extraction_key(p)

    def test_run_corpus_workers_via_pipeline(self, corpus):
        pipeline = VS2Pipeline("D2")
        results = pipeline.run_corpus(corpus[:4], workers=2)
        assert [r.doc_id for r in results] == [d.doc_id for d in corpus[:4]]
        assert pipeline.metrics["segment"].calls >= 4

    def test_context_run_pipeline(self):
        ctx = ExperimentContext({"D2": 4}, seed=0)
        outcome = ctx.run_pipeline("D2", workers=2)
        assert not outcome.failures
        assert len(outcome.ok) == 4
        assert ctx.metrics["select"].calls >= 4


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestWarmProcessPool:
    def test_boot_spawns_every_worker_up_front(self):
        from repro.perf import WarmProcessPool

        with WarmProcessPool("D2", workers=2) as pool:
            pool.boot()
            assert pool.booted
            assert len(pool.executor()._processes) >= 2
        assert not pool.booted

    def test_shared_pool_survives_runner_runs(self, corpus):
        from repro.perf import WarmProcessPool

        serial = CorpusRunner("D2", workers=1).run(corpus)
        pool = WarmProcessPool("D2", workers=2).boot()
        try:
            runner = CorpusRunner("D2", chunk_size=2, pool=pool)
            assert runner.workers == 2  # adopted from the pool
            first = runner.run(corpus)
            assert pool.booted  # the runner must not shut a shared pool
            second = runner.run(corpus)
        finally:
            pool.close()
        for outcome in (first, second):
            assert not outcome.failures
            for s, p in zip(serial.results, outcome.results):
                assert _extraction_key(s) == _extraction_key(p)
        # metrics drain per chunk: the second run is not double-counted
        assert first.metrics["select"].calls == second.metrics["select"].calls

    def test_close_is_idempotent_and_reboots(self):
        from repro.perf import WarmProcessPool

        pool = WarmProcessPool("D2", workers=2)
        pool.close()  # never booted: a no-op
        pool.boot()
        pool.close()
        pool.close()
        pool.boot()  # a drained pool can boot again
        assert pool.booted
        pool.close()


# ----------------------------------------------------------------------
# DocumentFailure context (doc index, seed, span path)
# ----------------------------------------------------------------------
class TestDocumentFailureContext:
    def test_failure_carries_index_and_span_path(self, corpus):
        from repro.trace import Tracer

        tracer = Tracer()
        runner = CorpusRunner(
            "D2", workers=1, pipeline_factory=_exploding_factory, tracer=tracer
        )
        outcome = runner.run(corpus[:5])
        failure = outcome.failures[0]
        bad_index = [d.doc_id for d in corpus].index(ExplodingPipeline.BAD_DOC)
        assert failure.doc_index == bad_index
        assert f"doc[{bad_index}]" in failure.span_path
        rendered = str(failure)
        assert f"doc[{bad_index}]" in rendered
        assert ExplodingPipeline.BAD_DOC in rendered
        assert failure.span_path in rendered

    def test_failure_without_tracer_still_reports_index(self, corpus):
        outcome = CorpusRunner(
            "D2", workers=1, pipeline_factory=_exploding_factory
        ).run(corpus[:5])
        failure = outcome.failures[0]
        assert failure.doc_index >= 0
        assert failure.span_path == ""
        assert failure.ocr_seed is not None  # from the pipeline's config

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_failures_sorted_by_document_index(self, corpus):
        outcome = CorpusRunner(
            "D2", workers=2, chunk_size=1, pipeline_factory=_explode_all_factory
        ).run(corpus[:4])
        assert [f.doc_index for f in outcome.failures] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_write_load_roundtrip(self, tmp_path):
        m = PipelineMetrics()
        m.record("ocr", 0.5, items=100)
        path = write_snapshot(tmp_path / "BENCH_pipeline.json", m, dataset="D2")
        snap = load_snapshot(path)
        assert snap["meta"] == {"dataset": "D2"}
        assert snap["stages"]["ocr"]["items"] == 100
        # committed artefact: stable bytes for identical inputs
        assert path.read_text() == json.dumps(
            json.loads(path.read_text()), indent=2
        ) + "\n"

    def test_compare_flags_regressions(self, tmp_path):
        base, curr = PipelineMetrics(), PipelineMetrics()
        base.record("segment", 1.0)
        curr.record("segment", 2.0)
        curr.record("select", 0.1)
        b = load_snapshot(write_snapshot(tmp_path / "a.json", base))
        c = load_snapshot(write_snapshot(tmp_path / "b.json", curr))
        lines = "\n".join(compare(b, c))
        assert "SLOWER" in lines and "new stage" in lines

    def test_foreign_schema_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"schema": "other/9", "stages": {}}')
        with pytest.raises(ValueError):
            load_snapshot(p)

    def test_v1_snapshot_still_loads(self, tmp_path):
        """Pre-histogram snapshots (schema /1) remain readable, with
        empty histograms."""
        p = tmp_path / "old.json"
        p.write_text(json.dumps({
            "schema": "repro.bench.pipeline/1",
            "meta": {"dataset": "D2"},
            "stages": {"ocr": {"calls": 2, "seconds": 0.5, "items": 9}},
        }))
        snap = load_snapshot(p)
        m = PipelineMetrics.from_dict(snap["stages"])
        assert m["ocr"].calls == 2 and sum(m["ocr"].hist) == 0

    def test_v2_snapshot_carries_histograms(self, tmp_path):
        m = PipelineMetrics()
        m.record("segment", 0.025)
        snap = load_snapshot(write_snapshot(tmp_path / "b.json", m))
        assert snap["schema"] == "repro.bench.pipeline/2"
        assert "hist" in snap["stages"]["segment"]
        assert snap["stages"]["segment"]["max_seconds"] == pytest.approx(0.025)

    def test_delta_line_degrades_on_missing_stages(self, tmp_path):
        """The advisory drift line never raises: a stage the live run
        didn't record shows '(not measured)', a stage the committed
        baseline lacks shows '(new)'."""
        base, curr = PipelineMetrics(), PipelineMetrics()
        base.record("segment", 1.0)
        curr.record("segment", 1.1)
        curr.record("select", 0.2)
        snap = load_snapshot(write_snapshot(tmp_path / "base.json", base))
        line = delta_line(snap, curr, stages=["segment", "select", "ocr"])
        assert "segment 1.100s (+10%, p95 +10%)" in line
        assert "select 0.200s (new)" in line
        assert "ocr (not measured)" in line

    def test_delta_line_empty_inputs(self, tmp_path):
        snap = load_snapshot(write_snapshot(tmp_path / "e.json", PipelineMetrics()))
        assert delta_line(snap, PipelineMetrics()).endswith("(no stages)")

    def test_delta_line_defaults_to_stage_union_and_reports_removed(self, tmp_path):
        """With no explicit stage list the line covers the union of
        both snapshots' top-level stages, so a stage that vanished from
        the live run is called out instead of silently skipped."""
        base, curr = PipelineMetrics(), PipelineMetrics()
        base.record("segment", 0.5)
        base.record("gone", 0.5)
        base.record("gone.sub", 0.2)  # sub-stages stay in the table
        curr.record("segment", 0.6)
        curr.record("fresh", 0.1)
        snap = load_snapshot(write_snapshot(tmp_path / "base.json", base))
        line = delta_line(snap, curr)
        assert "gone (removed; was 0.500s)" in line
        assert "gone.sub" not in line
        assert "fresh 0.100s (new)" in line

    def test_delta_line_carries_p95_delta(self, tmp_path):
        base, curr = PipelineMetrics(), PipelineMetrics()
        for _ in range(10):
            base.record("ocr", 0.010)
            curr.record("ocr", 0.020)
        snap = load_snapshot(write_snapshot(tmp_path / "base.json", base))
        line = delta_line(snap, curr)
        assert "p95 +" in line

    def test_delta_line_labels_contract_mode_mismatch(self, tmp_path):
        """A ledger-skip run diffed against a contract-checked baseline
        is the proof layer working, not the pipeline speeding up — the
        line must say so instead of letting the delta mislead."""
        base, curr = PipelineMetrics(), PipelineMetrics()
        base.record("select", 1.0)
        curr.record("select", 0.5)
        snap = load_snapshot(
            write_snapshot(tmp_path / "base.json", base, contracts="checked")
        )
        line = delta_line(snap, curr, mode="ledger-skip")
        assert line.startswith(
            "vs committed baseline [NOT COMPARABLE: baseline contracts=checked, "
            "this run contracts=ledger-skip]: "
        )
        # Matching modes (or no mode given) keep the plain prefix; a
        # baseline without the meta key counts as contracts-off.
        assert delta_line(snap, curr, mode="checked").startswith(
            "vs committed baseline: "
        )
        assert delta_line(snap, curr).startswith("vs committed baseline: ")
        bare = load_snapshot(write_snapshot(tmp_path / "bare.json", base))
        assert delta_line(bare, curr, mode="off").startswith(
            "vs committed baseline: "
        )


class TestStageStatsEdges:
    """Satellite fixes: quantiles on empty stats, width-mismatched
    histogram merges, and the CPU-time column."""

    def test_quantile_of_zero_observations_is_none(self):
        from repro.instrument import StageStats

        stats = StageStats()
        stats.add(1.5, calls=3)  # aggregate only: no histogram samples
        assert stats.quantile_seconds(0.95) is None
        assert stats.p50_ms is None and stats.p95_ms is None

    def test_merge_widens_shorter_histogram(self):
        from repro.instrument import StageStats, hist_bucket

        short, long = StageStats(hist=[0] * 5), StageStats()
        short.hist[2] = 4
        long.observe(0.5)  # lands far beyond bucket 5
        short.merge_from(long)
        assert len(short.hist) == len(long.hist)
        assert short.hist[2] == 4
        assert short.hist[hist_bucket(0.5)] == 1

    def test_from_dict_widens_for_out_of_range_buckets(self):
        from repro.instrument import HIST_BUCKETS, StageStats

        stats = StageStats.from_dict(
            {"calls": 1, "seconds": 1.0, "hist": {str(HIST_BUCKETS + 3): 1}}
        )
        assert sum(stats.hist) == 1  # widened, never dropped
        assert len(stats.hist) == HIST_BUCKETS + 4

    def test_cpu_seconds_round_trips_and_merges(self):
        from repro.instrument import StageStats

        a, b = StageStats(), StageStats()
        a.observe(0.01, cpu_seconds=0.004)
        b.observe(0.02, cpu_seconds=0.006)
        a.merge_from(b)
        assert a.cpu_seconds == pytest.approx(0.010)
        clone = StageStats.from_dict(a.to_dict())
        assert clone.cpu_seconds == pytest.approx(a.cpu_seconds)

    def test_stage_timer_measures_cpu(self):
        from repro.instrument import PipelineMetrics

        m = PipelineMetrics()
        with m.stage("busy"):
            sum(i * i for i in range(200_000))
        stats = m["busy"]
        assert stats.calls == 1
        # getrusage is available on this platform; a busy loop must
        # charge a nonzero user-CPU delta.
        assert stats.cpu_seconds > 0.0
