"""End-to-end determinism regression (what the DET* lint rules protect).

The pipeline promises byte-identical output for identical inputs —
across reruns, across serial/parallel execution, and across Python
hash-seed randomisation (the channel through which accidental set
iteration leaks into results).  The canonical form is a sorted-key
JSON document covering every extraction field and the skew estimate.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import CorpusRunner
from repro.synth import generate_corpus

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
REPO_ROOT = Path(__file__).resolve().parents[1]

#: The D2 smoke corpus: mixed digital/mobile-capture posters, so the
#: deskew + sloped-cut paths are exercised, small enough to run twice.
SMOKE = {"dataset": "D2", "n": 4, "seed": 3}


def canonical_bytes(outcome) -> bytes:
    """Byte-stable JSON of a corpus run's observable output."""
    payload = [
        {
            "doc_id": r.doc_id,
            "skew": r.skew_angle,
            "extractions": [
                {
                    "entity": e.entity_type,
                    "text": e.text,
                    "bbox": e.bbox.as_tuple(),
                    "span": e.span_bbox.as_tuple(),
                    "score": e.score,
                }
                for e in r.extractions
            ],
        }
        for r in outcome.results
    ]
    return json.dumps(payload, sort_keys=True).encode()


def run_smoke(workers: int) -> bytes:
    corpus = list(generate_corpus(SMOKE["dataset"], n=SMOKE["n"], seed=SMOKE["seed"]))
    outcome = CorpusRunner(SMOKE["dataset"], workers=workers).run(corpus)
    assert not outcome.failures
    return canonical_bytes(outcome)


def run_traced_smoke(workers: int) -> bytes:
    """The normalised JSONL event log of a traced smoke run: a pure
    function of the decisions taken, independent of wall time and of
    which process produced each span."""
    from repro.trace import Tracer, jsonl_lines

    tracer = Tracer()
    corpus = list(generate_corpus(SMOKE["dataset"], n=SMOKE["n"], seed=SMOKE["seed"]))
    outcome = CorpusRunner(SMOKE["dataset"], workers=workers, tracer=tracer).run(corpus)
    assert not outcome.failures
    return ("\n".join(jsonl_lines(tracer.drain(), normalize=True)) + "\n").encode()


class TestDeterminism:
    def test_serial_rerun_byte_identical(self):
        assert run_smoke(workers=1) == run_smoke(workers=1)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_parallel_byte_identical_to_serial(self):
        assert run_smoke(workers=1) == run_smoke(workers=2)

class TestTraceDeterminism:
    """The trace is part of the determinism contract: once timestamps
    are normalised away, the event log depends only on the pipeline's
    decisions — so serial and multi-process traced runs must agree to
    the byte."""

    def test_traced_serial_rerun_byte_identical(self):
        assert run_traced_smoke(workers=1) == run_traced_smoke(workers=1)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_traced_parallel_byte_identical_to_serial(self):
        assert run_traced_smoke(workers=1) == run_traced_smoke(workers=2)

    def test_traced_log_covers_every_document(self):
        log = run_traced_smoke(workers=1).decode()
        for index in range(SMOKE["n"]):
            assert f"doc[{index}]" in log
        for family in ("cut.decision", "merge.", "pareto.front", "select.decision"):
            assert family in log


class TestFaultDeterminism:
    """Injected faults and the supervision decisions they trigger are
    part of the determinism contract: the fault schedule is keyed on
    ``(plan seed, site, doc, attempt)`` — never on process identity or
    scheduling order — so a supervised serial run and a supervised
    parallel run of the same plan produce identical results *and*
    identical retry/quarantine ledgers."""

    #: Transient faults that always clear on retry (``attempts=1``)
    #: plus one permanent poison doc — exercises both ledger kinds.
    PLAN_SPEC = "ocr:flaky@0.4@attempts=1,worker:fail@doc=2"
    PLAN_SEED = 7

    def run_supervised_smoke(self, workers: int):
        from repro.resilience import FaultPlan, SupervisionPolicy

        corpus = list(
            generate_corpus(SMOKE["dataset"], n=SMOKE["n"], seed=SMOKE["seed"])
        )
        runner = CorpusRunner(
            SMOKE["dataset"],
            workers=workers,
            fault_plan=FaultPlan.from_spec(self.PLAN_SPEC, seed=self.PLAN_SEED),
            supervision=SupervisionPolicy(backoff_base_s=0.01, timeout_s=30.0),
        )
        outcome = runner.run(corpus)
        payload = {
            "results": [
                None if r is None else {"doc_id": r.doc_id, "skew": r.skew_angle}
                for r in outcome.results
            ],
            "failures": [
                (f.doc_index, f.doc_id, f.error_type) for f in outcome.failures
            ],
            "ledger": outcome.supervision.ledger(),
            "backoff_s": outcome.supervision.backoff_s,
        }
        return json.dumps(payload, sort_keys=True).encode()

    def test_supervised_serial_rerun_byte_identical(self):
        assert self.run_supervised_smoke(workers=1) == self.run_supervised_smoke(workers=1)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_supervised_ledger_parity_serial_vs_parallel(self):
        assert self.run_supervised_smoke(workers=1) == self.run_supervised_smoke(workers=2)


class TestDeterminismAcrossInterpreters:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_hash_seed_independence(self, workers):
        """Fresh interpreters with different PYTHONHASHSEEDs agree —
        the strongest guard against set-iteration order reaching the
        output (lint rule DET003's runtime counterpart)."""
        if workers > 1 and not HAVE_FORK:
            pytest.skip("needs fork start method")
        script = (
            "import sys, json\n"
            "sys.path.insert(0, 'src')\n"
            "from tests.test_determinism import run_smoke\n"
            f"sys.stdout.buffer.write(run_smoke(workers={workers}))\n"
        )
        outputs = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = "src" + os.pathsep + str(REPO_ROOT)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])  # non-empty, well-formed
