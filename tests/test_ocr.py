"""Simulated OCR: noise model, reading order, deskew, layout analysis."""

import math

import pytest

from repro.doc import Document, TextElement
from repro.geometry import BBox
from repro.ocr import NoiseProfile, OcrEngine, deskew, estimate_skew, rotate_back, tesseract_blocks
from repro.ocr.noise import corrupt_word


def word(text, x, y, w=40, h=12):
    return TextElement(text, BBox(x, y, w, h))


class TestNoise:
    def test_zero_noise_identity(self):
        import numpy as np

        rng = np.random.default_rng(0)
        assert corrupt_word("Hello", rng, 0.0, 0.0) == "Hello"

    def test_high_noise_changes_text(self):
        import numpy as np

        rng = np.random.default_rng(0)
        corrupted = [corrupt_word("Illinois Social Olive", rng, 0.5, 0.2) for _ in range(5)]
        assert any(c != "Illinois Social Olive" for c in corrupted)

    def test_profiles_ordered_by_source_quality(self):
        mobile = NoiseProfile.for_source("mobile")
        pdf = NoiseProfile.for_source("pdf")
        html = NoiseProfile.for_source("html")
        assert mobile.char_p > pdf.char_p > html.char_p == 0.0

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            NoiseProfile.for_source("fax")


class TestEngine:
    def doc(self, source="pdf"):
        return Document(
            "t-1", 400, 200,
            elements=[word("Hello", 10, 10), word("world", 60, 10), word("below", 10, 40)],
            source=source,
        )

    def test_deterministic_across_engines(self):
        a = OcrEngine(seed=3).transcribe(self.doc("mobile"))
        b = OcrEngine(seed=3).transcribe(self.doc("mobile"))
        assert [w.text for w in a.words] == [w.text for w in b.words]

    def test_different_seeds_differ_eventually(self):
        doc = Document(
            "t-2", 800, 600,
            elements=[word(f"word{i}samples", 10 + (i % 8) * 90, 10 + (i // 8) * 30) for i in range(64)],
            source="mobile",
        )
        a = OcrEngine(seed=1).transcribe(doc)
        b = OcrEngine(seed=2).transcribe(doc)
        assert [w.text for w in a.words] != [w.text for w in b.words]

    def test_html_transcription_lossless(self):
        result = OcrEngine(seed=0).transcribe(self.doc("html"))
        assert [w.text for w in result.words] == ["Hello", "world", "below"]

    def test_full_text_reading_order(self):
        result = OcrEngine(seed=0).transcribe(self.doc("html"))
        assert result.full_text() == "Hello world\nbelow"

    def test_text_in_region(self):
        result = OcrEngine(seed=0).transcribe(self.doc("html"))
        assert result.text_in(BBox(0, 30, 400, 60)) == "below"

    def test_as_document_has_no_ground_truth(self):
        from repro.doc import Annotation

        doc = self.doc("html")
        doc.annotations.append(Annotation("x", "y", BBox(0, 0, 5, 5)))
        observed = OcrEngine(seed=0).transcribe(doc).as_document(doc)
        assert observed.annotations == []


class TestDeskew:
    def rotated_doc(self, degrees):
        words = []
        angle = math.radians(degrees)
        for row in range(6):
            for col in range(8):
                box = BBox(40 + col * 90, 40 + row * 40, 60, 12)
                words.append(TextElement("word", box.rotate(angle, 400, 150)))
        return Document("r-1", 850, 400, elements=words, source="mobile")

    def test_estimates_rotation(self):
        doc = self.rotated_doc(6.0)
        estimate = math.degrees(estimate_skew(doc))
        assert 4.0 < estimate < 8.0

    def test_upright_estimates_zero(self):
        doc = self.rotated_doc(0.0)
        assert abs(math.degrees(estimate_skew(doc))) < 1.0

    def test_deskew_restores_line_structure(self):
        from repro.doc.document import group_into_lines

        doc = self.rotated_doc(8.0)
        corrected, angle = deskew(doc)
        assert abs(angle) > math.radians(4)
        lines = group_into_lines(corrected.text_elements)
        assert len(lines) <= 8  # rotated view fragments into many more

    def test_deskew_boxes_stay_tight(self):
        doc = self.rotated_doc(8.0)
        corrected, _ = deskew(doc)
        heights = [w.bbox.h for w in corrected.text_elements]
        assert max(heights) < 20  # the double-enclosure bug would give ~25+

    def test_rotate_back_near_original(self):
        doc = self.rotated_doc(7.0)
        corrected, angle = deskew(doc)
        # rotate a corrected box back: must overlap the observed region
        box = corrected.text_elements[0].bbox
        restored = rotate_back(box, angle, corrected)
        assert restored.iou(doc.text_elements[0].bbox) > 0.3

    def test_deskew_noop_returns_same_doc(self):
        doc = self.rotated_doc(0.0)
        corrected, angle = deskew(doc)
        assert angle == 0.0 and corrected is doc


class TestTesseractBlocks:
    def test_separates_stacked_paragraphs(self):
        elements = []
        for i in range(3):
            elements.append(word(f"a{i}", 10, 10 + i * 16))
        for i in range(3):
            elements.append(word(f"b{i}", 10, 120 + i * 16))
        doc = Document("b-1", 300, 300, elements=elements)
        blocks = tesseract_blocks(doc)
        assert len(blocks) == 2

    def test_splits_side_by_side_columns(self):
        elements = [word("left", 10, 10), word("right", 200, 10)]
        doc = Document("b-2", 400, 100, elements=elements)
        assert len(tesseract_blocks(doc)) == 2

    def test_empty_doc(self):
        assert tesseract_blocks(Document("b-3", 100, 100)) == []
