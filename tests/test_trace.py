"""The ``repro.trace`` subsystem: spans, decision events, exporters,
cross-process adoption, the explain report, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace_events,
    collect_events,
    explain_report,
    jsonl_lines,
    validate_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def _fake_clock(start: float = 0.0, step: float = 1.0):
    """A deterministic perf_counter stand-in."""
    state = {"t": start - step}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


def small_trace() -> Tracer:
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("corpus", dataset="D2", docs=1):
        with tracer.span("doc", index=0, doc_id="D2-00000"):
            tracer.event("ocr.cache", hit=False, doc_id="D2-00000")
            with tracer.span("segment"):
                with tracer.span("segment.cuts", depth=0):
                    tracer.event(
                        "cut.decision", orientation="horizontal",
                        position=10.0, span_units=4.0, normalized_width=3.5,
                        correlation=0.0, floor=1.0, accepted=True,
                        reason="delimiter",
                    )
                tracer.event(
                    "merge.decision", height=2, level=1, theta=0.3, sc=0.5,
                    node="'Title'@(0,0,10,4)", merged=True,
                    partner="'Sub'@(0,5,10,4)", sim=0.9, reason="merged",
                )
                tracer.event("merge.pass", height=2, theta=0.3, merges=1)
            with tracer.span("select"):
                tracer.event(
                    "pareto.front",
                    blocks=[
                        {"index": 0, "height": 12.0, "coherence": 1.5,
                         "density": 0.2, "selected": True},
                        {"index": 1, "height": 4.0, "coherence": 0.1,
                         "density": 0.8, "selected": False},
                    ],
                    selected=1, total=2,
                )
                tracer.event(
                    "select.decision", entity="event_title", candidates=2,
                    matched=True, block=0, text="Jazz Night",
                )
    return tracer


# ----------------------------------------------------------------------
# Tracer / spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_time(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("corpus") as corpus:
            with tracer.span("doc", index=0) as doc:
                pass
        assert corpus.children == [doc]
        assert doc.t1 > doc.t0 and corpus.t1 > corpus.t0
        assert corpus.duration >= doc.duration

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("doc", index=0) as doc:
            tracer.event("cut.decision", accepted=True)
        assert [e.name for e in doc.events] == ["cut.decision"]
        assert doc.events[0].attrs == {"accepted": True}

    def test_orphan_events_survive_in_detached_root(self):
        tracer = Tracer()
        tracer.event("stray", x=1)
        roots = tracer.drain()
        assert [r.name for r in roots] == ["detached"]
        assert roots[0].events[0].attrs == {"x": 1}

    def test_current_path_renders_indices(self):
        tracer = Tracer()
        with tracer.span("corpus"):
            with tracer.span("doc", index=3):
                with tracer.span("segment"):
                    assert tracer.current_path() == "corpus/doc[3]/segment"

    def test_drain_resets_buffer(self):
        tracer = small_trace()
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_crashed_span_is_recorded_with_error_path(self):
        tracer = Tracer()
        exc = ValueError("boom")
        with pytest.raises(ValueError):
            with tracer.span("corpus"):
                with tracer.span("doc", index=0):
                    with tracer.span("segment"):
                        raise exc
        assert tracer.consume_error_path(exc) == "corpus/doc[0]/segment"
        # consumed: a second ask returns nothing
        assert tracer.consume_error_path(exc) is None
        (root,) = tracer.drain()
        segment = root.find("segment")[0]
        assert segment.t1 >= segment.t0  # closed despite the raise

    def test_span_dict_roundtrip(self):
        (root,) = small_trace().drain()
        again = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert again.to_dict() == root.to_dict()

    def test_adopt_reparents_under_current_span(self):
        tracer = Tracer()
        foreign = Span("doc", {"index": 2})
        with tracer.span("corpus") as corpus:
            tracer.adopt(foreign)
        assert foreign in corpus.children

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("corpus", x=1) as span:
            NULL_TRACER.event("anything", y=2)
            NULL_TRACER.adopt(span)
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.current_path() == ""


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_is_valid_and_balanced(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl", small_trace().drain())
        assert validate_jsonl(path) > 0

    def test_jsonl_normalized_is_clock_independent(self):
        a = jsonl_lines(small_trace().drain(), normalize=True)
        slow = Tracer(clock=_fake_clock(start=100.0, step=17.0))
        slow_roots = []
        # Rebuild the same structure on a very different clock.
        with slow.span("corpus", dataset="D2", docs=1):
            with slow.span("doc", index=0, doc_id="D2-00000"):
                pass
        slow_roots = slow.drain()
        fast = Tracer(clock=_fake_clock())
        with fast.span("corpus", dataset="D2", docs=1):
            with fast.span("doc", index=0, doc_id="D2-00000"):
                pass
        assert jsonl_lines(slow_roots, normalize=True) == jsonl_lines(
            fast.drain(), normalize=True
        )
        assert len(a) > 2

    def test_chrome_trace_valid_and_nested(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", small_trace().drain())
        assert validate_chrome_trace(path) > 0
        data = json.loads(path.read_text())
        spans = {e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"}
        assert {"corpus", "doc[0]", "segment", "select"} <= set(spans)
        # Nesting: each child interval lies within its parent's.
        doc, seg = spans["doc[0]"], spans["segment"]
        assert doc["ts"] <= seg["ts"]
        assert seg["ts"] + seg["dur"] <= doc["ts"] + doc["dur"]
        # Decision events ride along as instants.
        instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "cut.decision" for e in instants)

    def test_doc_subtrees_get_their_own_track(self):
        tracer = Tracer()
        with tracer.span("corpus"):
            with tracer.span("doc", index=0):
                with tracer.span("segment"):
                    pass
            with tracer.span("doc", index=1):
                pass
        events = chrome_trace_events(tracer.drain())
        tid = {e["name"]: e["tid"] for e in events}
        assert tid["corpus"] == 0
        assert tid["doc[0]"] == 1 and tid["doc[1]"] == 2
        assert tid["segment"] == 1  # inherits its doc's track

    def test_validators_reject_malformed_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(bad)
        bad_jsonl = tmp_path / "bad.jsonl"
        bad_jsonl.write_text(
            json.dumps({"type": "span_end", "name": "x", "path": "x", "t": 0, "dur": 0})
            + "\n"
        )
        with pytest.raises(ValueError, match="unbalanced"):
            validate_jsonl(bad_jsonl)

    def test_unclosed_span_rejected(self, tmp_path):
        p = tmp_path / "open.jsonl"
        p.write_text(
            json.dumps({"type": "span_start", "name": "x", "path": "x", "t": 0}) + "\n"
        )
        with pytest.raises(ValueError, match="unclosed"):
            validate_jsonl(p)


# ----------------------------------------------------------------------
# Explain report
# ----------------------------------------------------------------------
class TestExplain:
    def test_collect_events_filters_by_family(self):
        roots = small_trace().drain()
        assert len(collect_events(roots, "merge.")) == 2
        assert len(collect_events(roots, "merge.pass")) == 1
        assert len(collect_events(roots)) == 6

    def test_report_contains_all_ledgers(self):
        report = explain_report(
            small_trace().drain(),
            extraction_rows=[{"entity": "event_title", "text": "Jazz Night"}],
        )
        assert "Cut ledger" in report
        assert "Merge ledger" in report
        assert "Pareto front" in report
        assert "Selection ledger" in report
        assert "Final extractions" in report
        assert "Jazz Night" in report
        assert "delimiter" in report  # the cut verdict reason
        assert "1 miss" in report  # ocr cache line

    def test_empty_trace_reports_gracefully(self):
        report = explain_report([])
        assert "(no events recorded)" in report


# ----------------------------------------------------------------------
# End-to-end over the real pipeline
# ----------------------------------------------------------------------
class TestPipelineTraces:
    @pytest.fixture(scope="class", params=["D1", "D2"])
    def traced_run(self, request):
        from repro.perf import CorpusRunner
        from repro.synth import generate_corpus

        tracer = Tracer()
        docs = list(generate_corpus(request.param, n=2, seed=3))
        outcome = CorpusRunner(request.param, tracer=tracer).run(docs)
        assert not outcome.failures
        return tracer.drain()

    def test_every_doc_has_the_decision_families(self, traced_run):
        (corpus,) = traced_run
        docs = corpus.find("doc")
        assert len(docs) == 2
        for doc in docs:
            names = {e.name for s in doc.walk() for e in s.events}
            assert "cut.decision" in names
            assert any(n.startswith("merge.") for n in names)
            assert "pareto.front" in names
            assert "select.decision" in names
            assert "ocr.cache" in names

    def test_stage_spans_nest_under_docs(self, traced_run):
        (corpus,) = traced_run
        for doc in corpus.find("doc"):
            child_names = {c.name for c in doc.children}
            assert {"ocr", "deskew", "segment", "select"} <= child_names
            assert doc.find("segment.cuts")

    def test_tracing_off_adds_no_spans(self):
        from repro.perf import CorpusRunner
        from repro.synth import generate_corpus

        docs = list(generate_corpus("D2", n=1, seed=3))
        outcome = CorpusRunner("D2").run(docs)  # default NULL_TRACER
        assert not outcome.failures
        assert NULL_TRACER.drain() == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_extract_trace_flags_write_valid_files(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = repro_main([
            "extract", "--dataset", "d2", "--n", "2", "--seed", "3",
            "--trace", str(chrome), "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        assert validate_chrome_trace(chrome) > 0
        assert validate_jsonl(jsonl) > 0
        assert "Perfetto" in capsys.readouterr().out

    def test_explain_prints_ledgers(self, capsys):
        assert repro_main(["explain", "--dataset", "D2", "--doc", "0"]) == 0
        out = capsys.readouterr().out
        assert "Decision report" in out
        assert "Cut ledger" in out
        assert "Merge ledger" in out
        assert "Pareto front" in out
        assert "Final extractions" in out

    def test_dataset_flag_is_case_insensitive(self, capsys):
        assert repro_main(["explain", "--dataset", "d1", "--doc", "0"]) == 0
        assert "Pareto front" in capsys.readouterr().out
