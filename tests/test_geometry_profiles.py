"""Prefix-sum projection profiles (``repro.geometry.profiles``): exact
equivalence with the naive grid rescan, the child-window memoisation
contract, and the degenerate shapes the recursion actually produces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.cuts import (
    DEFAULT_SLOPES,
    find_horizontal_cuts,
    find_vertical_cuts,
    interior_cut_sets,
)
from repro.geometry.grid import OccupancyGrid
from repro.geometry.profiles import (
    ProfileStore,
    RegionProfile,
    interior_scores_from_flags,
    runs_of_flags,
)


def _grid_from_occupied(occ: np.ndarray, cell: float = 4.0) -> OccupancyGrid:
    grid = OccupancyGrid(occ.shape[1] * cell, occ.shape[0] * cell, cell)
    grid.occupied[:] = occ
    return grid


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------
def test_empty_region_profile():
    profile = RegionProfile.from_occupied(np.zeros((0, 0), dtype=bool))
    assert profile.n_rows == 0 and profile.n_cols == 0
    assert profile.line_occupancy("horizontal").shape == (0,)
    assert profile.line_occupancy("vertical").shape == (0,)
    assert profile.slope_line_occupancy("horizontal", DEFAULT_SLOPES).shape == (
        len(DEFAULT_SLOPES),
        0,
    )
    assert profile.interior_runs("horizontal") == []


def test_zero_width_region_profile():
    profile = RegionProfile.from_occupied(np.zeros((3, 0), dtype=bool))
    assert profile.line_occupancy("horizontal").shape == (3,)
    assert list(profile.cut_flags("horizontal")) == [True, True, True]
    # Both cuts touch a border run: no interior cut sets.
    assert profile.interior_runs("horizontal") == []


def test_single_cell_region():
    for occupied in (True, False):
        occ = np.full((1, 1), occupied)
        profile = RegionProfile.from_occupied(occ)
        grid = _grid_from_occupied(occ)
        for orientation in ("horizontal", "vertical"):
            assert np.array_equal(
                profile.cut_flags(orientation),
                find_horizontal_cuts(grid)
                if orientation == "horizontal"
                else find_vertical_cuts(grid),
            )
            # A 1-cell region has no interior.
            assert interior_cut_sets(grid, orientation, profile=profile) == []
            assert interior_cut_sets(grid, orientation) == []


def test_fully_occupied_region_has_no_cuts():
    occ = np.ones((6, 8), dtype=bool)
    grid = _grid_from_occupied(occ)
    profile = RegionProfile.for_grid(grid)
    assert not profile.cut_flags("horizontal").any()
    assert interior_cut_sets(grid, "horizontal", profile=profile) == []


def test_fully_empty_region_has_no_interior_cuts():
    """All lines are cuts, but they form one border-to-border run —
    margins never separate content."""
    occ = np.zeros((6, 8), dtype=bool)
    grid = _grid_from_occupied(occ)
    profile = RegionProfile.for_grid(grid)
    assert profile.cut_flags("horizontal").all()
    assert interior_cut_sets(grid, "horizontal", profile=profile) == []
    assert interior_cut_sets(grid, "horizontal") == []


def test_interior_scores_from_flags_edges():
    flags = np.array(
        [
            [True, True, True, True],  # border-to-border: no interior
            [False, False, False, False],  # no cuts at all
            [False, True, True, False],  # one interior run of 2
            [True, False, True, False],  # leading border run only
            [False, True, False, True],  # trailing border run only
            [True, False, False, True],  # both runs touch borders
        ]
    )
    assert list(interior_scores_from_flags(flags)) == [0, 0, 2, 1, 1, 0]


def test_runs_of_flags_matches_manual_scan():
    assert runs_of_flags(np.array([], dtype=bool)) == []
    assert runs_of_flags(np.array([True])) == [(0, 1)]
    assert runs_of_flags(np.array([True, False, True, True])) == [(0, 1), (2, 2)]


# ----------------------------------------------------------------------
# The memoisation contract
# ----------------------------------------------------------------------
def test_try_window_shares_when_occupancy_matches():
    occ = np.zeros((10, 12), dtype=bool)
    occ[2:4, 3:9] = True
    parent = RegionProfile.from_occupied(occ)
    child_occ = occ[1:6, 2:11].copy()
    child = parent.try_window(1, 2, child_occ)
    assert child is not None and child.is_window
    fresh = RegionProfile.from_occupied(child_occ)
    for orientation in ("horizontal", "vertical"):
        for slope in (0.0, 0.1, -0.18):
            assert np.array_equal(
                child.line_occupancy(orientation, slope),
                fresh.line_occupancy(orientation, slope),
            )
        assert np.array_equal(
            child.slope_line_occupancy(orientation, DEFAULT_SLOPES),
            fresh.slope_line_occupancy(orientation, DEFAULT_SLOPES),
        )


def test_try_window_refuses_occupancy_mismatch():
    """A sibling's box bleeding into the child window breaks the
    contract: the child must rebuild."""
    occ = np.zeros((8, 8), dtype=bool)
    occ[4, 4] = True  # content the child's own rasterisation won't have
    parent = RegionProfile.from_occupied(occ)
    assert parent.try_window(2, 2, np.zeros((4, 4), dtype=bool)) is None


def test_try_window_refuses_out_of_bounds():
    parent = RegionProfile.from_occupied(np.zeros((4, 4), dtype=bool))
    assert parent.try_window(2, 0, np.zeros((3, 4), dtype=bool)) is None
    assert parent.try_window(-1, 0, np.zeros((2, 2), dtype=bool)) is None


def test_profile_store_applies_cell_alignment():
    store = ProfileStore()
    occ = np.zeros((10, 10), dtype=bool)
    grid = _grid_from_occupied(occ, cell=4.0)
    parent_frame = BBox(0, 0, 40, 40)
    root = store.profile_for(grid)
    assert store.rebuilds == 1

    sub = OccupancyGrid(20.0, 20.0, 4.0)
    aligned = store.profile_for(
        sub, frame=BBox(8, 4, 20, 20), parent=root, parent_frame=parent_frame
    )
    assert aligned.is_window and store.windows == 1

    misaligned = store.profile_for(
        sub, frame=BBox(6, 4, 20, 20), parent=root, parent_frame=parent_frame
    )
    assert not misaligned.is_window and store.rebuilds == 2


# ----------------------------------------------------------------------
# Property: fast == naive on random synthetic layouts
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=24),
    n_cols=st.integers(min_value=1, max_value=24),
    data=st.data(),
)
def test_fast_cut_search_matches_naive_on_random_grids(n_rows, n_cols, data):
    bits = data.draw(
        st.lists(
            st.booleans(), min_size=n_rows * n_cols, max_size=n_rows * n_cols
        )
    )
    occ = np.array(bits, dtype=bool).reshape(n_rows, n_cols)
    grid = _grid_from_occupied(occ)
    profile = RegionProfile.for_grid(grid)
    for orientation in ("horizontal", "vertical"):
        naive_flags = (
            find_horizontal_cuts(grid, 0.1)
            if orientation == "horizontal"
            else find_vertical_cuts(grid, 0.1)
        )
        assert np.array_equal(profile.cut_flags(orientation, 0.1), naive_flags)
        fast = interior_cut_sets(grid, orientation, profile=profile)
        naive = interior_cut_sets(grid, orientation)
        assert fast == naive


@settings(max_examples=30, deadline=None)
@given(
    n_boxes=st.integers(min_value=0, max_value=8),
    data=st.data(),
)
def test_fast_cut_search_matches_naive_on_random_layouts(n_boxes, data):
    """Box-based layouts (the shapes VS2-Segment actually sees)."""
    boxes = []
    for _ in range(n_boxes):
        x = data.draw(st.floats(min_value=0, max_value=80))
        y = data.draw(st.floats(min_value=0, max_value=80))
        w = data.draw(st.floats(min_value=1, max_value=40))
        h = data.draw(st.floats(min_value=1, max_value=20))
        boxes.append(BBox(x, y, w, h))
    grid = OccupancyGrid.from_bboxes(boxes, 120.0, 100.0, cell=4.0)
    profile = RegionProfile.for_grid(grid)
    for orientation in ("horizontal", "vertical"):
        fast = interior_cut_sets(grid, orientation, profile=profile)
        naive = interior_cut_sets(grid, orientation)
        assert fast == naive


def test_fast_path_rejects_shape_mismatch():
    grid = _grid_from_occupied(np.zeros((4, 4), dtype=bool))
    profile = RegionProfile.from_occupied(np.zeros((5, 4), dtype=bool))
    with pytest.raises(ValueError):
        interior_cut_sets(grid, "horizontal", profile=profile)
