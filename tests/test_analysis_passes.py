"""The interprocedural pass families (DET1xx / FRAME1xx / DEAD / SCHEMA).

Each pass family is proven against an on-disk fixture package under
``tests/fixtures/analysis/`` that is *invisible* to the module-scope
rules — the same tree is linted twice, once with only the per-file
catalogue (clean) and once with the passes (finding) — plus targeted
inline fixtures for the escape hatches (pragmas, noqa, importers).

Fixture trees are copied to a tmp dir before linting: the ``fixtures``
directory itself is pruned from discovery so the repo's own self-lint
stays clean.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.lint import ALL_RULES
from repro.analysis.runner import check_project

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"

#: The per-file catalogue only — what `repro check` could see before the
#: whole-program framework existed.
MODULE_RULES = list(ALL_RULES)


def copy_fixture(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def run_tree(tree: Path, rule_ids=None):
    return check_project([tree], rule_ids=rule_ids, root=tree).violations


class TestDeterminismPass:
    def test_lazy_import_chain_reaches_wall_clock(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["DET101"]
        v = violations[0]
        assert v.path == "repro/harness/clock.py"
        assert "time.time" in v.message
        # The call chain names every hop back to the entry point.
        assert "helper <- stamp <- segment" in v.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_det_reviewed_pragma_stops_propagation(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        clock = tree / "repro" / "harness" / "clock.py"
        clock.write_text(
            clock.read_text().replace("def helper():", "def helper():  # det: reviewed")
        )
        assert run_tree(tree) == []

    def test_unreachable_sink_is_clean(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        segment = tree / "repro" / "core" / "segment.py"
        segment.write_text("def segment(doc):\n    return doc\n")
        assert run_tree(tree) == []

    def test_noqa_suppresses_the_sink_line(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        clock = tree / "repro" / "harness" / "clock.py"
        clock.write_text(
            clock.read_text().replace(
                "return time.time()", "return time.time()  # noqa: DET101"
            )
        )
        assert run_tree(tree) == []


class TestFramesPass:
    def test_cross_frame_iou_flagged_once(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["FRAME101"]
        v = violations[0]
        assert v.path == "repro/layout/mix.py"
        assert "observed" in v.message and "original" in v.message
        # Only mixed_overlap's iou line — not the same-frame or the
        # converted (.scale breaks taint) variants.
        source_line = (tree / v.path).read_text().splitlines()[v.line - 1]
        assert "a.iou(b)" in source_line

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_call_site_violating_declared_frame(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "use.py").write_text(
            "def span(box):  # frame: observed\n"
            "    return box.x2\n"
            "\n"
            "\n"
            "def layout_box(node):  # frame: original\n"
            "    return node.box\n"
            "\n"
            "\n"
            "def bad(node):\n"
            "    return span(layout_box(node))\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME102"]
        assert "frame: observed" in violations[0].message

    def test_converter_returning_unconverted_value(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "conv.py").write_text(
            "def rotate_back(box, angle):  # frame: observed -> original\n"
            "    return box\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME102"]
        assert "returns a observed-frame value" in violations[0].message

    def test_public_geometry_api_without_frame(self, tmp_path):
        target = tmp_path / "repro" / "geometry"
        target.mkdir(parents=True)
        (target / "extra.py").write_text(
            "def overlap_ratio(box_a, box_b):\n    return 0.0\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME103"]

    def test_module_frame_pragma_silences_frame103(self, tmp_path):
        target = tmp_path / "repro" / "geometry"
        target.mkdir(parents=True)
        (target / "extra.py").write_text(
            "# frame: any\n"
            "def overlap_ratio(box_a, box_b):\n    return 0.0\n"
        )
        assert run_tree(tmp_path) == []

    def test_noqa_suppresses_frame_finding(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        mix = tree / "repro" / "layout" / "mix.py"
        mix.write_text(
            mix.read_text().replace(
                "return a.iou(b)\n\n\ndef same", "return a.iou(b)  # noqa: FRAME101\n\n\ndef same"
            )
        )
        assert run_tree(tree) == []


class TestExportsPass:
    def test_dead_shim_flagged(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["DEAD001"]
        v = violations[0]
        assert v.path == "repro/core/old_merge.py"
        assert "repro.core.old_merge" in v.message
        # merging.py has a live importer and is not a shim hit.

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_shim_with_importer_is_alive(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        (tree / "repro" / "harness" / "legacy.py").write_text(
            "from repro.core.old_merge import merge_pass\n"
            "\n"
            "\n"
            "def legacy(blocks):\n"
            "    return merge_pass(blocks)\n"
        )
        assert run_tree(tree) == []

    def test_unresolvable_from_import(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        run = tree / "repro" / "harness" / "run.py"
        run.write_text(
            run.read_text().replace(
                "from repro.core.merging import merge_pass",
                "from repro.core.merging import merge_passes",
            ).replace("return merge_pass(blocks)", "return merge_passes(blocks)")
        )
        violations = run_tree(tree)
        rules = [v.rule for v in violations]
        assert "DEAD002" in rules
        dead002 = next(v for v in violations if v.rule == "DEAD002")
        assert "merge_passes" in dead002.message

    def test_getattr_module_exempt_from_dead002(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        merging = tree / "repro" / "core" / "merging.py"
        merging.write_text(
            merging.read_text()
            + "\n\ndef __getattr__(name):\n    raise AttributeError(name)\n"
        )
        run = tree / "repro" / "harness" / "run.py"
        run.write_text(
            run.read_text().replace("import merge_pass", "import merge_anything")
            .replace("merge_pass(blocks)", "merge_anything(blocks)")
        )
        # The shim itself is still dead, but the unknowable name pulled
        # through __getattr__ is not a DEAD002 hit.
        assert [v.rule for v in run_tree(tree)] == ["DEAD001"]


class TestSchemaPass:
    def test_unregistered_and_stale_names(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["SCHEMA001", "SCHEMA002"]
        schema1 = violations[0]
        assert schema1.path == "repro/core/emit.py"
        assert "cut.descision" in schema1.message
        schema2 = violations[1]
        assert schema2.path == "repro/trace/tracer.py"
        assert "ocr.retry" in schema2.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_registering_the_name_fixes_schema001(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        registry = tree / "repro" / "trace" / "tracer.py"
        registry.write_text(
            'EVENT_NAMES = frozenset({"cut.decision", "cut.descision"})\n'
        )
        assert run_tree(tree) == []

    def test_no_registry_means_pass_is_inert(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        (tree / "repro" / "trace" / "tracer.py").write_text("X = 1\n")
        assert run_tree(tree) == []

    def test_event_in_nonpackage_code_out_of_scope(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        emit = tree / "repro" / "core" / "emit.py"
        emit.write_text(
            emit.read_text().replace('"cut.descision"', '"cut.decision"')
        )
        (tree / "repro" / "trace" / "tracer.py").write_text(
            'EVENT_NAMES = frozenset({"cut.decision"})\n'
        )
        # A stray event emitted from outside any repro package (a test,
        # a script) is not the schema's business.
        (tree / "script.py").write_text(
            "def poke(tracer):\n    tracer.event('stray')\n"
        )
        assert run_tree(tree) == []


class TestObsPass:
    def test_undeclared_and_stale_names(self, tmp_path):
        tree = copy_fixture(tmp_path, "undeclared_metric")
        violations = run_tree(tree)
        assert sorted(v.rule for v in violations) == ["OBS002", "OBS003"]
        by_rule = {v.rule: v for v in violations}
        obs2 = by_rule["OBS002"]
        assert obs2.path == "repro/perf/emit.py"
        assert "repro.docs.procesed" in obs2.message
        obs3 = by_rule["OBS003"]
        assert obs3.path == "repro/obs/names.py"
        assert "repro.docs.skipped" in obs3.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "undeclared_metric")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_declaring_the_name_fixes_obs002(self, tmp_path):
        tree = copy_fixture(tmp_path, "undeclared_metric")
        names = tree / "repro" / "obs" / "names.py"
        names.write_text(
            'METRIC_NAMES = {\n'
            '    "repro.docs.processed": "counter",\n'
            '    "repro.docs.procesed": "counter",\n'
            '}\n'
        )
        assert run_tree(tree) == []

    def test_no_registry_means_pass_is_inert(self, tmp_path):
        tree = copy_fixture(tmp_path, "undeclared_metric")
        (tree / "repro" / "obs" / "names.py").write_text("X = 1\n")
        assert run_tree(tree) == []

    def test_emission_in_nonpackage_code_out_of_scope(self, tmp_path):
        tree = copy_fixture(tmp_path, "undeclared_metric")
        emit = tree / "repro" / "perf" / "emit.py"
        emit.write_text(
            emit.read_text().replace('"repro.docs.procesed"', '"repro.docs.processed"')
        )
        (tree / "repro" / "obs" / "names.py").write_text(
            'METRIC_NAMES = {"repro.docs.processed": "counter"}\n'
        )
        # A synthetic metric driven from a test or script is not the
        # registry's business.
        (tree / "script.py").write_text(
            "def poke(reg):\n    reg.counter('stray').inc()\n"
        )
        assert run_tree(tree) == []


class TestConcurrencyPass:
    def test_worker_reachable_alias_write_flagged(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_worker_global")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["CONC101"]
        v = violations[0]
        assert v.path == "repro/core/cache.py"
        assert "module state '_CACHE'" in v.message
        assert "via alias 'cache'" in v.message
        # The chain crosses the file boundary back to the worker entry.
        assert "warm_cache <- _init_worker" in v.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_worker_global")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_conc_ambient_pragma_sanctions_the_writer(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_worker_global")
        cache = tree / "repro" / "core" / "cache.py"
        cache.write_text(
            cache.read_text().replace(
                "def warm_cache(config):", "def warm_cache(config):  # conc: ambient"
            )
        )
        assert run_tree(tree) == []

    def test_write_without_worker_path_is_clean(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_worker_global")
        runner = tree / "repro" / "perf" / "runner.py"
        runner.write_text("def _init_worker(config):\n    return config\n")
        assert run_tree(tree) == []

    def test_lambda_into_process_boundary(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_pickle_boundary")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["CONC102"]
        v = violations[0]
        assert "lambda" in v.message and "dispatch" in v.message
        # dispatch_ok ships a module-level function: only one finding.
        source_line = (tree / v.path).read_text().splitlines()[v.line - 1]
        assert "pool.submit(handler, doc)" in source_line

    def test_pickle_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_pickle_boundary")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_fork_after_transitive_thread_start(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_fork_after_thread")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["CONC103"]
        v = violations[0]
        assert v.path == "repro/perf/pool.py"
        # serve flagged (start via helper, then fork); serve_safe clean.
        assert "in serve;" in v.message
        assert "via start_watcher" in v.message

    def test_fork_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_fork_after_thread")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_pool_created_at_import_time(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_import_pool")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["CONC103"]
        assert "at import time" in violations[0].message

    def test_noqa_suppresses_conc_finding(self, tmp_path):
        tree = copy_fixture(tmp_path, "conc_import_pool")
        boot = tree / "repro" / "perf" / "boot.py"
        boot.write_text(
            boot.read_text().replace(
                "POOL = ProcessPoolExecutor(2)",
                "POOL = ProcessPoolExecutor(2)  # noqa: CONC103",
            )
        )
        assert run_tree(tree) == []


class TestExceptionFlowPass:
    def test_fault_escapes_to_unguarded_root(self, tmp_path):
        tree = copy_fixture(tmp_path, "exc_fault_escape")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["EXC101"]
        v = violations[0]
        assert v.path == "repro/harness/entry.py"
        # Blame lands on the leaky root only — the guarded sibling
        # catches the type at the boundary and stays clean.
        assert "segment_all" in v.message
        assert "segment_guarded" not in v.message
        assert "raised at repro/core/stage.py" in v.message
        assert "segment_all -> cut_region" in v.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "exc_fault_escape")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_exc_boundary_pragma_accepts_the_escape(self, tmp_path):
        tree = copy_fixture(tmp_path, "exc_fault_escape")
        entry = tree / "repro" / "harness" / "entry.py"
        entry.write_text(
            entry.read_text().replace(
                "def segment_all(regions):",
                "def segment_all(regions):  # exc: boundary",
            )
        )
        assert run_tree(tree) == []

    def test_silent_swallow_path_flagged(self, tmp_path):
        tree = copy_fixture(tmp_path, "exc_silent_path")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["EXC102"]
        v = violations[0]
        # drain records on one path only; drain_ok records on every
        # path and must stay clean — a pure path property.
        assert "in drain " in v.message
        source_line = (tree / v.path).read_text().splitlines()[v.line - 1]
        assert "except Exception as exc:" in source_line

    def test_swallow_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "exc_silent_path")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_exc001_superseded_by_flow_finding_on_same_line(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "ingest.py").write_text(
            "class DocumentFailure(Exception):\n"
            "    pass\n"
            "\n"
            "\n"
            "def load(run, doc):\n"
            "    try:\n"
            "        return run(doc)\n"
            "    except Exception:\n"
            "        pass\n"
        )
        # Module rules alone: the syntactic EXC001.
        module_only = run_tree(tmp_path, rule_ids=MODULE_RULES)
        assert [v.rule for v in module_only] == ["EXC001"]
        # Full catalogue: the flow-sensitive finding supersedes it —
        # one finding on that line, not two.
        full = run_tree(tmp_path)
        assert [v.rule for v in full] == ["EXC102"]
        assert full[0].line == module_only[0].line


class TestResourceLifecyclePass:
    def test_leaking_path_flagged_safe_variants_clean(self, tmp_path):
        tree = copy_fixture(tmp_path, "rsrc_lifecycle")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["RSRC101", "RSRC102"]
        leak, reuse = violations
        # flush_rows leaks on the early return; the with-block and the
        # ownership-transferring return are exempt.
        assert leak.path == "repro/harness/leak.py"
        assert "file handle 'fh'" in leak.message and "flush_rows" in leak.message
        source_line = (tree / leak.path).read_text().splitlines()[leak.line - 1]
        assert 'open(path, "w")' in source_line
        # write_tail uses the handle after every path closed it.
        assert reuse.path == "repro/harness/reuse.py"
        assert ".close()" in reuse.message
        source_line = (tree / reuse.path).read_text().splitlines()[reuse.line - 1]
        assert "fh.write(tail)" in source_line

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "rsrc_lifecycle")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_releasing_every_path_fixes_the_leak(self, tmp_path):
        tree = copy_fixture(tmp_path, "rsrc_lifecycle")
        leak = tree / "repro" / "harness" / "leak.py"
        leak.write_text(
            leak.read_text().replace(
                "    if not rows:\n        return 0\n",
                "    if not rows:\n        fh.close()\n        return 0\n",
            )
        )
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["RSRC102"]

    def test_noqa_suppresses_rsrc_finding(self, tmp_path):
        tree = copy_fixture(tmp_path, "rsrc_lifecycle")
        reuse = tree / "repro" / "harness" / "reuse.py"
        reuse.write_text(
            reuse.read_text().replace(
                "fh.write(tail)", "fh.write(tail)  # noqa: RSRC102"
            )
        )
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["RSRC101"]


class TestRealTreeIsClean:
    def test_repo_passes_its_own_whole_program_analysis(self):
        repo = Path(__file__).resolve().parents[1]
        violations = check_project([repo / "src", repo / "tests"], root=repo).violations
        assert violations == [], [f"{v.location} {v.rule}" for v in violations]
