"""The interprocedural pass families (DET1xx / FRAME1xx / DEAD / SCHEMA).

Each pass family is proven against an on-disk fixture package under
``tests/fixtures/analysis/`` that is *invisible* to the module-scope
rules — the same tree is linted twice, once with only the per-file
catalogue (clean) and once with the passes (finding) — plus targeted
inline fixtures for the escape hatches (pragmas, noqa, importers).

Fixture trees are copied to a tmp dir before linting: the ``fixtures``
directory itself is pruned from discovery so the repo's own self-lint
stays clean.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.lint import ALL_RULES
from repro.analysis.runner import check_project

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"

#: The per-file catalogue only — what `repro check` could see before the
#: whole-program framework existed.
MODULE_RULES = list(ALL_RULES)


def copy_fixture(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def run_tree(tree: Path, rule_ids=None):
    return check_project([tree], rule_ids=rule_ids, root=tree).violations


class TestDeterminismPass:
    def test_lazy_import_chain_reaches_wall_clock(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["DET101"]
        v = violations[0]
        assert v.path == "repro/harness/clock.py"
        assert "time.time" in v.message
        # The call chain names every hop back to the entry point.
        assert "helper <- stamp <- segment" in v.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_det_reviewed_pragma_stops_propagation(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        clock = tree / "repro" / "harness" / "clock.py"
        clock.write_text(
            clock.read_text().replace("def helper():", "def helper():  # det: reviewed")
        )
        assert run_tree(tree) == []

    def test_unreachable_sink_is_clean(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        segment = tree / "repro" / "core" / "segment.py"
        segment.write_text("def segment(doc):\n    return doc\n")
        assert run_tree(tree) == []

    def test_noqa_suppresses_the_sink_line(self, tmp_path):
        tree = copy_fixture(tmp_path, "impure_lazy_import")
        clock = tree / "repro" / "harness" / "clock.py"
        clock.write_text(
            clock.read_text().replace(
                "return time.time()", "return time.time()  # noqa: DET101"
            )
        )
        assert run_tree(tree) == []


class TestFramesPass:
    def test_cross_frame_iou_flagged_once(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["FRAME101"]
        v = violations[0]
        assert v.path == "repro/layout/mix.py"
        assert "observed" in v.message and "original" in v.message
        # Only mixed_overlap's iou line — not the same-frame or the
        # converted (.scale breaks taint) variants.
        source_line = (tree / v.path).read_text().splitlines()[v.line - 1]
        assert "a.iou(b)" in source_line

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_call_site_violating_declared_frame(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "use.py").write_text(
            "def span(box):  # frame: observed\n"
            "    return box.x2\n"
            "\n"
            "\n"
            "def layout_box(node):  # frame: original\n"
            "    return node.box\n"
            "\n"
            "\n"
            "def bad(node):\n"
            "    return span(layout_box(node))\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME102"]
        assert "frame: observed" in violations[0].message

    def test_converter_returning_unconverted_value(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "conv.py").write_text(
            "def rotate_back(box, angle):  # frame: observed -> original\n"
            "    return box\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME102"]
        assert "returns a observed-frame value" in violations[0].message

    def test_public_geometry_api_without_frame(self, tmp_path):
        target = tmp_path / "repro" / "geometry"
        target.mkdir(parents=True)
        (target / "extra.py").write_text(
            "def overlap_ratio(box_a, box_b):\n    return 0.0\n"
        )
        violations = run_tree(tmp_path)
        assert [v.rule for v in violations] == ["FRAME103"]

    def test_module_frame_pragma_silences_frame103(self, tmp_path):
        target = tmp_path / "repro" / "geometry"
        target.mkdir(parents=True)
        (target / "extra.py").write_text(
            "# frame: any\n"
            "def overlap_ratio(box_a, box_b):\n    return 0.0\n"
        )
        assert run_tree(tmp_path) == []

    def test_noqa_suppresses_frame_finding(self, tmp_path):
        tree = copy_fixture(tmp_path, "frame_mix_iou")
        mix = tree / "repro" / "layout" / "mix.py"
        mix.write_text(
            mix.read_text().replace(
                "return a.iou(b)\n\n\ndef same", "return a.iou(b)  # noqa: FRAME101\n\n\ndef same"
            )
        )
        assert run_tree(tree) == []


class TestExportsPass:
    def test_dead_shim_flagged(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["DEAD001"]
        v = violations[0]
        assert v.path == "repro/core/old_merge.py"
        assert "repro.core.old_merge" in v.message
        # merging.py has a live importer and is not a shim hit.

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_shim_with_importer_is_alive(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        (tree / "repro" / "harness" / "legacy.py").write_text(
            "from repro.core.old_merge import merge_pass\n"
            "\n"
            "\n"
            "def legacy(blocks):\n"
            "    return merge_pass(blocks)\n"
        )
        assert run_tree(tree) == []

    def test_unresolvable_from_import(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        run = tree / "repro" / "harness" / "run.py"
        run.write_text(
            run.read_text().replace(
                "from repro.core.merging import merge_pass",
                "from repro.core.merging import merge_passes",
            ).replace("return merge_pass(blocks)", "return merge_passes(blocks)")
        )
        violations = run_tree(tree)
        rules = [v.rule for v in violations]
        assert "DEAD002" in rules
        dead002 = next(v for v in violations if v.rule == "DEAD002")
        assert "merge_passes" in dead002.message

    def test_getattr_module_exempt_from_dead002(self, tmp_path):
        tree = copy_fixture(tmp_path, "dead_shim")
        merging = tree / "repro" / "core" / "merging.py"
        merging.write_text(
            merging.read_text()
            + "\n\ndef __getattr__(name):\n    raise AttributeError(name)\n"
        )
        run = tree / "repro" / "harness" / "run.py"
        run.write_text(
            run.read_text().replace("import merge_pass", "import merge_anything")
            .replace("merge_pass(blocks)", "merge_anything(blocks)")
        )
        # The shim itself is still dead, but the unknowable name pulled
        # through __getattr__ is not a DEAD002 hit.
        assert [v.rule for v in run_tree(tree)] == ["DEAD001"]


class TestSchemaPass:
    def test_unregistered_and_stale_names(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        violations = run_tree(tree)
        assert [v.rule for v in violations] == ["SCHEMA001", "SCHEMA002"]
        schema1 = violations[0]
        assert schema1.path == "repro/core/emit.py"
        assert "cut.descision" in schema1.message
        schema2 = violations[1]
        assert schema2.path == "repro/trace/tracer.py"
        assert "ocr.retry" in schema2.message

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_registering_the_name_fixes_schema001(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        registry = tree / "repro" / "trace" / "tracer.py"
        registry.write_text(
            'EVENT_NAMES = frozenset({"cut.decision", "cut.descision"})\n'
        )
        assert run_tree(tree) == []

    def test_no_registry_means_pass_is_inert(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        (tree / "repro" / "trace" / "tracer.py").write_text("X = 1\n")
        assert run_tree(tree) == []

    def test_event_in_nonpackage_code_out_of_scope(self, tmp_path):
        tree = copy_fixture(tmp_path, "unregistered_event")
        emit = tree / "repro" / "core" / "emit.py"
        emit.write_text(
            emit.read_text().replace('"cut.descision"', '"cut.decision"')
        )
        (tree / "repro" / "trace" / "tracer.py").write_text(
            'EVENT_NAMES = frozenset({"cut.decision"})\n'
        )
        # A stray event emitted from outside any repro package (a test,
        # a script) is not the schema's business.
        (tree / "script.py").write_text(
            "def poke(tracer):\n    tracer.event('stray')\n"
        )
        assert run_tree(tree) == []


class TestRealTreeIsClean:
    def test_repo_passes_its_own_whole_program_analysis(self):
        repo = Path(__file__).resolve().parents[1]
        violations = check_project([repo / "src", repo / "tests"], root=repo).violations
        assert violations == [], [f"{v.location} {v.rule}" for v in violations]
