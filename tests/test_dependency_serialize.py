"""Dependency parsing and document serialisation."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patterns import mine_entity_patterns
from repro.doc.serialize import (
    document_from_dict,
    document_to_dict,
    load_documents,
    save_documents,
)
from repro.nlp.dependency import dependency_mining_tree, parse_dependencies


class TestDependencyParser:
    def nodes(self, text):
        return parse_dependencies(text)

    def arc(self, nodes, child_text):
        node = next(n for n in nodes if n.token.text == child_text)
        head = nodes[node.head].token.text if node.head >= 0 else "ROOT"
        return head, node.relation

    def test_svo(self):
        nodes = self.nodes("The club hosted a big concert")
        assert self.arc(nodes, "hosted") == ("ROOT", "root")
        assert self.arc(nodes, "club") == ("hosted", "nsubj")
        assert self.arc(nodes, "concert") == ("hosted", "obj")
        assert self.arc(nodes, "big") == ("concert", "amod")
        assert self.arc(nodes, "The") == ("club", "det")

    def test_prepositional_attachment(self):
        nodes = self.nodes("Hosted by the Acme Society")
        assert self.arc(nodes, "by") == ("Hosted", "prep")
        assert self.arc(nodes, "Society") == ("by", "pobj")
        assert self.arc(nodes, "Acme") == ("Society", "compound")

    def test_single_root(self):
        for text in ("a plain noun phrase", "run", "Jazz Night 2025"):
            nodes = self.nodes(text)
            roots = [n for n in nodes if n.head == -1]
            assert len(roots) == 1, text

    def test_empty(self):
        assert self.nodes("") == []

    def test_every_head_reaches_root(self):
        nodes = self.nodes("Join us for an evening of jazz at the Metro Hall")
        root = next(i for i, n in enumerate(nodes) if n.head == -1)
        for i in range(len(nodes)):
            seen, j = set(), i
            while j != root:
                assert j not in seen, "cycle"
                seen.add(j)
                j = nodes[j].head
                assert j != -1 or j == root

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
    def test_never_crashes(self, text):
        nodes = parse_dependencies(text)
        if nodes:
            assert sum(1 for n in nodes if n.head == -1) == 1

    def test_mining_tree_roundtrips(self):
        tree = dependency_mining_tree("The club hosted a concert")
        assert tree.labels[0].startswith("root:")
        from repro.mining.trees import decode_tree

        decode_tree(tree.encode())  # valid encoding

    def test_dependency_mining_source(self):
        entries = [
            "Hosted by the Acme Society",
            "Presented by Jordan Smith",
            "Organized by the Metro Club",
            "Hosted by Liberty Partners",
        ]
        mined = mine_entity_patterns(entries, 0.5, tree_source="dependency")
        assert mined
        assert any("pobj" in " ".join(p.encoding) for p in mined)

    def test_bad_tree_source(self):
        with pytest.raises(ValueError):
            mine_entity_patterns(["x"], tree_source="constituency")


class TestSerialization:
    def test_document_roundtrip(self, d2_corpus):
        doc = d2_corpus[0]
        back = document_from_dict(document_to_dict(doc))
        assert back.doc_id == doc.doc_id
        assert [e.text for e in back.text_elements] == [e.text for e in doc.text_elements]
        assert [e.bbox for e in back.elements] == [e.bbox for e in doc.elements]
        assert [a.entity_type for a in back.annotations] == [
            a.entity_type for a in doc.annotations
        ]

    def test_jsonl_stream_roundtrip(self, d3_corpus):
        buf = io.StringIO()
        n = save_documents(list(d3_corpus)[:3], buf)
        assert n == 3
        buf.seek(0)
        docs = load_documents(buf)
        assert len(docs) == 3
        assert docs[1].doc_id == d3_corpus[1].doc_id

    def test_pipeline_runs_on_deserialised_document(self, d2_corpus):
        """The adopter path: external JSON in, extractions out."""
        from repro.core import VS2Pipeline

        doc = document_from_dict(document_to_dict(d2_corpus[0]))
        original = VS2Pipeline("D2").run(d2_corpus[0]).as_key_values()
        roundtripped = VS2Pipeline("D2").run(doc).as_key_values()
        assert roundtripped == original

    def test_field_descriptor_preserved(self, d1_corpus):
        doc = d1_corpus[0]
        back = document_from_dict(document_to_dict(doc))
        assert back.annotations[0].field_descriptor == doc.annotations[0].field_descriptor
