"""Chunker, NER, TIMEX, geocode, hypernyms, verbnet, Lesk."""

import pytest

from repro.nlp import hypernyms, verbnet
from repro.nlp.chunker import chunk, find_svo, noun_phrases, verb_phrases
from repro.nlp.geocode import geocode, has_valid_geocode, recognize_addresses
from repro.nlp.lesk import ENTITY_GLOSSES, LeskCandidate, gloss_overlap, lesk_select
from repro.nlp.ner import entities_of, recognize_entities
from repro.nlp.timex import has_timex, recognize_timex


class TestChunker:
    def test_np_with_determiner_and_modifier(self):
        nps = noun_phrases("the grand concert")
        assert len(nps) == 1
        assert nps[0].text == "the grand concert"
        assert nps[0].has_modifier()

    def test_vp(self):
        vps = verb_phrases("they hosted a party")
        assert any(v.text == "hosted" for v in vps)

    def test_svo(self):
        triples = find_svo(chunk("The club hosted a concert"))
        assert len(triples) == 1
        assert triples[0].verb.text == "hosted"

    def test_np_head(self):
        np = noun_phrases("the big red barn")[0]
        assert np.head.text == "barn"

    def test_chunk_offsets(self):
        text = "visit the old museum"
        np = noun_phrases(text)[0]
        assert text[np.start : np.end] == np.text


class TestTimex:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("April 12, 2026", "DATE"),
            ("12 April 2026", "DATE"),
            ("04/12/2026", "DATE"),
            ("2026-04-12", "DATE"),
            ("Friday", "DATE"),
            ("7:30 pm", "TIME"),
            ("19:45", "TIME"),
            ("7 pm - 9 pm", "DURATION"),
        ],
    )
    def test_kinds(self, text, kind):
        spans = recognize_timex(text)
        assert spans, text
        assert spans[0].timex_type == kind

    def test_normalized_date(self):
        t = recognize_timex("April 12, 2026")[0]
        assert t.value == "2026-04-12"

    def test_normalized_time_pm(self):
        t = recognize_timex("7:30 pm")[0]
        assert t.value == "T19:30"

    def test_no_match_on_plain_text(self):
        assert not has_timex("nothing temporal here")

    def test_no_overlapping_spans(self):
        spans = recognize_timex("Friday, Mar 4, 9:15 am - 3:30 pm")
        for a in spans:
            for b in spans:
                if a is not b:
                    assert a.end <= b.start or b.end <= a.start


class TestGeocode:
    def test_full_address(self):
        g = geocode("visit 123 Maple Street, Columbus, OH 43210")
        assert g is not None and g.confidence >= 0.9

    def test_street_only(self):
        assert has_valid_geocode("456 Oak Avenue")

    def test_city_state_zip_without_street(self):
        matches = recognize_addresses("Columbus, OH 43210")
        assert matches and matches[0].is_valid

    def test_rejects_plain_text(self):
        assert geocode("call now for details") is None

    def test_rejects_bare_number(self):
        assert geocode("we sold 1500 units") is None


class TestNer:
    def test_person_from_gazetteer(self):
        found = entities_of("hosted by Sarah Johnson", ["PERSON"])
        assert any(e.text == "Sarah Johnson" for e in found)

    def test_organization_suffix(self):
        found = entities_of("the Acme Arts Foundation presents", ["ORGANIZATION"])
        assert any("Foundation" in e.text for e in found)

    def test_phone(self):
        found = entities_of("call (614) 555-0199 now", ["PHONE"])
        assert found and found[0].text == "(614) 555-0199"

    def test_email(self):
        found = entities_of("write to jo.smith@example.com", ["EMAIL"])
        assert found

    def test_money(self):
        assert entities_of("priced at $450,000", ["MONEY"])

    def test_title_case_noise_produces_candidates(self):
        """Fig. 3: capitalised runs yield low-confidence Person FPs."""
        found = recognize_entities("Maple Street Parking Available")
        assert found  # over-triggering is the documented behaviour

    def test_spans_non_overlapping(self):
        text = "Dr. Emma Reed of Acme Realty LLC, call 614-555-0100 or e@a.com"
        spans = recognize_entities(text)
        for a in spans:
            for b in spans:
                if a is not b:
                    assert a.end <= b.start or b.end <= a.start


class TestHypernyms:
    def test_measure_chain(self):
        assert "measure" in hypernyms.hypernym_chain("acres")

    def test_structure(self):
        assert hypernyms.has_sense("bedrooms", "structure")

    def test_estate(self):
        assert hypernyms.has_sense("property", "estate")

    def test_alias(self):
        assert hypernyms.has_sense("sqft", "measure")

    def test_unknown_word_empty(self):
        assert hypernyms.hypernym_chain("zxqv") == []

    def test_chain_terminates_at_entity(self):
        for w in sorted(hypernyms.known_words()):
            chain = hypernyms.hypernym_chain(w)
            assert chain[-1] == "entity"

    def test_any_has_sense(self):
        assert hypernyms.any_has_sense(["random", "acres"], ["measure"])
        assert not hypernyms.any_has_sense(["random"], ["measure"])


class TestVerbnet:
    def test_organizer_senses(self):
        assert "captain" in verbnet.verb_senses("hosted")
        assert "reflexive_appearance" in verbnet.verb_senses("presented")
        assert "create" in verbnet.verb_senses("founded")

    def test_unknown_verb(self):
        assert verbnet.verb_senses("zxqv") == []

    def test_has_sense_unknown_class_raises(self):
        with pytest.raises(KeyError):
            verbnet.has_sense("host", "flying")

    def test_any_has_sense(self):
        assert verbnet.any_has_sense(["walked", "organized"], verbnet.ORGANIZER_SENSES)


class TestLesk:
    def test_gloss_overlap_counts_shared_content_words(self):
        assert gloss_overlap("the broker phone number", "phone call number") == 2

    def test_select_prefers_matching_context(self):
        candidates = [
            LeskCandidate("John Smith", "Join us for an evening of jazz"),
            LeskCandidate("Jane Doe", "hosted by Jane Doe and sponsors"),
        ]
        assert lesk_select(candidates, "event_organizer") == 1

    def test_select_empty_raises(self):
        with pytest.raises(ValueError):
            lesk_select([], "event_title")

    def test_all_datasets_have_glosses(self):
        from repro.synth.corpus import entity_vocabulary

        for ds in ("D2", "D3"):
            for entity in entity_vocabulary(ds):
                assert entity in ENTITY_GLOSSES
