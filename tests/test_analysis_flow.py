"""Unit tests for the flow engine itself: the CFG builder
(repro.analysis.cfg), the generic worklist solver
(repro.analysis.dataflow), and the per-function FlowSummary facts
(repro.analysis.flow) — independent of the passes built on top
(those are covered in tests/test_analysis_passes.py).
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import cfg as cfgmod
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    TOP,
    IntersectLattice,
    MapLattice,
    UnionLattice,
    solve_backward,
    solve_forward,
)
from repro.analysis.index import summarize_module
from repro.analysis.lint.engine import ModuleInfo


def fn_cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def stmt_node(cfg: CFG, stmt_type, *, calling: str = None):
    """The unique stmt node of the given AST type (optionally the one
    whose statement calls the named function)."""
    hits = []
    for node in cfg.stmt_nodes():
        if not isinstance(node.stmt, stmt_type):
            continue
        if calling is not None and f"id='{calling}'" not in ast.dump(node.stmt):
            continue
        hits.append(node)
    assert len(hits) == 1, hits
    return hits[0]


class TestCFGBuilder:
    def test_linear_body_chains_entry_to_exit(self):
        cfg = fn_cfg(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        assert len(cfg.stmt_nodes()) == 2
        assert cfg.exit in cfg.reachable_from(cfg.entry)
        assert cfg.raise_exit not in cfg.reachable_from(cfg.entry)

    def test_if_diamond_reconverges(self):
        cfg = fn_cfg(
            """
            def f(x):
                if x:
                    a()
                else:
                    b()
                c()
            """
        )
        for name in ("a", "b"):
            branch = stmt_node(cfg, ast.Expr, calling=name)
            assert stmt_node(cfg, ast.Expr, calling="c").id in cfg.reachable_from(
                branch.id
            )

    def test_loop_has_back_edge_and_after_join(self):
        cfg = fn_cfg(
            """
            def f(items):
                for item in items:
                    work(item)
                done()
            """
        )
        head = stmt_node(cfg, ast.For)
        body = stmt_node(cfg, ast.Expr, calling="work")
        assert head.id in cfg.reachable_from(body.id)  # back edge
        assert stmt_node(cfg, ast.Expr, calling="done").id in cfg.reachable_from(
            head.id
        )

    def test_return_routes_through_finally(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    return 1
                finally:
                    cleanup()
            """
        )
        ret = stmt_node(cfg, ast.Return)
        cleanup = stmt_node(cfg, ast.Expr, calling="cleanup")
        assert cfg.exit not in ret.succs  # no shortcut around the finally
        assert cleanup.id in cfg.reachable_from(ret.id)
        assert cfg.exit in cfg.reachable_from(cleanup.id)

    def test_raise_edges_to_matching_handler(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    raise ValueError("x")
                except ValueError:
                    handle()
            """
        )
        raise_node = stmt_node(cfg, ast.Raise)
        (guard,) = cfg.handlers
        assert guard.types == ["ValueError"] and not guard.broad
        assert guard.entry in raise_node.succs
        handler = stmt_node(cfg, ast.Expr, calling="handle")
        assert handler.id in cfg.reachable_from(raise_node.id)

    def test_unguarded_raise_reaches_only_raise_exit(self):
        cfg = fn_cfg(
            """
            def f():
                raise RuntimeError("boom")
            """
        )
        raise_node = stmt_node(cfg, ast.Raise)
        assert cfg.raise_exit in cfg.reachable_from(raise_node.id)
        assert cfg.exit not in cfg.reachable_from(cfg.entry)

    def test_guard_map_is_innermost_first(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    try:
                        work()
                    except ValueError:
                        pass
                except Exception:
                    pass
            """
        )
        node = stmt_node(cfg, ast.Expr, calling="work")
        inner, outer = cfg.guards[node.id]
        assert inner.types == ["ValueError"] and not inner.broad
        assert outer.broad

    def test_handler_reraise_detection(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    work()
                except ValueError as err:
                    raise
                except KeyError as err:
                    raise err
                except TypeError as err:
                    raise Wrapped("ctx") from err
            """
        )
        bare, bound, wrapped = cfg.handlers
        assert bare.reraises and bound.reraises
        assert not wrapped.reraises  # raising a *new* type absorbs the old

    def test_build_count_increments(self):
        before = cfgmod.BUILD_COUNT
        fn_cfg("def f():\n    pass\n")
        assert cfgmod.BUILD_COUNT == before + 1


def diamond():
    """entry -> a | b -> join -> exit, the smallest interesting shape."""
    cfg = CFG()
    cfg.entry = cfg.add_node("entry")
    cfg.exit = cfg.add_node("exit")
    cfg.raise_exit = cfg.add_node("raise-exit")
    a = cfg.add_node("join")
    b = cfg.add_node("join")
    join = cfg.add_node("join")
    cfg.add_edge(cfg.entry, a)
    cfg.add_edge(cfg.entry, b)
    cfg.add_edge(a, join)
    cfg.add_edge(b, join)
    cfg.add_edge(join, cfg.exit)
    return cfg, a, b, join


class TestSolver:
    def test_forward_union_joins_both_branches(self):
        cfg, a, b, join = diamond()
        labels = {a: "from-a", b: "from-b"}

        def transfer(node, fact):
            extra = labels.get(node)
            return fact | {extra} if extra else fact

        facts = solve_forward(cfg, UnionLattice(), transfer, frozenset())
        assert facts[join] == {"from-a", "from-b"}

    def test_transfers_run_even_when_entry_fact_is_bottom(self):
        """Regression: with entry_fact == bottom (an empty alias map),
        the join at the first successor produces no *change*, so a
        change-only worklist would never run any transfer and the
        whole analysis silently computed nothing."""
        cfg, a, b, join = diamond()

        def transfer(node, fact):
            if node == a:
                return {**fact, "cache": "_CACHE"}
            return fact

        facts = solve_forward(cfg, MapLattice(), transfer, {})
        assert facts[join] == {"cache": "_CACHE"}

    def test_map_lattice_drops_conflicting_keys(self):
        cfg, a, b, join = diamond()
        binding = {a: "_CACHE", b: "_OTHER"}

        def transfer(node, fact):
            if node in binding:
                return {**fact, "x": binding[node]}
            return fact

        facts = solve_forward(cfg, MapLattice(), transfer, {})
        assert "x" not in facts[join]  # branches disagree -> unknown

    def test_intersect_lattice_is_a_must_analysis(self):
        cfg, a, b, join = diamond()

        def transfer(node, fact):
            acquired = fact if fact != TOP else frozenset()
            if node == a:
                return acquired | {"closed"}
            return acquired

        facts = solve_forward(
            cfg, IntersectLattice(), transfer, frozenset({"held"})
        )
        # "closed" holds on the a-branch only, so not at the join;
        # "held" holds on every path.
        assert facts[join] == {"held"}
        lattice = IntersectLattice()
        assert lattice.join(TOP, frozenset({"x"})) == {"x"}

    def test_backward_propagates_against_edges(self):
        cfg = CFG()
        cfg.entry = cfg.add_node("entry")
        cfg.exit = cfg.add_node("exit")
        cfg.raise_exit = cfg.add_node("raise-exit")
        mid = cfg.add_node("join")
        cfg.add_edge(cfg.entry, mid)
        cfg.add_edge(mid, cfg.exit)
        facts = solve_backward(
            cfg, UnionLattice(), lambda node, fact: fact, frozenset({"live"})
        )
        assert facts[mid] == {"live"}
        assert facts[cfg.entry] == {"live"}
        assert facts[cfg.raise_exit] == frozenset()  # raise exit not seeded


def flow_of(tmp_path: Path, rel: str, source: str, qualname: str):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    source = textwrap.dedent(source)
    path.write_text(source)
    summary = summarize_module(ModuleInfo(path, source, rel))
    return summary.functions[qualname].flow


class TestFlowSummary:
    def test_alias_write_to_module_state(self, tmp_path):
        flow = flow_of(
            tmp_path,
            "repro/core/mod.py",
            """
            _CACHE = {}

            def warm(config):
                cache = _CACHE
                cache.update(config)
            """,
            "warm",
        )
        assert any(name == "_CACHE" for name, _line, _how in flow.global_writes)

    def test_guarded_call_absorbs_named_type(self, tmp_path):
        flow = flow_of(
            tmp_path,
            "repro/core/mod.py",
            """
            def safe(region):
                try:
                    return risky(region)
                except ValueError:
                    return None
            """,
            "safe",
        )
        assert any("ValueError" in types for _line, types in flow.guarded_calls)
        assert not flow.raises

    def test_leak_on_early_return_path_only(self, tmp_path):
        flow = flow_of(
            tmp_path,
            "repro/harness/mod.py",
            """
            def leaky(path, rows):
                fh = open(path, "w")
                if not rows:
                    return 0
                fh.write(str(rows))
                fh.close()
                return len(rows)
            """,
            "leaky",
        )
        assert flow.leaks
        clean = flow_of(
            tmp_path,
            "repro/harness/ok.py",
            """
            def fine(path, rows):
                with open(path, "w") as fh:
                    fh.write(str(rows))
                return len(rows)
            """,
            "fine",
        )
        assert clean is None or not clean.leaks

    def test_use_after_definite_release(self, tmp_path):
        flow = flow_of(
            tmp_path,
            "repro/harness/mod.py",
            """
            def tail(path, line):
                fh = open(path, "a")
                fh.close()
                fh.write(line)
            """,
            "tail",
        )
        assert any(var == "fh" for _line, var, _kind in flow.use_after_release)

    def test_summary_round_trips_through_dict(self, tmp_path):
        flow = flow_of(
            tmp_path,
            "repro/core/mod.py",
            """
            _STATE = {}

            def churn(path):
                _STATE["k"] = path
                fh = open(path)
                return fh.read()
            """,
            "churn",
        )
        rebuilt = type(flow).from_dict(flow.to_dict())
        assert rebuilt.to_dict() == flow.to_dict()
