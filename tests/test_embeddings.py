"""Word embeddings (Word2Vec stand-in) and the trainable SVD path."""

import numpy as np
import pytest

from repro.embeddings import (
    HashEmbedding,
    TopicEmbedding,
    WordEmbedding,
    cosine_similarity,
    default_embedding,
    train_svd_embedding,
)


class TestCosine:
    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)


class TestHashEmbedding:
    def test_deterministic(self):
        e = HashEmbedding()
        assert np.allclose(e.embed("concert"), HashEmbedding().embed("concert"))

    def test_case_insensitive(self):
        e = HashEmbedding()
        assert np.allclose(e.embed("Concert"), e.embed("concert"))

    def test_ocr_noise_robustness(self):
        """Single-character corruption keeps the word near its original —
        the property semantic merging needs on noisy transcriptions."""
        e = HashEmbedding()
        noisy = cosine_similarity(e.embed("refreshments"), e.embed("refre5hments"))
        unrelated = cosine_similarity(e.embed("refreshments"), e.embed("mortgage"))
        assert noisy > 0.5
        assert noisy > unrelated + 0.3

    def test_unit_norm(self):
        assert np.linalg.norm(HashEmbedding().embed("hello")) == pytest.approx(1.0)

    def test_bad_ngram_range(self):
        with pytest.raises(ValueError):
            HashEmbedding(n_min=3, n_max=2)


class TestTopicEmbedding:
    def test_same_topic_words_aligned(self):
        t = TopicEmbedding()
        assert cosine_similarity(t.embed("concert"), t.embed("festival")) == pytest.approx(1.0)

    def test_different_topics_unaligned(self):
        t = TopicEmbedding()
        sim = cosine_similarity(t.embed("concert"), t.embed("bathroom"))
        assert abs(sim) < 0.5

    def test_unknown_word_gets_weak_prose_component(self):
        t = TopicEmbedding()
        vec = t.embed("zxqwv")
        assert 0 < float(abs(vec).sum()) and float((vec ** 2).sum()) < 0.5

    def test_numeric_token_zero(self):
        assert not TopicEmbedding().embed("1234").any()

    def test_topics_of(self):
        assert "event" in TopicEmbedding().topics_of("concert")


class TestWordEmbedding:
    def test_bad_weight(self):
        with pytest.raises(ValueError):
            WordEmbedding(topic_weight=2.0)

    def test_topical_similarity_dominates(self):
        e = WordEmbedding()
        same_field = e.similarity("concert", "festival")
        cross_field = e.similarity("concert", "bathroom")
        assert same_field > cross_field + 0.3

    def test_embed_text_empty(self):
        assert not WordEmbedding().embed_text("").any()

    def test_embed_text_repairs_ocr(self):
        e = WordEmbedding()
        sim = cosine_similarity(
            e.embed_text("Li9ht reFre5hments"), e.embed_text("Light refreshments")
        )
        assert sim > 0.9

    def test_embed_text_drops_stopwords(self):
        e = WordEmbedding()
        sim = cosine_similarity(
            e.embed_text("the concert of the year"), e.embed_text("concert year")
        )
        assert sim > 0.95

    def test_default_embedding_is_shared(self):
        assert default_embedding() is default_embedding()


class TestSvdEmbedding:
    def corpus(self):
        return [
            "the concert starts at eight tonight",
            "a festival with live music and food",
            "the concert features live music",
            "festival tickets are on sale now",
            "concert tickets available at the door",
            "the festival hosts a concert stage",
        ] * 4

    def test_training_shapes(self):
        emb = train_svd_embedding(self.corpus(), dim=8, min_count=2)
        assert emb.dim <= 8
        assert "concert" in emb

    def test_oov_is_zero(self):
        emb = train_svd_embedding(self.corpus(), dim=8, min_count=2)
        assert not emb.embed("zxqwv").any()

    def test_cooccurring_words_related(self):
        emb = train_svd_embedding(self.corpus(), dim=8, min_count=2)
        related = emb.similarity("concert", "festival")
        assert "concert" in emb and "festival" in emb
        assert related > -0.2  # co-occurring words never strongly opposed

    def test_most_similar_excludes_self(self):
        emb = train_svd_embedding(self.corpus(), dim=8, min_count=2)
        assert "concert" not in emb.most_similar("concert", k=3)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            train_svd_embedding(["one"], dim=4, min_count=5)

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            train_svd_embedding(self.corpus(), dim=0)
