"""End-to-end pipeline and evaluation metrics."""

import pytest

from repro.core import VS2Config, VS2Pipeline
from repro.core.config import SelectConfig
from repro.core.select import Extraction
from repro.doc import Annotation, Document
from repro.eval.metrics import (
    PRF,
    end_to_end_scores,
    f1_score,
    match_extractions,
    per_document_f1,
    segmentation_scores,
)
from repro.eval.significance import paired_t_test
from repro.geometry import BBox


class TestPRF:
    def test_zero_division_safe(self):
        prf = PRF()
        assert prf.precision == 0.0 and prf.recall == 0.0 and prf.f1 == 0.0

    def test_values(self):
        prf = PRF(tp=8, fp=2, fn=2)
        assert prf.precision == 0.8 and prf.recall == 0.8
        assert prf.f1 == pytest.approx(0.8)

    def test_f1_score_fn(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.0, 1.0) == 0.0


class TestSegmentationScores:
    def gt(self, *boxes):
        return [Annotation("e", "x", b) for b in boxes]

    def test_perfect(self):
        boxes = [BBox(0, 0, 10, 10), BBox(50, 50, 10, 10)]
        prf = segmentation_scores(boxes, self.gt(*boxes))
        assert (prf.tp, prf.fp, prf.fn) == (2, 0, 0)

    def test_one_to_one_matching(self):
        """Two proposals over one GT box: only one may count."""
        boxes = [BBox(0, 0, 10, 10), BBox(0, 0, 10, 10)]
        prf = segmentation_scores(boxes, self.gt(BBox(0, 0, 10, 10)))
        assert (prf.tp, prf.fp, prf.fn) == (1, 1, 0)

    def test_below_threshold_not_matched(self):
        prf = segmentation_scores([BBox(0, 0, 10, 10)], self.gt(BBox(5, 0, 10, 10)))
        assert prf.tp == 0

    def test_empty_cases(self):
        assert segmentation_scores([], self.gt(BBox(0, 0, 1, 1))).fn == 1
        assert segmentation_scores([BBox(0, 0, 1, 1)], []).fp == 1


class TestMatchExtractions:
    def test_label_and_box_must_match(self):
        gt = [Annotation("a", "x", BBox(0, 0, 10, 10))]
        right = [Extraction("a", "x", BBox(0, 0, 10, 10), BBox(0, 0, 10, 10), 1.0)]
        wrong_label = [Extraction("b", "x", BBox(0, 0, 10, 10), BBox(0, 0, 10, 10), 1.0)]
        assert match_extractions(right, gt)["a"].tp == 1
        scores = match_extractions(wrong_label, gt)
        assert scores["b"].fp == 1 and scores["a"].fn == 1

    def test_span_box_can_satisfy_localisation(self):
        gt = [Annotation("a", "x", BBox(0, 0, 10, 10))]
        ext = [Extraction("a", "x", BBox(0, 0, 500, 500), BBox(0, 0, 10, 10), 1.0)]
        assert match_extractions(ext, gt)["a"].tp == 1

    def test_annotation_matched_once(self):
        gt = [Annotation("a", "x", BBox(0, 0, 10, 10))]
        ext = [
            Extraction("a", "1", BBox(0, 0, 10, 10), BBox(0, 0, 10, 10), 1.0),
            Extraction("a", "2", BBox(0, 0, 10, 10), BBox(0, 0, 10, 10), 1.0),
        ]
        scores = match_extractions(ext, gt)
        assert scores["a"].tp == 1 and scores["a"].fp == 1


class TestSignificance:
    def test_clear_difference_significant(self):
        a = [0.9, 0.92, 0.88, 0.91, 0.9, 0.93, 0.89, 0.9]
        b = [0.5, 0.55, 0.52, 0.51, 0.5, 0.56, 0.53, 0.5]
        result = paired_t_test(a, b)
        assert result.significant()
        assert result.mean_difference > 0.3

    def test_identical_series_not_significant(self):
        a = [0.5] * 5
        assert not paired_t_test(a, a).significant()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_short(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [0.5])


class TestPipeline:
    @pytest.mark.parametrize(
        "fixture,dataset,min_f1",
        [("d1_corpus", "D1", 0.85), ("d2_corpus", "D2", 0.70), ("d3_corpus", "D3", 0.85)],
    )
    def test_end_to_end_quality(self, request, fixture, dataset, min_f1):
        corpus = request.getfixturevalue(fixture)
        pipeline = VS2Pipeline(dataset, ocr_engine=None)
        results = [(pipeline.run(doc).extractions, doc) for doc in corpus]
        overall, per_entity = end_to_end_scores(results)
        assert overall.f1 >= min_f1, (overall, per_entity)

    def test_result_structure(self, d2_corpus):
        pipeline = VS2Pipeline("D2")
        result = pipeline.run(d2_corpus[0])
        assert result.doc_id == d2_corpus[0].doc_id
        assert result.blocks
        assert result.tree.height >= 1
        kv = result.as_key_values()
        assert set(kv) <= {
            "event_title", "event_place", "event_time", "event_organizer", "event_description",
        }

    def test_pipeline_never_reads_ground_truth(self, d2_corpus):
        doc = d2_corpus[0]
        stripped = Document(
            doc_id=doc.doc_id, width=doc.width, height=doc.height,
            elements=doc.elements, annotations=[], source=doc.source,
            dataset=doc.dataset, html=doc.html, metadata=doc.metadata,
        )
        a = VS2Pipeline("D2").run(doc).as_key_values()
        b = VS2Pipeline("D2").run(stripped).as_key_values()
        assert a == b

    def test_multimodal_beats_first_match_on_d2(self, d2_corpus):
        full = VS2Pipeline("D2")
        cfg = VS2Config()
        cfg.select = SelectConfig(disambiguation="none")
        ablated = VS2Pipeline("D2", cfg)
        f_full = end_to_end_scores([(full.run(d).extractions, d) for d in d2_corpus])[0]
        f_abl = end_to_end_scores([(ablated.run(d).extractions, d) for d in d2_corpus])[0]
        assert f_full.f1 >= f_abl.f1

    def test_per_document_f1_series(self, d3_corpus):
        pipeline = VS2Pipeline("D3")
        series = per_document_f1([(pipeline.run(d).extractions, d) for d in d3_corpus])
        assert len(series) == len(d3_corpus)
        assert all(0.0 <= v <= 1.0 for v in series)
