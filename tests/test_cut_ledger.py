"""The ``cut.decision`` ledger: canonical serialisation, diffing, and
the fast-vs-naive equivalence oracle on a real (tiny) pipeline run."""

from __future__ import annotations

import json

from repro.core.config import VS2Config
from repro.core.pipeline import VS2Pipeline
from repro.perf.cache import TranscriptionCache
from repro.synth import generate_corpus
from repro.trace import Tracer, cut_ledger, ledger_diff, ledger_lines


def _traced_decisions() -> Tracer:
    tracer = Tracer()
    with tracer.span("doc", index=0, doc_id="X-0"):
        with tracer.span("segment"):
            tracer.event(
                "cut.decision",
                orientation="horizontal",
                position=12.5,
                accepted=True,
                reason="delimiter",
            )
            tracer.event("merge.decision", merged=True)  # not a cut event
            tracer.event(
                "cut.decision",
                orientation="vertical",
                position=40.0,
                accepted=False,
                reason="below_floor",
            )
    return tracer


def test_cut_ledger_extracts_only_cut_decisions():
    roots = _traced_decisions().drain()
    ledger = cut_ledger(roots)
    assert len(ledger) == 2
    paths = [path for path, _ in ledger]
    assert paths == ["doc[0]/segment", "doc[0]/segment"]
    assert ledger[0][1]["reason"] == "delimiter"
    assert ledger[1][1]["reason"] == "below_floor"


def test_ledger_lines_are_canonical_json():
    lines = ledger_lines(_traced_decisions().drain())
    assert len(lines) == 2
    for line in lines:
        row = json.loads(line)
        assert row["span"] == "doc[0]/segment"
        # Canonical form: keys sorted, so equal decisions serialise to
        # equal bytes regardless of attribute insertion order.
        assert line == json.dumps(row, sort_keys=True)


def test_ledger_diff_empty_on_identical_and_names_divergence():
    lines = ledger_lines(_traced_decisions().drain())
    assert ledger_diff(lines, list(lines)) == []
    changed = list(lines)
    changed[1] = changed[1].replace("below_floor", "delimiter")
    diff = ledger_diff(lines, changed, "naive", "fast")
    assert diff, "a changed decision must produce a non-empty diff"
    assert diff[0].startswith("--- naive")
    assert any(line.startswith("+") and "delimiter" in line for line in diff)


def test_fast_and_naive_ledgers_identical_on_small_corpus():
    """The acceptance gate in miniature: two docs of D2 segmented with
    the prefix-sum fast path and the naive rescan (sharing one
    transcription cache, so both see identical observed documents) must
    make byte-identical cut decisions."""
    corpus = generate_corpus("D2", n=2, seed=0)
    cache = TranscriptionCache()
    ledgers = {}
    for fast in (True, False):
        config = VS2Config.for_dataset("D2")
        config.segment.fast_cuts = fast
        tracer = Tracer()
        pipeline = VS2Pipeline("D2", config=config, cache=cache, tracer=tracer)
        for i, doc in enumerate(corpus):
            with tracer.span("doc", index=i, doc_id=doc.doc_id):
                pipeline.run(doc)
        ledgers[fast] = ledger_lines(tracer.drain())
    assert ledgers[True], "no cut.decision events traced"
    diff = ledger_diff(ledgers[False], ledgers[True], "naive-cuts", "fast-cuts")
    assert not diff, "fast and naive cut decisions diverge:\n" + "\n".join(diff[:20])
