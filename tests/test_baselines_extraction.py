"""Extraction baselines (Table 7 competitors + the text-only baseline)."""

import pytest

from repro.baselines.extraction import (
    ApostolovaExtractor,
    ClausIEExtractor,
    FsmExtractor,
    MlBasedExtractor,
    ReportMinerExtractor,
    TextOnlyExtractor,
)
from repro.baselines.extraction.base import (
    descriptor_extractions,
    find_descriptor_span,
    identify_face_from_text,
    sentence_units,
)
from repro.doc import TextElement
from repro.eval.metrics import end_to_end_scores
from repro.geometry import BBox


def run(extractor, cleaned, only=None):
    results = []
    for original, observed, angle in cleaned:
        if only and original.source != only:
            continue
        from repro.core.select import Extraction
        from repro.ocr import rotate_back

        exts = [
            Extraction(
                e.entity_type, e.text,
                rotate_back(e.bbox, angle, observed),
                rotate_back(e.span_bbox, angle, observed),
                e.score,
            )
            for e in extractor.extract(observed)
        ]
        results.append((exts, original))
    return end_to_end_scores(results)[0]


class TestSentenceUnits:
    def test_units_have_words_and_boxes(self, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        units = sentence_units(observed)
        assert units
        for u in units:
            assert u.words and u.bbox.area > 0

    def test_span_bbox_maps_characters_to_words(self):
        from repro.baselines.extraction.base import TextUnit

        unit = TextUnit([
            TextElement("alpha", BBox(0, 0, 50, 10)),
            TextElement("beta", BBox(60, 0, 40, 10)),
        ])
        assert unit.text == "alpha beta"
        span = unit.span_bbox(6, 10)  # "beta"
        assert span == BBox(60, 0, 40, 10)


class TestDescriptorMatching:
    def test_find_descriptor_span_noisy(self):
        words = [
            TextElement("12", BBox(0, 0, 10, 10)),
            TextElement("Busine5s", BBox(12, 0, 50, 10)),
            TextElement("income", BBox(64, 0, 40, 10)),
            TextElement("48,250", BBox(110, 0, 40, 10)),
        ]
        span = find_descriptor_span(words, "12 Business income")
        assert span is not None
        start, end, ratio = span
        assert (start, end) == (0, 3)
        assert ratio > 0.8

    def test_face_identified_from_title(self, d1_cleaned):
        original, observed, _ = d1_cleaned[0]
        face = identify_face_from_text(observed)
        assert face is not None
        assert face.face_id == original.metadata["face"]

    def test_descriptor_extractions_quality(self, d1_cleaned):
        original, observed, _ = d1_cleaned[0]
        extractions = descriptor_extractions(observed, sentence_units(observed))
        assert len(extractions) >= 0.6 * len(original.annotations)


class TestTextOnly:
    def test_d2_extracts_most_entities(self, d2_cleaned):
        prf = run(TextOnlyExtractor("D2"), d2_cleaned)
        assert prf.f1 > 0.5

    def test_d1_descriptor_path(self, d1_cleaned):
        prf = run(TextOnlyExtractor("D1"), d1_cleaned)
        assert prf.f1 > 0.8


class TestClausIE:
    def test_rejects_d1(self):
        with pytest.raises(ValueError):
            ClausIEExtractor("D1")

    def test_runs_on_d3(self, d3_cleaned):
        prf = run(ClausIEExtractor("D3"), d3_cleaned)
        assert prf.tp > 0  # functional, but clearly below VS2 (Table 7)


class TestFsm:
    def test_d1_descriptor_mode(self, d1_cleaned):
        prf = run(FsmExtractor("D1"), d1_cleaned)
        assert prf.f1 > 0.75

    def test_d2_mined_patterns_loaded(self):
        fsm = FsmExtractor("D2", max_holdout_entries=12)
        assert set(fsm.patterns) == {
            "event_title", "event_time", "event_place", "event_organizer", "event_description",
        }


class TestTrainedBaselines:
    def test_ml_based_rejects_d1(self):
        with pytest.raises(ValueError):
            MlBasedExtractor("D1")

    def test_ml_based_d3(self, d3_corpus, d3_cleaned):
        ml = MlBasedExtractor("D3")
        ml.fit(list(d3_corpus)[:5])
        prf = run(ml, d3_cleaned[5:])
        assert prf.f1 > 0.5

    def test_ml_based_requires_fit(self, d3_cleaned):
        with pytest.raises(RuntimeError):
            MlBasedExtractor("D3").extract(d3_cleaned[0][1])

    def test_apostolova_d2(self, d2_corpus, d2_cleaned):
        ap = ApostolovaExtractor("D2")
        ap.fit(list(d2_corpus)[:5])
        prf = run(ap, d2_cleaned[5:])
        assert prf.tp > 0

    def test_apostolova_d1_prototypes(self, d1_corpus, d1_cleaned):
        ap = ApostolovaExtractor("D1")
        ap.fit(list(d1_corpus)[:4])
        # extraction works only for faces seen in training
        seen = {d.metadata["face"] for d in list(d1_corpus)[:4]}
        for original, observed, angle in d1_cleaned:
            exts = ap.extract(observed)
            if original.metadata["face"] in seen:
                assert exts

    def test_reportminer_d1_same_face(self, d1_corpus, d1_cleaned):
        rm = ReportMinerExtractor("D1")
        rm.fit(list(d1_corpus))
        prf = run(rm, d1_cleaned)
        assert prf.f1 > 0.7  # trained on the very faces it sees

    def test_reportminer_requires_annotations(self):
        from repro.doc import Document

        with pytest.raises(ValueError):
            ReportMinerExtractor("D2").fit([Document("x", 10, 10)])
