"""HTML substrate: DOM, parser round-trip, web wrapper."""

import pytest
from hypothesis import given, strategies as st

from repro.html import HtmlNode, WrapperRule, el, extract_records, parse_html, text_of
from repro.html.parser import HtmlParseError


class TestDom:
    def test_el_builder(self):
        node = el("div", "hello", class_="row")
        assert node.tag == "div"
        assert node.attrs["class"] == "row"

    def test_find_all_by_class(self):
        root = el("div", el("p", "a", class_="x"), el("p", "b", class_="x"), el("p", "c"))
        assert len(root.find_all("p", "x")) == 2

    def test_text_block_separation(self):
        root = el("div", el("p", "one"), el("p", "two"))
        assert root.text() == "one\ntwo"

    def test_text_inline_concatenation(self):
        root = el("p", "a ", el("span", "b"))
        assert "a" in root.text() and "b" in root.text()

    def test_text_of_none(self):
        assert text_of(None) == ""

    def test_serialisation_escapes(self):
        node = el("p", "a < b & c")
        assert "&lt;" in node.to_html() and "&amp;" in node.to_html()


class TestParser:
    def test_simple(self):
        root = parse_html("<div><p>hi</p></div>")
        assert root.tag == "div"
        assert root.find("p").text() == "hi"

    def test_attributes(self):
        root = parse_html('<div class="row" id="x">t</div>')
        assert root.attrs == {"class": "row", "id": "x"}

    def test_void_tags(self):
        root = parse_html("<div><br><img src=\"x.png\">text</div>")
        assert root.find("img") is not None

    def test_mismatched_raises(self):
        with pytest.raises(HtmlParseError):
            parse_html("<div><p>hi</div></p>")

    def test_unclosed_raises(self):
        with pytest.raises(HtmlParseError):
            parse_html("<div><p>hi")

    def test_multi_root_wrapped(self):
        root = parse_html("<p>a</p><p>b</p>")
        assert root.tag == "document"
        assert len(root.find_all("p")) == 2

    def test_roundtrip_structure(self):
        dom = el(
            "div",
            el("h2", "Title", class_="t"),
            el("ul", el("li", "one"), el("li", "two")),
            class_="card",
        )
        back = parse_html(dom.to_html())
        assert back.tag == "div"
        assert [n.text() for n in back.find_all("li")] == ["one", "two"]
        assert back.find("h2", "t").text() == "Title"

    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma 42", "x & y"]), min_size=1, max_size=5))
    def test_roundtrip_texts(self, texts):
        dom = el("div", *[el("p", t) for t in texts])
        back = parse_html(dom.to_html())
        assert [n.text() for n in back.find_all("p")] == texts


class TestWrapper:
    def page(self):
        body = el("body")
        for name, phone in (("Ann", "111"), ("Bob", "222")):
            body.append(
                el(
                    "div",
                    el("span", name, class_="name"),
                    el("span", phone, class_="phone"),
                    class_="card",
                )
            )
        return el("html", body)

    def rule(self):
        return WrapperRule(
            record_selector=("div", "card"),
            field_selectors={"name": ("span", "name"), "phone": ("span", "phone")},
        )

    def test_extracts_all_records(self):
        records = extract_records(self.page(), self.rule())
        assert records == [
            {"name": "Ann", "phone": "111"},
            {"name": "Bob", "phone": "222"},
        ]

    def test_missing_field_is_empty(self):
        page = el("html", el("div", el("span", "Ann", class_="name"), class_="card"))
        records = extract_records(page, self.rule())
        assert records == [{"name": "Ann", "phone": ""}]

    def test_roundtrip_through_serialisation(self):
        html = self.page().to_html()
        records = extract_records(parse_html(html), self.rule())
        assert len(records) == 2
