"""Rasteriser, ASCII renderer and the synthetic layout engine."""

import numpy as np
import pytest

from repro.colors import rgb_to_lab
from repro.doc import Document, ImageElement, TextElement
from repro.doc.render import ascii_render, average_color_in, rasterize
from repro.geometry import BBox
from repro.synth.layout import (
    TextStyle,
    layout_centered_line,
    layout_label_value,
    layout_line,
    layout_paragraph,
    word_width,
)


def doc_with_word():
    return Document(
        "r", 200, 100,
        elements=[TextElement("dark", BBox(20, 20, 60, 20), color=rgb_to_lab((10, 10, 10)))],
        )


class TestRasterize:
    def test_shape_and_dtype(self):
        img = rasterize(doc_with_word())
        assert img.shape == (100, 200, 3)
        assert img.dtype == np.uint8

    def test_scale(self):
        assert rasterize(doc_with_word(), scale=2.0).shape == (200, 400, 3)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            rasterize(doc_with_word(), scale=0)

    def test_background_outside_elements(self):
        img = rasterize(doc_with_word())
        assert img[5, 5].min() > 200  # near-white background

    def test_glyph_strokes_darken_word_area(self):
        img = rasterize(doc_with_word())
        region = img[20:40, 20:80]
        assert region.min() < 60  # glyph ink present

    def test_image_element_textured(self):
        doc = Document(
            "r2", 100, 100,
            elements=[ImageElement("art", BBox(10, 10, 60, 60), rgb_to_lab((80, 120, 160)))],
        )
        img = rasterize(doc)
        region = img[12:68, 12:68].reshape(-1, 3)
        assert len(np.unique(region, axis=0)) >= 2  # checker texture

    def test_average_color_in(self):
        img = rasterize(doc_with_word())
        r, g, b = average_color_in(img, BBox(20, 20, 60, 20))
        assert r < 250  # darker than the empty background
        r2, _, _ = average_color_in(img, BBox(150, 60, 40, 30))
        assert r2 > r


class TestAsciiRender:
    def test_dimensions(self):
        art = ascii_render(doc_with_word(), cols=40, rows=10)
        lines = art.split("\n")
        assert len(lines) == 10 and all(len(l) == 40 for l in lines)

    def test_word_marks(self):
        art = ascii_render(doc_with_word(), cols=40, rows=10)
        assert "#" in art

    def test_box_overlay_with_labels(self):
        art = ascii_render(
            doc_with_word(), boxes=[BBox(10, 10, 100, 40)], cols=40, rows=10,
            labels=["T"],
        )
        assert "+" in art and "T" in art


class TestLayoutEngine:
    style = TextStyle(font_size=10.0)

    def test_word_width_monotonic(self):
        assert word_width("abcdef", 10) > word_width("ab", 10)

    def test_layout_line_left_to_right(self):
        elements, box = layout_line("one two three", 5, 7, self.style)
        xs = [e.bbox.x for e in elements]
        assert xs == sorted(xs)
        assert box.y == 7

    def test_layout_paragraph_wraps(self):
        text = " ".join(["word"] * 20)
        elements, box = layout_paragraph(text, 0, 0, 120, self.style)
        rows = {round(e.bbox.y) for e in elements}
        assert len(rows) > 1
        assert all(e.bbox.x2 <= 125 for e in elements)

    def test_layout_paragraph_center(self):
        _, left_box = layout_paragraph("tiny", 0, 0, 200, self.style, align="left")
        _, center_box = layout_paragraph("tiny", 0, 0, 200, self.style, align="center")
        assert center_box.x > left_box.x

    def test_layout_paragraph_bad_width(self):
        with pytest.raises(ValueError):
            layout_paragraph("x", 0, 0, 0, self.style)

    def test_centered_line_symmetric(self):
        elements, box = layout_centered_line("middle text", 100, 0, self.style)
        mid = (box.x + box.x2) / 2
        assert mid == pytest.approx(100, abs=2)

    def test_label_value_layout(self):
        elements, row_box, value_box = layout_label_value(
            "1 Wages paid", "12,500", 0, 0, 80, self.style
        )
        assert value_box is not None
        assert value_box.x >= 80
        assert row_box.contains_bbox(value_box)

    def test_label_without_value(self):
        elements, row_box, value_box = layout_label_value(
            "2 Unfilled row", "", 0, 0, 80, self.style
        )
        assert value_box is None
        assert elements
