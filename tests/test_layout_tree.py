"""Layout tree (paper §4.2)."""

import pytest

from repro.doc import LayoutNode, LayoutTree, TextElement
from repro.geometry import BBox


def word(text, x, y, w=40, h=12, size=12.0):
    return TextElement(text, BBox(x, y, w, h), font_size=size)


def small_tree():
    root = LayoutNode(BBox(0, 0, 100, 100), kind="root")
    a = root.add_child(LayoutNode(BBox(0, 0, 100, 40), [word("top", 0, 0)], kind="cut"))
    b = root.add_child(LayoutNode(BBox(0, 50, 100, 50), kind="cut"))
    b.add_child(LayoutNode(BBox(0, 50, 40, 50), [word("left", 0, 50)], kind="cluster"))
    b.add_child(LayoutNode(BBox(60, 50, 40, 50), [word("right", 60, 50)], kind="cluster"))
    return LayoutTree(root), root, a, b


class TestStructure:
    def test_leaves(self):
        tree, root, a, b = small_tree()
        assert len(tree.leaves()) == 3

    def test_logical_blocks_exclude_empty(self):
        tree, *_ = small_tree()
        assert len(tree.logical_blocks()) == 3  # the empty b node is internal

    def test_height(self):
        tree, *_ = small_tree()
        assert tree.height == 2

    def test_depth(self):
        tree, root, a, b = small_tree()
        assert root.depth() == 0
        assert b.children[0].depth() == 2

    def test_siblings(self):
        tree, root, a, b = small_tree()
        assert a.siblings() == [b]
        assert root.siblings() == []

    def test_nodes_at_level(self):
        tree, *_ = small_tree()
        assert len(tree.nodes_at_level(1)) == 2
        assert len(tree.nodes_at_level(2)) == 2

    def test_identity_equality(self):
        x = LayoutNode(BBox(0, 0, 1, 1))
        y = LayoutNode(BBox(0, 0, 1, 1))
        assert x != y  # identity semantics, not structural

    def test_walk_preorder(self):
        tree, root, a, b = small_tree()
        order = list(tree.walk())
        assert order[0] is root and order[1] is a

    def test_node_count(self):
        tree, *_ = small_tree()
        assert tree.node_count() == 5


class TestContent:
    def test_text(self):
        tree, root, a, b = small_tree()
        assert a.text() == "top"

    def test_word_density(self):
        node = LayoutNode(BBox(0, 0, 10, 10), [word("x", 0, 0)])
        assert node.word_density() == pytest.approx(1 / 100)

    def test_mean_font_size(self):
        node = LayoutNode(
            BBox(0, 0, 100, 100), [word("a", 0, 0, size=10), word("b", 50, 0, size=30)]
        )
        assert node.mean_font_size() == 20.0

    def test_refit_bbox(self):
        node = LayoutNode(BBox(0, 0, 1000, 1000), [word("a", 10, 10)])
        node.refit_bbox()
        assert node.bbox == BBox(10, 10, 40, 12)


class TestCollapseUnary:
    def test_collapse_chain(self):
        root = LayoutNode(BBox(0, 0, 100, 100), [word("x", 0, 0)], kind="root")
        mid = root.add_child(LayoutNode(BBox(0, 0, 60, 60), [word("x", 0, 0)], kind="cut"))
        mid.add_child(LayoutNode(BBox(0, 0, 40, 40), [word("x", 0, 0)], kind="cluster"))
        tree = LayoutTree(root)
        hoists = tree.collapse_unary()
        assert hoists == 2
        assert root.is_leaf
        assert root.kind == "cluster"

    def test_noop_on_branching_tree(self):
        tree, *_ = small_tree()
        assert tree.collapse_unary() == 0


class TestValidation:
    def test_validate_nesting_ok(self):
        tree, *_ = small_tree()
        tree.validate_nesting()

    def test_validate_nesting_catches_escape(self):
        root = LayoutNode(BBox(0, 0, 10, 10))
        root.add_child(LayoutNode(BBox(50, 50, 10, 10)))
        with pytest.raises(ValueError):
            LayoutTree(root).validate_nesting()
