"""System-level invariants of the pipeline, checked over real corpora
and randomised documents (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import VS2Pipeline, VS2Segmenter
from repro.doc import Document, TextElement
from repro.geometry import BBox


class TestSegmentationInvariants:
    def test_every_atom_in_exactly_one_leaf(self, d2_cleaned):
        seg = VS2Segmenter()
        for _, observed, _ in d2_cleaned[:4]:
            tree = seg.segment(observed)
            leaf_atom_ids = [id(a) for leaf in tree.logical_blocks() for a in leaf.atoms]
            assert len(leaf_atom_ids) == len(set(leaf_atom_ids))
            assert set(leaf_atom_ids) == {id(a) for a in observed.elements}

    def test_leaf_boxes_cover_their_atoms(self, d3_cleaned):
        seg = VS2Segmenter()
        _, observed, _ = d3_cleaned[0]
        for leaf in seg.segment(observed).logical_blocks():
            frame = leaf.bbox.expand(1.0)
            for atom in leaf.atoms:
                assert frame.contains_bbox(atom.bbox)

    def test_deterministic_across_runs(self, d2_cleaned):
        _, observed, _ = d2_cleaned[0]
        a = [b.bbox for b in VS2Segmenter().segment(observed).logical_blocks()]
        b = [b.bbox for b in VS2Segmenter().segment(observed).logical_blocks()]
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=700),
                st.integers(min_value=0, max_value=900),
                st.integers(min_value=8, max_value=40),
            ),
            min_size=0,
            max_size=25,
        )
    )
    def test_never_crashes_on_random_word_clouds(self, placements):
        elements = [
            TextElement(f"w{i}", BBox(float(x), float(y), 30.0, float(h)), font_size=float(h))
            for i, (x, y, h) in enumerate(placements)
        ]
        doc = Document("fuzz", 800, 1000, elements=elements)
        tree = VS2Segmenter().segment(doc)
        tree.validate_nesting()
        leaf_atoms = sum(len(l.atoms) for l in tree.logical_blocks())
        assert leaf_atoms == len(elements)


class TestPipelineInvariants:
    def test_at_most_one_extraction_per_entity(self, d2_corpus):
        pipeline = VS2Pipeline("D2")
        for doc in d2_corpus[:4]:
            extractions = pipeline.run(doc).extractions
            types = [e.entity_type for e in extractions]
            assert len(types) == len(set(types))

    def test_extractions_lie_on_page(self, d3_corpus):
        pipeline = VS2Pipeline("D3")
        for doc in d3_corpus[:4]:
            frame = doc.page_bbox.expand(0.3 * max(doc.width, doc.height))
            for e in pipeline.run(doc).extractions:
                assert frame.intersects(e.bbox)

    def test_extraction_text_nonempty(self, d1_corpus):
        pipeline = VS2Pipeline("D1")
        for e in pipeline.run(d1_corpus[0]).extractions:
            assert e.text.strip()

    def test_deterministic_end_to_end(self, d2_corpus):
        doc = d2_corpus[0]
        a = VS2Pipeline("D2").run(doc).as_key_values()
        b = VS2Pipeline("D2").run(doc).as_key_values()
        assert a == b

    def test_empty_document(self):
        doc = Document("empty", 400, 400)
        result = VS2Pipeline("D2").run(doc)
        assert result.extractions == []
