"""The proof layer: BND1xx hazards, PROOF1xx classification, the
committed ledger, and the runtime contract-skip loop it licenses.

Fixture trees under ``tests/fixtures/analysis/`` hold the deliberately
broken code (a prefix-indexing package full of definite hazards, and a
contract site whose post-conditions are refutable); the runtime-skip
tests run against the *committed* ``proof_ledger.json`` plus mutated
copies of it, so a ledger that drifts from the source fails here before
it fails in CI.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.contracts import (
    CONTRACT_STATS,
    contracts,
    contracts_mode,
    use_proof_ledger,
)
from repro.analysis.lint import ALL_RULES
from repro.analysis.proofs import (
    HAZARD_OBLIGATION,
    PROOF_SCHEMA,
    PROVED,
    VIOLATED,
    build_ledger,
    classify_sites,
    ledger_to_json,
    load_ledger,
)
from repro.analysis.runner import check_project

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_LEDGER = REPO_ROOT / "proof_ledger.json"

MODULE_RULES = list(ALL_RULES)


def copy_fixture(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def run_tree(tree: Path, rule_ids=None):
    return check_project([tree], rule_ids=rule_ids, root=tree).violations


@pytest.fixture
def disarm_ledger():
    """Every runtime-skip test must leave the process fully armed."""
    yield
    use_proof_ledger(None)


class TestBoundsPass:
    def test_definite_hazards_reported(self, tmp_path):
        tree = copy_fixture(tmp_path, "bounds_hazard")
        violations = run_tree(tree)
        assert [(v.rule, v.line) for v in violations] == [
            ("BND101", 13),
            ("BND102", 19),
            ("BND103", 24),
        ]
        assert all(v.path == "repro/geometry/prefix.py" for v in violations)
        by_rule = {v.rule: v.message for v in violations}
        assert "out of bounds on every execution" in by_rule["BND101"]
        assert "reduceat" in by_rule["BND102"]
        assert "negative" in by_rule["BND103"]

    def test_module_rules_alone_cannot_see_it(self, tmp_path):
        tree = copy_fixture(tmp_path, "bounds_hazard")
        assert run_tree(tree, rule_ids=MODULE_RULES) == []

    def test_noqa_suppresses_one_hazard_line(self, tmp_path):
        tree = copy_fixture(tmp_path, "bounds_hazard")
        prefix = tree / "repro" / "geometry" / "prefix.py"
        prefix.write_text(
            prefix.read_text().replace(
                "return row_prefix[n]", "return row_prefix[n]  # noqa: BND101"
            )
        )
        assert [v.rule for v in run_tree(tree)] == ["BND102", "BND103"]

    def test_in_range_indexing_is_clean(self, tmp_path):
        tree = copy_fixture(tmp_path, "bounds_hazard")
        prefix = tree / "repro" / "geometry" / "prefix.py"
        prefix.write_text(
            "def last_prefix(row_prefix):\n"
            "    n = len(row_prefix)\n"
            "    return row_prefix[n - 1]\n"
        )
        assert run_tree(tree) == []


class TestProofPass:
    def test_violated_obligations_with_interprocedural_chain(self, tmp_path):
        tree = copy_fixture(tmp_path, "proofs_violation")
        violations = run_tree(tree)
        proof = [v for v in violations if v.rule == "PROOF101"]
        assert len(proof) == 2
        assert all(v.line == 24 and v.path == "repro/optimize/front.py" for v in proof)
        messages = "\n".join(v.message for v in proof)
        assert "'front-indices-in-range' is VIOLATED" in messages
        # The hazard obligation names the witness chain back to the site.
        assert f"'{HAZARD_OBLIGATION}' is VIOLATED" in messages
        assert "offsets <- stamp <- bad_front" in messages
        # The underlying hazard is reported at its own site too.
        assert ("BND101", 16) in [(v.rule, v.line) for v in violations]

    def test_proof_assumed_pragma_never_masks_violated(self, tmp_path):
        tree = copy_fixture(tmp_path, "proofs_violation")
        front = tree / "repro" / "optimize" / "front.py"
        front.write_text(
            front.read_text().replace(
                "def bad_front(points):",
                "def bad_front(points):  # proof: assumed",
            )
        )
        assert "PROOF101" in {v.rule for v in run_tree(tree)}

    def test_unproven_site_is_not_a_lint_failure(self, tmp_path):
        tree = copy_fixture(tmp_path, "proofs_violation")
        front = tree / "repro" / "optimize" / "front.py"
        front.write_text(
            "from repro.analysis.contracts import check_pareto_front, checked\n"
            "\n\n"
            "@checked(post=lambda front, points: check_pareto_front(points, front))\n"
            "def bad_front(points):\n"
            "    return [0]\n"
        )
        assert run_tree(tree) == []


class TestLedger:
    def test_classify_sites_statuses(self, tmp_path):
        tree = copy_fixture(tmp_path, "proofs_violation")
        result = check_project([tree], root=tree)
        sites = classify_sites(result.index)
        assert [s.key for s in sites] == ["repro.optimize.front::bad_front"]
        site = sites[0]
        assert site.checks == ["check_pareto_front"]
        statuses = {n: ob["status"] for n, ob in site.obligations.items()}
        assert statuses["front-indices-in-range"] == VIOLATED
        assert statuses[HAZARD_OBLIGATION] == VIOLATED
        assert site.violated() and not site.discharged

    def test_build_ledger_deterministic(self, tmp_path):
        tree = copy_fixture(tmp_path, "proofs_violation")
        index = check_project([tree], root=tree).index
        first = ledger_to_json(build_ledger(index, tree))
        second = ledger_to_json(build_ledger(index, tree))
        assert first == second
        data = json.loads(first)
        assert data["schema"] == PROOF_SCHEMA
        entry = data["sites"]["repro.optimize.front::bad_front"]
        assert entry["path"] == "repro/optimize/front.py"
        assert entry["line"] == 24
        assert len(entry["source_sha256"]) == 64
        assert entry["checks"] == ["check_pareto_front"]

    def test_committed_ledger_loads_and_has_proved_obligations(self):
        """The repo ships a ledger with at least three PROVED
        post-condition obligations (the PR's acceptance floor)."""
        ledger = load_ledger(COMMITTED_LEDGER)
        assert ledger is not None, "committed proof_ledger.json missing or foreign"
        proved = [
            (key, name)
            for key, entry in ledger["sites"].items()
            for name, ob in entry["obligations"].items()
            if ob["status"] == PROVED
        ]
        assert len(proved) >= 3, proved
        # At least one site is fully discharged — the one the runtime
        # skip loop and the overhead bench lean on.
        assert any(
            all(ob["status"] in ("PROVED", "ASSUMED") for ob in e["obligations"].values())
            for e in ledger["sites"].values()
        )

    def test_cli_write_then_verify_then_drift(self, tmp_path, monkeypatch, capsys):
        tree = copy_fixture(tmp_path, "proofs_violation")
        front = tree / "repro" / "optimize" / "front.py"
        front.write_text(
            "from repro.analysis.contracts import check_pareto_front, checked\n"
            "\n\n"
            "@checked(post=lambda front, points: check_pareto_front(points, front))\n"
            "def front_fn(points):\n"
            "    return [0]\n"
        )
        monkeypatch.chdir(tmp_path)
        # Missing ledger is a gate failure, not a crash.
        assert repro_main(["check", str(tree), "--proofs"]) == 3
        assert "missing" in capsys.readouterr().err
        assert repro_main(["check", str(tree), "--write-proofs"]) == 0
        assert "wrote proof ledger" in capsys.readouterr().out
        assert repro_main(["check", str(tree), "--proofs"]) == 0
        assert "up to date" in capsys.readouterr().out
        # Any source change makes the committed ledger stale.
        front.write_text(front.read_text() + "\n# touched\n")
        assert repro_main(["check", str(tree), "--proofs"]) == 3
        err = capsys.readouterr().err
        assert "stale" in err and "--write-proofs" in err


class TestRuntimeSkip:
    def _call_pareto(self):
        from repro.optimize.pareto import pareto_front

        return pareto_front([(3, 1), (1, 3), (2, 2), (0, 0)])

    def test_ledger_skips_fully_discharged_site(self, disarm_ledger):
        with contracts():
            before = dict(CONTRACT_STATS)
            full = self._call_pareto()
            assert CONTRACT_STATS["checked"] == before["checked"] + 1
            assert use_proof_ledger(str(COMMITTED_LEDGER))
            assert contracts_mode() == "ledger-skip"
            armed = dict(CONTRACT_STATS)
            skipped = self._call_pareto()
            assert CONTRACT_STATS["skipped"] == armed["skipped"] + 1
            assert CONTRACT_STATS["checked"] == armed["checked"]
        assert skipped == full

    def test_source_sha_mismatch_keeps_checking(self, tmp_path, disarm_ledger):
        data = json.loads(COMMITTED_LEDGER.read_text())
        entry = data["sites"]["repro.optimize.pareto::pareto_front"]
        entry["source_sha256"] = "0" * 64
        stale = tmp_path / "stale_ledger.json"
        stale.write_text(json.dumps(data))
        assert use_proof_ledger(str(stale))
        with contracts():
            before = dict(CONTRACT_STATS)
            self._call_pareto()
            assert CONTRACT_STATS["checked"] == before["checked"] + 1
            assert CONTRACT_STATS["skipped"] == before["skipped"]

    def test_undischarged_obligation_blocks_skip(self, tmp_path, disarm_ledger):
        data = json.loads(COMMITTED_LEDGER.read_text())
        entry = data["sites"]["repro.optimize.pareto::pareto_front"]
        next(iter(entry["obligations"].values()))["status"] = "UNPROVEN"
        partial = tmp_path / "partial_ledger.json"
        partial.write_text(json.dumps(data))
        assert use_proof_ledger(str(partial))
        with contracts():
            before = dict(CONTRACT_STATS)
            self._call_pareto()
            assert CONTRACT_STATS["checked"] == before["checked"] + 1
            assert CONTRACT_STATS["skipped"] == before["skipped"]

    def test_disarm_restores_full_checking(self, disarm_ledger):
        assert use_proof_ledger(str(COMMITTED_LEDGER))
        assert not use_proof_ledger(None)
        with contracts():
            assert contracts_mode() == "checked"
            before = dict(CONTRACT_STATS)
            self._call_pareto()
            assert CONTRACT_STATS["checked"] == before["checked"] + 1
            assert CONTRACT_STATS["skipped"] == before["skipped"]

    def test_unloadable_ledger_never_arms(self, tmp_path, disarm_ledger):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert not use_proof_ledger(str(bad))
        # Mode depends on whether contracts are globally enabled
        # (REPRO_CONTRACTS=1 runs this suite too) — but it must never
        # be ledger-skip after a failed load.
        assert contracts_mode() != "ledger-skip"

    def test_env_var_arms_ledger_at_import(self):
        """``REPRO_PROOF_LEDGER`` must work from a cold interpreter —
        the way a production run would arm it."""
        code = (
            "from repro.analysis.contracts import CONTRACT_STATS, contracts_mode\n"
            "from repro.optimize.pareto import pareto_front\n"
            "assert contracts_mode() == 'ledger-skip', contracts_mode()\n"
            "pareto_front([(1, 2), (2, 1)])\n"
            "assert CONTRACT_STATS == {'checked': 0, 'skipped': 1}, CONTRACT_STATS\n"
            "print('ok')\n"
        )
        env = dict(os.environ)
        env.update(
            REPRO_CONTRACTS="1",
            REPRO_PROOF_LEDGER=str(COMMITTED_LEDGER),
            PYTHONPATH=str(REPO_ROOT / "src"),
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


class TestExtractionByteIdentity:
    def test_ledger_skip_run_matches_full_check_run(self, disarm_ledger):
        """The PR's closing acceptance criterion: with contracts on, a
        ledger-armed run produces byte-identical extraction output to a
        full-check run — skipping proofs must never change results."""
        from repro.core.config import VS2Config
        from repro.core.pipeline import VS2Pipeline
        from repro.perf.cache import TranscriptionCache
        from repro.synth import generate_corpus

        corpus = generate_corpus("D2", n=3, seed=0)
        cache = TranscriptionCache()

        def run_all():
            pipeline = VS2Pipeline("D2", config=VS2Config.for_dataset("D2"), cache=cache)
            return [repr(pipeline.run(doc).extractions) for doc in corpus]

        with contracts():
            full = run_all()
            assert use_proof_ledger(str(COMMITTED_LEDGER))
            armed = run_all()
        assert armed == full
