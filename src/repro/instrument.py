"""Per-stage instrumentation for the VS2 pipeline.

This module sits at the *base* of the layering order — it imports
nothing from the rest of :mod:`repro` — so every layer (``core``, the
harness, the perf runner) can record into the same accumulator without
bending the dependency rules that ``repro.analysis.lint`` enforces
(``LAYER001``: ``core`` never imports ``repro.perf``).  The historical
import path :mod:`repro.perf.metrics` re-exports everything here.

:class:`PipelineMetrics` is a lightweight accumulator of wall-time,
call counts and item counts per named stage.  :class:`StageTimer` is
the context manager that feeds it::

    metrics = PipelineMetrics()
    with metrics.stage("segment") as t:
        tree = segmenter.segment(doc)
        t.items = len(tree.logical_blocks())
    print(metrics.format_table())

Stage names are free-form, but the pipeline uses a fixed vocabulary
(``ocr``, ``deskew``, ``segment``, ``select`` and dotted sub-stages
such as ``segment.cuts``) so tables from different runs line up; see
``docs/PROFILING.md``.  Recording costs two ``perf_counter`` calls,
two ``getrusage`` reads (for :attr:`StageStats.cpu_seconds`) and a
dict lookup, so instrumentation stays on in production paths.

Each stage additionally keeps a **bounded log-scale latency
histogram** (:data:`HIST_BUCKETS` doubling buckets from 1 µs up) of
its individually timed samples, so tables and ``BENCH_*.json``
snapshots report p50/p95/max — a mean hides exactly the straggler
documents the parallel runner exists for.

Accumulators merge (:meth:`PipelineMetrics.merge`), which is how the
parallel :class:`repro.perf.runner.CorpusRunner` folds per-worker
timings back into one table, and they serialise to plain dicts
(:meth:`PipelineMetrics.to_dict`) for ``BENCH_*.json`` snapshots; the
dict round-trip is lossless (``from_dict(m.to_dict()) == m``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - windows
    _resource = None  # type: ignore[assignment]

#: Canonical ordering of the pipeline's stage vocabulary; stages not
#: listed here render after these, in first-recorded order.
STAGE_ORDER: List[str] = [
    "corpus",
    "ocr",
    "ocr.cache_hit",
    "deskew",
    "segment",
    "segment.cuts",
    "segment.cluster",
    "segment.merge",
    "select",
    "select.search",
    "select.disambiguate",
    "select.form_fields",
    "rotate_back",
    "resilience.retry",
    "resilience.backoff",
    "resilience.timeout",
    "resilience.quarantine",
    "resilience.worker_replace",
    "resilience.resume",
    "resilience.degrade",
]

#: Latency histogram shape: bucket 0 holds samples ≤ 1 µs, bucket *i*
#: holds samples in ``(2^(i-1) µs, 2^i µs]``, and the last bucket is
#: open-ended (≈ 33 s and beyond).  26 ints per stage — bounded memory
#: no matter how many samples arrive.
HIST_BUCKETS = 26
_HIST_MIN_SECONDS = 1e-6


def hist_bucket(seconds: float) -> int:
    """Histogram bucket index for one sample duration."""
    if seconds <= _HIST_MIN_SECONDS:
        return 0
    bucket = int(math.log2(seconds / _HIST_MIN_SECONDS)) + 1
    return min(bucket, HIST_BUCKETS - 1)


def bucket_upper_seconds(bucket: int) -> float:
    """Upper edge (seconds) of a histogram bucket."""
    return _HIST_MIN_SECONDS * (2.0 ** bucket)


@dataclass
class StageStats:
    """Accumulated statistics of one named stage.

    ``calls``/``seconds``/``items`` aggregate everything recorded;
    ``hist``/``max_seconds`` cover only *individually observed*
    samples (:meth:`observe`), because an aggregate record of N calls
    carries no per-call distribution to bucket.  ``cpu_seconds``
    accumulates the CPU (user+sys) time the stage consumed — zero when
    the recorder did not measure it (platforms without ``resource``,
    or aggregates folded in from older snapshots).
    """

    calls: int = 0
    seconds: float = 0.0
    items: int = 0
    max_seconds: float = 0.0
    cpu_seconds: float = 0.0
    hist: List[int] = field(default_factory=lambda: [0] * HIST_BUCKETS)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, seconds: float, items: int = 0, cpu_seconds: float = 0.0) -> None:
        """Record one timed sample (updates the latency histogram)."""
        self.calls += 1
        self.seconds += seconds
        self.items += items
        self.cpu_seconds += cpu_seconds
        bucket = hist_bucket(seconds)
        if bucket >= len(self.hist):
            self.hist.extend([0] * (bucket + 1 - len(self.hist)))
        self.hist[bucket] += 1
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def add(
        self, seconds: float, items: int = 0, calls: int = 1, cpu_seconds: float = 0.0
    ) -> None:
        """Fold in an aggregate (no per-sample distribution known)."""
        self.calls += calls
        self.seconds += seconds
        self.items += items
        self.cpu_seconds += cpu_seconds

    def merge_from(self, other: "StageStats") -> None:
        """Fold ``other`` into this accumulator.  Histograms of
        different widths merge by widening to the longer one (dumps
        from other builds may carry more or fewer buckets) — never by
        raising."""
        self.calls += other.calls
        self.seconds += other.seconds
        self.items += other.items
        self.cpu_seconds += other.cpu_seconds
        if other.max_seconds > self.max_seconds:
            self.max_seconds = other.max_seconds
        if len(other.hist) > len(self.hist):
            self.hist.extend([0] * (len(other.hist) - len(self.hist)))
        for i, count in enumerate(other.hist):
            self.hist[i] += count

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def ms_per_call(self) -> float:
        return (self.seconds / self.calls) * 1000.0 if self.calls else 0.0

    def quantile_seconds(self, q: float) -> Optional[float]:
        """Latency quantile estimate from the histogram (upper bucket
        edge, clipped to the observed max); ``None`` without samples."""
        total = sum(self.hist)
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for bucket, count in enumerate(self.hist):
            cumulative += count
            if cumulative >= target:
                upper = bucket_upper_seconds(bucket)
                return min(upper, self.max_seconds) if self.max_seconds else upper
        return self.max_seconds  # pragma: no cover - cumulative covers total

    @property
    def p50_ms(self) -> Optional[float]:
        q = self.quantile_seconds(0.50)
        return None if q is None else q * 1000.0

    @property
    def p95_ms(self) -> Optional[float]:
        q = self.quantile_seconds(0.95)
        return None if q is None else q * 1000.0

    @property
    def max_ms(self) -> Optional[float]:
        return self.max_seconds * 1000.0 if sum(self.hist) else None

    # ------------------------------------------------------------------
    # Serialisation (lossless round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "calls": self.calls,
            "seconds": self.seconds,
            "items": self.items,
        }
        if self.max_seconds:
            out["max_seconds"] = self.max_seconds
        if self.cpu_seconds:
            out["cpu_seconds"] = self.cpu_seconds
        sparse = {str(i): n for i, n in enumerate(self.hist) if n}
        if sparse:
            out["hist"] = sparse
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "StageStats":
        stats = StageStats(
            calls=int(data.get("calls", 0)),
            seconds=float(data.get("seconds", 0.0)),
            items=int(data.get("items", 0)),
            max_seconds=float(data.get("max_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
        )
        for key, count in dict(data.get("hist", {})).items():
            bucket = int(key)
            if bucket < 0:
                continue
            if bucket >= len(stats.hist):  # widen, never drop samples
                stats.hist.extend([0] * (bucket + 1 - len(stats.hist)))
            stats.hist[bucket] = int(count)
        return stats


def _cpu_now() -> float:
    """This process's cumulative CPU (user+sys) seconds, or ``0.0``
    on platforms without ``resource``."""
    if _resource is None:  # pragma: no cover - windows
        return 0.0
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


class StageTimer:
    """Times one ``with`` block and reports into a :class:`PipelineMetrics`.

    Set :attr:`items` inside the block to attach a work count (blocks
    produced, words transcribed, extractions emitted …) to the sample.
    The sample is recorded even when the block raises, so failed
    documents still show up in the per-stage table.  Alongside the
    wall clock, the block's CPU (user+sys) consumption is charged to
    :attr:`StageStats.cpu_seconds` via ``getrusage`` deltas — like the
    wall time, nested stage timers each charge their own span, so
    dotted sub-stages overlap their parents.
    """

    __slots__ = ("_metrics", "name", "items", "_start", "_cpu_start")

    def __init__(self, metrics: "PipelineMetrics", name: str):
        self._metrics = metrics
        self.name = name
        self.items = 0
        self._start = 0.0
        self._cpu_start = 0.0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        self._cpu_start = _cpu_now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        cpu = max(_cpu_now() - self._cpu_start, 0.0)
        self._metrics.record(
            self.name,
            time.perf_counter() - self._start,
            items=self.items,
            cpu_seconds=cpu,
        )


@dataclass
class PipelineMetrics:
    """Wall-time / call-count / item-count accumulator, keyed by stage."""

    stages: Dict[str, StageStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageTimer:
        """A context manager timing one occurrence of ``name``."""
        return StageTimer(self, name)

    def record(
        self,
        name: str,
        seconds: float,
        items: int = 0,
        calls: int = 1,
        cpu_seconds: float = 0.0,
    ) -> None:
        """Record into ``name``: a single call (``calls == 1``) is a
        histogram sample; anything else is an aggregate fold-in."""
        stats = self._stats(name)
        if calls == 1:
            stats.observe(seconds, items=items, cpu_seconds=cpu_seconds)
        else:
            stats.add(seconds, items=items, calls=calls, cpu_seconds=cpu_seconds)

    def count(self, name: str, items: int = 0) -> None:
        """Record an instantaneous event (a call with no duration —
        kept out of the latency histogram)."""
        self._stats(name).add(0.0, items=items)

    def _stats(self, name: str) -> StageStats:
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        return stats

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "PipelineMetrics") -> "PipelineMetrics":
        """Fold ``other``'s samples into this accumulator (in place),
        histograms included."""
        for name, stats in other.stages.items():
            self._stats(name).merge_from(stats)
        return self

    def drain(self) -> "PipelineMetrics":
        """Return a snapshot holding the current samples and reset this
        accumulator — the per-chunk handoff of the parallel runner."""
        snapshot = PipelineMetrics(stages=self.stages)
        self.stages = {}
        return snapshot

    def clear(self) -> None:
        self.stages = {}

    # ------------------------------------------------------------------
    # Access / serialisation
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> StageStats:
        return self.stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stages

    def ordered_names(self) -> Iterator[str]:
        known = [n for n in STAGE_ORDER if n in self.stages]
        extra = [n for n in self.stages if n not in STAGE_ORDER]
        return iter(known + extra)

    def total_seconds(self) -> float:
        """Sum of the top-level (undotted) stage times.  Dotted
        sub-stages are nested inside their parents and excluded so the
        total is not double-counted."""
        return sum(
            s.seconds for n, s in self.stages.items() if "." not in n and n != "corpus"
        )

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: self.stages[name].to_dict() for name in self.ordered_names()}

    @staticmethod
    def from_dict(data: Dict[str, Dict[str, object]]) -> "PipelineMetrics":
        """Inverse of :meth:`to_dict` — field-for-field, so round-trips
        are lossless even for degenerate stats (``calls: 0`` with
        nonzero seconds survives unchanged rather than being replayed
        through :meth:`record`'s sample/aggregate split)."""
        metrics = PipelineMetrics()
        for name, stats in data.items():
            metrics.stages[name] = StageStats.from_dict(stats)
        return metrics

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_table(self, title: str = "Per-stage timing") -> str:
        """An aligned text table of every recorded stage.

        Dotted sub-stages are indented under their parent stage; the
        trailing total row sums top-level stages only.  p50/p95/max
        come from the per-stage latency histograms (dashes for stages
        that only ever recorded aggregates or instantaneous counts).
        """
        headers = ["stage", "calls", "total s", "ms/call", "p50 ms", "p95 ms", "max ms", "items"]

        def ms_cell(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.2f}"

        rows: List[List[str]] = []
        for name in self.ordered_names():
            stats = self.stages[name]
            label = ("  " + name) if "." in name else name
            rows.append(
                [
                    label,
                    str(stats.calls),
                    f"{stats.seconds:.3f}",
                    f"{stats.ms_per_call:.2f}",
                    ms_cell(stats.p50_ms),
                    ms_cell(stats.p95_ms),
                    ms_cell(stats.max_ms),
                    str(stats.items),
                ]
            )
        rows.append(
            ["total (top-level)", "", f"{self.total_seconds():.3f}", "", "", "", "", ""]
        )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
        ]
        lines = [title, "=" * len(title)]
        lines.append(
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        )
        lines.append("-+-".join("-" * w for w in widths))
        for r in rows:
            lines.append(
                " | ".join(
                    cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                    for i, cell in enumerate(r)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_table()


def merge_all(parts: List[Optional[PipelineMetrics]]) -> PipelineMetrics:
    """Merge many accumulators (``None`` entries skipped) into a new one."""
    merged = PipelineMetrics()
    for part in parts:
        if part is not None:
            merged.merge(part)
    return merged
