"""Per-stage instrumentation for the VS2 pipeline.

This module sits at the *base* of the layering order — it imports
nothing from the rest of :mod:`repro` — so every layer (``core``, the
harness, the perf runner) can record into the same accumulator without
bending the dependency rules that ``repro.analysis.lint`` enforces
(``LAYER001``: ``core`` never imports ``repro.perf``).  The historical
import path :mod:`repro.perf.metrics` re-exports everything here.

:class:`PipelineMetrics` is a lightweight accumulator of wall-time,
call counts and item counts per named stage.  :class:`StageTimer` is
the context manager that feeds it::

    metrics = PipelineMetrics()
    with metrics.stage("segment") as t:
        tree = segmenter.segment(doc)
        t.items = len(tree.logical_blocks())
    print(metrics.format_table())

Stage names are free-form, but the pipeline uses a fixed vocabulary
(``ocr``, ``deskew``, ``segment``, ``select`` and dotted sub-stages
such as ``segment.cuts``) so tables from different runs line up; see
``docs/PROFILING.md``.  Recording costs two ``perf_counter`` calls and
a dict lookup, so instrumentation stays on in production paths.

Accumulators merge (:meth:`PipelineMetrics.merge`), which is how the
parallel :class:`repro.perf.runner.CorpusRunner` folds per-worker
timings back into one table, and they serialise to plain dicts
(:meth:`PipelineMetrics.to_dict`) for ``BENCH_*.json`` snapshots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Canonical ordering of the pipeline's stage vocabulary; stages not
#: listed here render after these, in first-recorded order.
STAGE_ORDER: List[str] = [
    "corpus",
    "ocr",
    "ocr.cache_hit",
    "deskew",
    "segment",
    "segment.cuts",
    "segment.cluster",
    "segment.merge",
    "select",
    "select.search",
    "select.disambiguate",
    "select.form_fields",
    "rotate_back",
]


@dataclass
class StageStats:
    """Accumulated statistics of one named stage."""

    calls: int = 0
    seconds: float = 0.0
    items: int = 0

    def add(self, seconds: float, items: int = 0, calls: int = 1) -> None:
        self.calls += calls
        self.seconds += seconds
        self.items += items

    @property
    def ms_per_call(self) -> float:
        return (self.seconds / self.calls) * 1000.0 if self.calls else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "seconds": self.seconds, "items": self.items}


class StageTimer:
    """Times one ``with`` block and reports into a :class:`PipelineMetrics`.

    Set :attr:`items` inside the block to attach a work count (blocks
    produced, words transcribed, extractions emitted …) to the sample.
    The sample is recorded even when the block raises, so failed
    documents still show up in the per-stage table.
    """

    __slots__ = ("_metrics", "name", "items", "_start")

    def __init__(self, metrics: "PipelineMetrics", name: str):
        self._metrics = metrics
        self.name = name
        self.items = 0
        self._start = 0.0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._metrics.record(
            self.name, time.perf_counter() - self._start, items=self.items
        )


@dataclass
class PipelineMetrics:
    """Wall-time / call-count / item-count accumulator, keyed by stage."""

    stages: Dict[str, StageStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageTimer:
        """A context manager timing one occurrence of ``name``."""
        return StageTimer(self, name)

    def record(self, name: str, seconds: float, items: int = 0, calls: int = 1) -> None:
        self._stats(name).add(seconds, items=items, calls=calls)

    def count(self, name: str, items: int = 0) -> None:
        """Record an instantaneous event (a call with no duration)."""
        self._stats(name).add(0.0, items=items)

    def _stats(self, name: str) -> StageStats:
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        return stats

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "PipelineMetrics") -> "PipelineMetrics":
        """Fold ``other``'s samples into this accumulator (in place)."""
        for name, stats in other.stages.items():
            self._stats(name).add(stats.seconds, items=stats.items, calls=stats.calls)
        return self

    def drain(self) -> "PipelineMetrics":
        """Return a snapshot holding the current samples and reset this
        accumulator — the per-chunk handoff of the parallel runner."""
        snapshot = PipelineMetrics(stages=self.stages)
        self.stages = {}
        return snapshot

    def clear(self) -> None:
        self.stages = {}

    # ------------------------------------------------------------------
    # Access / serialisation
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> StageStats:
        return self.stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stages

    def ordered_names(self) -> Iterator[str]:
        known = [n for n in STAGE_ORDER if n in self.stages]
        extra = [n for n in self.stages if n not in STAGE_ORDER]
        return iter(known + extra)

    def total_seconds(self) -> float:
        """Sum of the top-level (undotted) stage times.  Dotted
        sub-stages are nested inside their parents and excluded so the
        total is not double-counted."""
        return sum(
            s.seconds for n, s in self.stages.items() if "." not in n and n != "corpus"
        )

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: self.stages[name].to_dict() for name in self.ordered_names()}

    @staticmethod
    def from_dict(data: Dict[str, Dict[str, float]]) -> "PipelineMetrics":
        metrics = PipelineMetrics()
        for name, stats in data.items():
            metrics.record(
                name,
                float(stats.get("seconds", 0.0)),
                items=int(stats.get("items", 0)),
                calls=int(stats.get("calls", 0)),
            )
        return metrics

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_table(self, title: str = "Per-stage timing") -> str:
        """An aligned text table of every recorded stage.

        Dotted sub-stages are indented under their parent stage; the
        trailing total row sums top-level stages only.
        """
        headers = ["stage", "calls", "total s", "ms/call", "items"]
        rows: List[List[str]] = []
        for name in self.ordered_names():
            stats = self.stages[name]
            label = ("  " + name) if "." in name else name
            rows.append(
                [
                    label,
                    str(stats.calls),
                    f"{stats.seconds:.3f}",
                    f"{stats.ms_per_call:.2f}",
                    str(stats.items),
                ]
            )
        rows.append(["total (top-level)", "", f"{self.total_seconds():.3f}", "", ""])
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
        ]
        lines = [title, "=" * len(title)]
        lines.append(
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        )
        lines.append("-+-".join("-" * w for w in widths))
        for r in rows:
            lines.append(
                " | ".join(
                    cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                    for i, cell in enumerate(r)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_table()


def merge_all(parts: List[Optional[PipelineMetrics]]) -> PipelineMetrics:
    """Merge many accumulators (``None`` entries skipped) into a new one."""
    merged = PipelineMetrics()
    for part in parts:
        if part is not None:
            merged.merge(part)
    return merged
