"""VS2 — visual segmentation for information extraction.

A from-scratch reproduction of Sarkhel & Nandi, "Visual Segmentation
for Information Extraction from Heterogeneous Visually Rich Documents"
(SIGMOD 2019), including every substrate the system depends on.

Typical use::

    from repro import VS2Pipeline, generate_corpus

    doc = generate_corpus("D2", n=1, seed=42)[0]
    result = VS2Pipeline("D2").run(doc)
    print(result.as_key_values())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — VS2-Segment, VS2-Select, the pipeline;
* :mod:`repro.synth` — synthetic D1/D2/D3 corpora with ground truth;
* :mod:`repro.ocr` — simulated OCR, deskewing, layout analysis;
* :mod:`repro.baselines` — the paper's segmentation/extraction competitors;
* :mod:`repro.eval` — the §6.2 evaluation protocol;
* :mod:`repro.harness` — one runner per paper table/figure.
"""

from repro.core import VS2Config, VS2Pipeline, VS2Segmenter, VS2Selector
from repro.synth import generate_corpus

__version__ = "1.0.0"

__all__ = [
    "VS2Pipeline",
    "VS2Segmenter",
    "VS2Selector",
    "VS2Config",
    "generate_corpus",
    "__version__",
]
