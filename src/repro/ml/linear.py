"""Linear classifiers trained with SGD (numpy only)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance feature scaling with stored statistics."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(x, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class LinearSVM:
    """One-vs-rest linear SVM (hinge loss, L2 regularisation, SGD).

    Deterministic given ``seed``.  Binary problems train one
    hyperplane; multi-class problems train one per class.
    """

    def __init__(
        self,
        c: float = 1.0,
        epochs: int = 60,
        learning_rate: float = 0.05,
        seed: int = 0,
    ):
        if c <= 0:
            raise ValueError("C must be positive")
        self.c = c
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.classes_: List = []
        self.weights_: Optional[np.ndarray] = None  # (n_classes, n_features)
        self.bias_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: Sequence) -> "LinearSVM":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("bad training data shapes")
        self.classes_ = sorted(set(y.tolist()))
        n_classes = len(self.classes_)
        n_features = x.shape[1]
        if n_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(self.seed)
        rows = 1 if n_classes == 2 else n_classes
        self.weights_ = np.zeros((rows, n_features))
        self.bias_ = np.zeros(rows)

        for row in range(rows):
            positive = self.classes_[1] if n_classes == 2 else self.classes_[row]
            target = np.where(y == positive, 1.0, -1.0)
            w = np.zeros(n_features)
            b = 0.0
            lam = 1.0 / (self.c * len(x))
            step = 0
            for _ in range(self.epochs):
                order = rng.permutation(len(x))
                for i in order:
                    step += 1
                    eta = self.learning_rate / (1.0 + self.learning_rate * lam * step)
                    margin = target[i] * (x[i] @ w + b)
                    w *= 1.0 - eta * lam
                    if margin < 1.0:
                        w += eta * target[i] * x[i]
                        b += eta * target[i]
            self.weights_[row] = w
            self.bias_[row] = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None or self.bias_ is None:
            raise RuntimeError("model not fitted")
        return np.asarray(x, dtype=float) @ self.weights_.T + self.bias_

    def predict(self, x: np.ndarray) -> List:
        scores = self.decision_function(x)
        if len(self.classes_) == 2:
            return [self.classes_[1] if s > 0 else self.classes_[0] for s in scores[:, 0]]
        return [self.classes_[int(i)] for i in np.argmax(scores, axis=1)]


class SoftmaxRegression:
    """Multinomial logistic regression (full-batch gradient descent)."""

    def __init__(self, epochs: int = 200, learning_rate: float = 0.5, l2: float = 1e-3):
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.classes_: List = []
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: Sequence) -> "SoftmaxRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_ = sorted(set(y.tolist()))
        index = {c: i for i, c in enumerate(self.classes_)}
        onehot = np.zeros((len(y), len(self.classes_)))
        for i, label in enumerate(y):
            onehot[i, index[label]] = 1.0
        n_features = x.shape[1]
        self.weights_ = np.zeros((n_features, len(self.classes_)))
        self.bias_ = np.zeros(len(self.classes_))
        for _ in range(self.epochs):
            probs = self._probs(x)
            grad_w = x.T @ (probs - onehot) / len(x) + self.l2 * self.weights_
            grad_b = (probs - onehot).mean(axis=0)
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def _probs(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None or self.bias_ is None:
            raise RuntimeError("model not fitted")
        logits = x @ self.weights_ + self.bias_
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._probs(np.asarray(x, dtype=float))

    def predict(self, x: np.ndarray) -> List:
        return [self.classes_[int(i)] for i in np.argmax(self.predict_proba(x), axis=1)]
