"""Clustering: Lloyd's k-means with explicit seeding."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def kmeans(
    x: np.ndarray,
    k: int,
    seeds: Optional[Sequence[int]] = None,
    max_iter: int = 100,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``x`` into ``k`` groups.

    Parameters
    ----------
    x:
        ``(n, d)`` data matrix.
    k:
        Number of clusters (clipped to ``n``).
    seeds:
        Optional row indices to initialise the centres — VS2's
        clustering step seeds from a 2×2 grid of medoids (§5.1.2), so
        the caller controls initialisation.  When ``None``, k-means++-
        style probabilistic seeding with the given ``seed`` is used.

    Returns
    -------
    (labels, centers):
        ``labels[i]`` is the cluster of row ``i``; ``centers`` is the
        ``(k, d)`` centre matrix.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n == 0:
        return np.zeros(0, dtype=int), np.zeros((0, x.shape[1] if x.ndim == 2 else 0))
    k = max(1, min(k, n))

    if seeds is not None:
        seeds = list(seeds)[:k]
        centers = x[np.array(seeds)]
        k = len(seeds)
    else:
        rng = np.random.default_rng(seed)
        first = int(rng.integers(n))
        chosen = [first]
        for _ in range(k - 1):
            d2 = np.min(
                ((x[:, None, :] - x[np.array(chosen)][None, :, :]) ** 2).sum(axis=2), axis=1
            )
            total = d2.sum()
            if total <= 0:
                break
            probs = d2 / total
            chosen.append(int(rng.choice(n, p=probs)))
        centers = x[np.array(chosen)]
        k = len(chosen)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        dists = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = x[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return labels, centers
