"""A miniature ML toolbox (numpy-only, deterministic).

Two of the paper's end-to-end competitors train SVM classifiers
(Apostolova et al. [2] and Zhou et al. [49]); the implicit-modifier
clustering of VS2-Segment needs a constrained clustering routine.  This
package provides the pieces from scratch:

* :class:`LinearSVM` — one-vs-rest linear SVM trained with SGD on the
  hinge loss + L2;
* :class:`SoftmaxRegression` — multinomial logistic regression;
* :func:`kmeans` — Lloyd's algorithm with explicit seeding;
* feature scaling helpers.
"""

from repro.ml.linear import LinearSVM, SoftmaxRegression, StandardScaler
from repro.ml.cluster import kmeans

__all__ = ["LinearSVM", "SoftmaxRegression", "StandardScaler", "kmeans"]
