"""Colour handling.

The paper represents the average colour of a visual area in the LAB
colourspace (§4.1.1, Table 1) because perceptual distances there are
approximately Euclidean.  This package provides the sRGB → CIE L*a*b*
conversion from scratch plus small helpers for averaging and comparing
colours of document elements.
"""

from repro.colors.lab import (
    LabColor,
    delta_e,
    lab_to_rgb,
    mean_lab,
    rgb_to_lab,
)

__all__ = ["LabColor", "rgb_to_lab", "lab_to_rgb", "delta_e", "mean_lab"]
