"""sRGB ↔ CIE L*a*b* conversion, implemented from first principles.

The pipeline is the standard one: sRGB (0–255) → linear RGB (inverse
companding) → CIE XYZ (D65 illuminant, 2° observer) → L*a*b*.  Only the
forward direction is needed by VS2's features; the inverse is provided
for round-trip testing and for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

# sRGB → XYZ matrix, D65 illuminant (IEC 61966-2-1).
_RGB_TO_XYZ = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ]
)
_XYZ_TO_RGB = np.linalg.inv(_RGB_TO_XYZ)

# D65 reference white.
_WHITE = np.array([0.95047, 1.00000, 1.08883])

_EPSILON = 216.0 / 24389.0  # (6/29)^3
_KAPPA = 24389.0 / 27.0  # (29/3)^3


@dataclass(frozen=True)
class LabColor:
    """A CIE L*a*b* triple.  ``l`` in [0, 100]; ``a``/``b`` roughly ±128."""

    l: float
    a: float
    b: float

    def as_array(self) -> np.ndarray:
        return np.array([self.l, self.a, self.b])

    def distance(self, other: "LabColor") -> float:
        """CIE76 ΔE — Euclidean distance in L*a*b*."""
        return float(np.linalg.norm(self.as_array() - other.as_array()))


def _srgb_to_linear(channel: np.ndarray) -> np.ndarray:
    """Inverse sRGB companding on channels scaled to [0, 1]."""
    return np.where(channel <= 0.04045, channel / 12.92, ((channel + 0.055) / 1.055) ** 2.4)


def _linear_to_srgb(channel: np.ndarray) -> np.ndarray:
    return np.where(
        channel <= 0.0031308,
        channel * 12.92,
        1.055 * np.power(np.clip(channel, 0.0, None), 1.0 / 2.4) - 0.055,
    )


def _f(t: np.ndarray) -> np.ndarray:
    return np.where(t > _EPSILON, np.cbrt(t), (_KAPPA * t + 16.0) / 116.0)


def _f_inv(t: np.ndarray) -> np.ndarray:
    t3 = t**3
    return np.where(t3 > _EPSILON, t3, (116.0 * t - 16.0) / _KAPPA)


def rgb_to_lab(rgb: Tuple[float, float, float]) -> LabColor:
    """Convert an sRGB triple with channels in 0–255 to L*a*b*."""
    arr = np.asarray(rgb, dtype=float) / 255.0
    if arr.shape != (3,):
        raise ValueError("rgb_to_lab expects a 3-channel colour")
    if np.any(arr < 0) or np.any(arr > 1):
        raise ValueError(f"rgb channels out of range: {rgb}")
    xyz = _RGB_TO_XYZ @ _srgb_to_linear(arr)
    fx, fy, fz = _f(xyz / _WHITE)
    return LabColor(
        l=float(116.0 * fy - 16.0),
        a=float(500.0 * (fx - fy)),
        b=float(200.0 * (fy - fz)),
    )


def lab_to_rgb(lab: LabColor) -> Tuple[int, int, int]:
    """Convert L*a*b* back to an sRGB triple (0–255, clipped)."""
    fy = (lab.l + 16.0) / 116.0
    fx = fy + lab.a / 500.0
    fz = fy - lab.b / 200.0
    xyz = _f_inv(np.array([fx, fy, fz])) * _WHITE
    rgb = _linear_to_srgb(_XYZ_TO_RGB @ xyz)
    rgb = np.clip(rgb, 0.0, 1.0) * 255.0
    return tuple(int(round(v)) for v in rgb)  # type: ignore[return-value]


def delta_e(a: LabColor, b: LabColor) -> float:
    """CIE76 colour difference."""
    return a.distance(b)


def mean_lab(colors: Iterable[LabColor]) -> LabColor:
    """Average colour of a visual area (Table 1's ``color`` feature).

    Averaging is done in L*a*b* directly, which is adequate for the
    near-uniform text/background colours of documents.
    """
    arrs = [c.as_array() for c in colors]
    if not arrs:
        return LabColor(0.0, 0.0, 0.0)
    mean = np.mean(arrs, axis=0)
    return LabColor(float(mean[0]), float(mean[1]), float(mean[2]))
