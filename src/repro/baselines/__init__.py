"""Baseline systems the paper compares against.

``segmentation`` — the five Table 5 competitors (A1 text-only
clustering, A2 XY-Cut, A3 Voronoi tessellation, A4 VIPS, A5 Tesseract
layout analysis — the latter lives in :mod:`repro.ocr.layout_analysis`).

``extraction`` — the Table 7 competitors (ClausIE, FSM, the ML-based
HTML extractor of Zhou et al., the visual+textual SVM of Apostolova et
al., ReportMiner) plus the text-only baseline of Tables 6/8.
"""
