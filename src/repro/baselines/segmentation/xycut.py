"""Baseline A2: recursive XY-Cut [18].

The classic top-down algorithm: project ink onto each axis, split at
the widest empty valley exceeding a minimum width, recurse.  Unlike
VS2-Segment it only sees rectangular whitespace aligned with the axes —
no slanted cuts, no clustering, no semantics — so it fails on rotated
captures and on areas not delineated by straight whitespace (the paper's
comparison point for "blocks not separated by a rectangular whitespace
separator").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.doc import Document
from repro.doc.elements import AtomicElement
from repro.geometry import BBox, OccupancyGrid, enclosing_bbox


def xycut_blocks(
    doc: Document,
    min_gap_y: float = 8.0,
    min_gap_x: float = 18.0,
    cell: float = 2.0,
    max_depth: int = 12,
) -> List[BBox]:
    """Recursive XY-cut block proposals for ``doc``.

    ``min_gap_y`` / ``min_gap_x`` — minimum valley widths (layout
    units) for horizontal and vertical splits; the vertical threshold
    is larger because inter-word spaces are wider than inter-line gaps.
    """
    atoms = [e for e in doc.elements if e.is_textual]
    if not atoms:
        return []
    blocks: List[BBox] = []
    _recurse(atoms, (min_gap_y, min_gap_x), cell, max_depth, blocks)
    return blocks


def _recurse(
    atoms: Sequence[AtomicElement],
    min_gaps,
    cell: float,
    depth: int,
    out: List[BBox],
) -> None:
    min_gap_y, min_gap_x = min_gaps
    frame = enclosing_bbox([a.bbox for a in atoms])
    if depth <= 0 or len(atoms) <= 1:
        out.append(frame)
        return
    local = [a.bbox.translate(-frame.x, -frame.y) for a in atoms]
    grid = OccupancyGrid.from_bboxes(local, max(frame.w, cell), max(frame.h, cell), cell)

    best = None  # (gap_units, orientation, mid_units)
    for start, length in grid.empty_row_runs():
        if start == 0 or start + length >= grid.n_rows:
            continue
        gap = length * cell
        if gap >= min_gap_y and (best is None or gap > best[0]):
            best = (gap, "horizontal", (start + length / 2.0) * cell)
    for start, length in grid.empty_col_runs():
        if start == 0 or start + length >= grid.n_cols:
            continue
        gap = length * cell
        if gap >= min_gap_x and (best is None or gap > best[0]):
            best = (gap, "vertical", (start + length / 2.0) * cell)

    if best is None:
        out.append(frame)
        return
    _, orientation, mid = best
    first: List[AtomicElement] = []
    second: List[AtomicElement] = []
    for a in atoms:
        cx, cy = a.bbox.centroid
        coordinate = (cy - frame.y) if orientation == "horizontal" else (cx - frame.x)
        (first if coordinate <= mid else second).append(a)
    if not first or not second:
        out.append(frame)
        return
    _recurse(first, min_gaps, cell, depth - 1, out)
    _recurse(second, min_gaps, cell, depth - 1, out)
