"""Segmentation baselines (Table 5).

Every baseline exposes the same interface as
:meth:`repro.core.segment.VS2Segmenter.block_bboxes`: document in,
list of block bounding-box proposals out.
"""

from repro.baselines.segmentation.text_clusters import text_cluster_blocks
from repro.baselines.segmentation.xycut import xycut_blocks
from repro.baselines.segmentation.voronoi import voronoi_blocks
from repro.baselines.segmentation.vips import html_convert, vips_blocks

__all__ = [
    "text_cluster_blocks",
    "xycut_blocks",
    "voronoi_blocks",
    "vips_blocks",
    "html_convert",
]
