"""Baseline A3: Voronoi-tessellation page segmentation (Kise-style).

"Recursively segments an input document into smaller Voronoi areas.
Summary statistics such as the distribution of font size, area ratio,
angular distance are taken into consideration" (§6.3).

We realise it as the standard point-Voronoi formulation: a Delaunay
neighbourhood graph over word centroids (scipy), with edges cut when
the inter-word distance is large against the corpus-statistics
thresholds or the font-size ratio across the edge is extreme.  The
connected components of the surviving graph are the blocks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.doc import Document
from repro.geometry import BBox, enclosing_bbox


def _horizontal_gap_mode(words, edges) -> float:
    """Median gap over near-horizontal edges — the intra-line spacing
    mode of Kise's gap distribution (vertical and diagonal edges would
    pull the estimate toward inter-line distances)."""
    gaps = []
    for a, b in edges:
        dy = abs(words[a].bbox.centroid[1] - words[b].bbox.centroid[1])
        if dy < 0.6 * min(words[a].bbox.h, words[b].bbox.h):
            gaps.append(words[a].bbox.gap_distance(words[b].bbox))
    return float(np.median(gaps)) if gaps else 1.0


def voronoi_blocks(
    doc: Document,
    distance_factor: float = 2.4,
    font_ratio_limit: float = 2.2,
) -> List[BBox]:
    """Block proposals via Delaunay-graph edge cutting.

    ``distance_factor`` scales the adaptive distance threshold
    (estimated from the distribution of nearest-neighbour gaps);
    ``font_ratio_limit`` cuts edges whose endpoint heights differ by
    more than this ratio.
    """
    from scipy.spatial import Delaunay

    words = doc.text_elements
    if not words:
        return []
    if len(words) < 4:
        return [enclosing_bbox([w.bbox for w in words])]

    points = np.array([w.bbox.centroid for w in words])
    # Delaunay needs non-degenerate input; jitter exact duplicates.
    rng = np.random.default_rng(0)
    points = points + rng.uniform(-0.01, 0.01, size=points.shape)
    try:
        tri = Delaunay(points)
    except Exception:
        return [enclosing_bbox([w.bbox for w in words])]

    edges = set()
    for simplex in tri.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            edges.add((min(a, b), max(a, b)))

    gaps = np.array(
        [words[a].bbox.gap_distance(words[b].bbox) for a, b in edges]
    )
    base_threshold = distance_factor * max(_horizontal_gap_mode(words, edges), 1.0)

    parent = list(range(len(words)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        parent[find(x)] = find(y)

    for (a, b), gap in zip(edges, gaps):
        ha, hb = words[a].bbox.h, words[b].bbox.h
        ratio = max(ha, hb) / max(min(ha, hb), 1.0)
        # Font-relative slack: line spacing scales with type size (the
        # paper's "distribution of font size" input to this baseline).
        threshold = max(base_threshold, 0.8 * min(ha, hb))
        if gap <= threshold and ratio <= font_ratio_limit:
            union(a, b)

    groups: dict = {}
    for i in range(len(words)):
        groups.setdefault(find(i), []).append(i)
    return [enclosing_bbox([words[i].bbox for i in g]) for g in groups.values()]
