"""Baseline A4: VIPS — vision-based page segmentation over HTML [4].

VIPS walks the DOM, treating block-level tags and their rendered
separators as the visual structure.  It needs an HTML document:
dataset D3 is natively HTML; for other formats the paper converts to
HTML first, and cites Gallo et al. [14] on how lossy that conversion
is.  :func:`html_convert` performs that lossy conversion here (layout
analysis → ``div`` soup with conversion artifacts), so VIPS can run on
D2's PDFs exactly as the paper ran it — and inherit the same
degradation.  It cannot be applied to D1 (scanned images without a
reliable conversion path), matching the dash in Table 5.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.doc import Document
from repro.geometry import BBox, enclosing_bbox
from repro.html import HtmlNode
from repro.ocr.layout_analysis import tesseract_blocks

#: Tags whose boxes VIPS emits as visual blocks.
_BLOCK_TAGS = frozenset(
    {"div", "p", "table", "tr", "ul", "ol", "li", "h1", "h2", "h3", "h4", "img"}
)


def vips_blocks(doc: Document) -> Optional[List[BBox]]:
    """VIPS block proposals, or ``None`` when no HTML view exists and
    conversion is impossible (D1 scans)."""
    root = doc.html
    if root is None:
        if doc.source in ("scan",):
            return None
        root = html_convert(doc)
        if root is None:
            return None
    blocks: List[BBox] = []
    _collect(root, blocks)
    return blocks


def _collect(node: HtmlNode, out: List[BBox]) -> None:
    is_block = node.tag in _BLOCK_TAGS and node.bbox is not None
    child_blocks = [
        c for c in node.children if isinstance(c, HtmlNode) and _has_block_descendant(c)
    ]
    if is_block and not child_blocks:
        if node.tag != "img":
            out.append(node.bbox)  # leaf visual block
        return
    for child in node.children:
        if isinstance(child, HtmlNode):
            _collect(child, out)


def _has_block_descendant(node: HtmlNode) -> bool:
    for n in node.walk():
        if n.tag in _BLOCK_TAGS and n.bbox is not None:
            return True
    return False


def html_convert(doc: Document, seed: int = 0) -> Optional[HtmlNode]:
    """Lossy PDF/image → HTML conversion.

    Layout analysis recovers visual blocks, each serialised as a
    ``div`` with its box.  Per Gallo et al. [14], real converters
    misuse format operators: with a fixed per-block probability the
    converter merges a block into its predecessor (degraded visual
    descriptors), which is the artifact that hurts VIPS on D2.
    """
    if not doc.text_elements:
        return None
    rng = np.random.default_rng((seed, len(doc.elements)))
    boxes = tesseract_blocks(doc)
    body = HtmlNode("body", bbox=doc.page_bbox)
    previous: Optional[HtmlNode] = None
    for box in boxes:
        if previous is not None and rng.random() < 0.25:
            previous.bbox = previous.bbox.union(box)  # conversion artifact
            previous.append(doc.text_of(box))
            continue
        div = HtmlNode("div", bbox=box)
        div.append(doc.text_of(box))
        body.append(div)
        previous = div
    html = HtmlNode("html", bbox=doc.page_bbox)
    html.append(body)
    return html
