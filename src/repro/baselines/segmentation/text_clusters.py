"""Baseline A1: text-only segmentation.

"A text-based baseline method that groups words with similar
word-embeddings into the same clusters" (§6.3).  Clustering operates
on reading-order text lines (the granularity a text-only system can
actually see): consecutive lines join a cluster while their embedding
stays similar to the cluster's running centroid.  The method is blind
to fonts, colours and true 2-D structure, so it bridges adjacent areas
that share vocabulary and splits areas whose wording shifts — its
Table 5 failure mode on visually rich pages.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.doc import Document
from repro.doc.document import group_into_lines
from repro.embeddings import WordEmbedding, cosine_similarity, default_embedding
from repro.geometry import BBox, enclosing_bbox


def text_cluster_blocks(
    doc: Document,
    similarity_threshold: float = 0.35,
    embedding: Optional[WordEmbedding] = None,
) -> List[BBox]:
    """Sequential embedding clustering of transcription lines."""
    embedding = embedding or default_embedding()
    lines = group_into_lines(doc.text_elements)
    if not lines:
        return []

    clusters: List[List] = []
    centroid: Optional[np.ndarray] = None
    for line in lines:
        text = " ".join(w.text for w in line)
        vector = embedding.embed_text(text)
        if clusters and centroid is not None and cosine_similarity(vector, centroid) >= similarity_threshold:
            clusters[-1].extend(line)
            centroid = (centroid + vector) / 2.0
        else:
            clusters.append(list(line))
            centroid = vector
    return [enclosing_bbox([w.bbox for w in cluster]) for cluster in clusters]
