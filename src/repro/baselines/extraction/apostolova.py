"""Baseline: combined visual + textual SVM (Apostolova et al. [2]).

"They proposed a combination of textual and visual features to train
an SVM classifier ... trained on the dataset (60%-40% split) using
some visual and textual features of the document" (§6.4).

Candidate regions are Tesseract layout blocks; each is encoded with
the visual+textual vector of :mod:`.features`; a linear SVM assigns
entity types, and the top-scoring block per entity is extracted.

On D1 the entity space is the 1369 form fields, far too many classes
for per-class hyperplanes over form-sized training sets; following the
positional nature of their visual features on fixed forms, the D1 path
pairs a form-face detector with per-field positional prototypes
(the SVM's position features collapse to exactly this on rigid
templates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.extraction.base import identify_face_from_text
from repro.baselines.extraction.features import block_feature_vector
from repro.core.select import Extraction
from repro.doc import Document
from repro.geometry import BBox
from repro.ml import LinearSVM, StandardScaler
from repro.ocr.layout_analysis import tesseract_blocks

_OTHER = "__other__"


class ApostolovaExtractor:
    """SVM over visual+textual block features (60/40 protocol)."""

    def __init__(self, dataset: str, seed: int = 0):
        self.dataset = dataset.upper()
        self.seed = seed
        self.model: Optional[LinearSVM] = None
        self.scaler = StandardScaler()
        # D1 path: face id → entity → mean centroid prototype.
        self.prototypes: Dict[int, Dict[str, Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    def fit(self, train_docs: Sequence[Document]) -> "ApostolovaExtractor":
        """Train on annotated documents (the paper's 60% split)."""
        if self.dataset == "D1":
            return self._fit_prototypes(train_docs)
        features: List[np.ndarray] = []
        labels: List[str] = []
        for doc in train_docs:
            for box in tesseract_blocks(doc):
                features.append(block_feature_vector(doc, box))
                labels.append(self._label_for(box, doc))
        if not features or len(set(labels)) < 2:
            raise ValueError("not enough labelled blocks to train on")
        x = self.scaler.fit_transform(np.stack(features))
        self.model = LinearSVM(c=2.0, epochs=40, seed=self.seed).fit(x, labels)
        return self

    @staticmethod
    def _label_for(box: BBox, doc: Document) -> str:
        best: Tuple[float, str] = (0.0, _OTHER)
        for a in doc.annotations:
            iou = box.iou(a.bbox)
            if iou > max(best[0], 0.4):
                best = (iou, a.entity_type)
        return best[1]

    def _fit_prototypes(self, train_docs: Sequence[Document]) -> "ApostolovaExtractor":
        sums: Dict[int, Dict[str, List[float]]] = {}
        for doc in train_docs:
            face = doc.metadata.get("face")
            if face is None:
                detected = identify_face_from_text(doc)
                face = detected.face_id if detected else None
            if face is None:
                continue
            per_face = sums.setdefault(int(face), {})
            for a in doc.annotations:
                cx, cy = a.bbox.centroid
                acc = per_face.setdefault(a.entity_type, [0.0, 0.0, 0.0])
                acc[0] += cx
                acc[1] += cy
                acc[2] += 1.0
        self.prototypes = {
            face: {
                entity: (acc[0] / acc[2], acc[1] / acc[2])
                for entity, acc in per_face.items()
            }
            for face, per_face in sums.items()
        }
        return self

    # ------------------------------------------------------------------
    def extract(self, doc: Document) -> List[Extraction]:
        """Top-scoring block per entity from the trained classifier."""
        if self.dataset == "D1":
            return self._extract_by_prototypes(doc)
        if self.model is None:
            raise RuntimeError("fit() the extractor before extracting")
        blocks = tesseract_blocks(doc)
        if not blocks:
            return []
        x = self.scaler.transform(
            np.stack([block_feature_vector(doc, b) for b in blocks])
        )
        scores = self.model.decision_function(x)
        classes = self.model.classes_
        out: List[Extraction] = []
        for k, entity_type in enumerate(classes):
            if entity_type == _OTHER or len(classes) == 2:
                continue
            best = int(np.argmax(scores[:, k]))
            if scores[best, k] < -0.25:
                continue
            box = blocks[best]
            out.append(
                Extraction(entity_type, doc.text_of(box), box, box, float(scores[best, k]))
            )
        return out

    def _extract_by_prototypes(self, doc: Document) -> List[Extraction]:
        face = identify_face_from_text(doc)
        if face is None or face.face_id not in self.prototypes:
            return []
        blocks = tesseract_blocks(doc)
        if not blocks:
            return []
        centroids = np.array([b.centroid for b in blocks])
        out: List[Extraction] = []
        for entity_type, (px, py) in self.prototypes[face.face_id].items():
            distances = np.abs(centroids[:, 0] - px) + np.abs(centroids[:, 1] - py)
            best = int(np.argmin(distances))
            if distances[best] > 60.0:
                continue
            box = blocks[best]
            out.append(Extraction(entity_type, doc.text_of(box), box, box, 0.7))
        return out
