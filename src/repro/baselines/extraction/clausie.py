"""Baseline: ClausIE-style clause-based extraction [10].

ClausIE decomposes text into clauses and applies per-entity clause
rules.  It is purely textual: the input is the whole-page reading-order
transcription split at sentence punctuation, so side-by-side layout
areas interleave inside its clauses — the root cause of its Table 7 gap
to VS2 on visually rich corpora.  Per §6.4 it "does not apply for the
form field extraction task defined for dataset D1".
"""

from __future__ import annotations

from typing import List

from repro.baselines.extraction.base import sentence_units
from repro.core.patterns import CURATED_PATTERNS
from repro.core.select import Extraction
from repro.doc import Document
from repro.nlp.tokenizer import normalize_text
from repro.synth.corpus import entity_vocabulary


class ClausIEExtractor:
    """Clause rules over the linear transcription; first match wins."""

    def __init__(self, dataset: str):
        self.dataset = dataset.upper()
        if self.dataset == "D1":
            raise ValueError("ClausIE does not apply to the D1 form-field task")
        self.patterns = {
            e: CURATED_PATTERNS[e] for e in entity_vocabulary(self.dataset)
        }

    def extract(self, doc: Document) -> List[Extraction]:
        """First clause-rule match per entity over the linearised text."""
        units = sentence_units(doc)
        out: List[Extraction] = []
        for entity_type, pattern in self.patterns.items():
            for unit in units:
                text = unit.text
                if not text.strip():
                    continue
                matches = pattern.find(normalize_text(text))
                if matches:
                    m = matches[0]
                    span = unit.span_bbox(m.start, m.end)
                    out.append(Extraction(entity_type, m.text, span, span, m.strength))
                    break
        return out
