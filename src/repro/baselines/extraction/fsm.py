"""Baseline: text-only frequent subtree mining (FSM) [31, 48].

"For every named entity to be extracted, it finds the most frequent
subtrees within the dependency trees for entries against that named
entity in the holdout corpus.  The syntactic patterns defined by these
subtrees are then searched within the transcribed text of a test
document" (§6.4).

This is VS2's *distant supervision* component without VS2's visual
half: mined patterns run over linear-transcription clauses instead of
logical blocks, and the first hit wins.  On D1 the mined "patterns"
degenerate to the descriptor strings, searched anywhere in the line —
which works on forms (85 / 90.75 in Table 7) because descriptors are
distinctive even when columns interleave.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.extraction.base import descriptor_extractions, sentence_units
from repro.core.holdout import HoldoutCorpus
from repro.synth.holdout import build_holdout_corpus
from repro.core.patterns import SyntacticPattern, learn_patterns_from_holdout
from repro.core.select import Extraction
from repro.doc import Document
from repro.nlp.tokenizer import normalize_text


class FsmExtractor:
    """Mined-pattern search over linear transcription clauses."""

    def __init__(
        self,
        dataset: str,
        holdout: Optional[HoldoutCorpus] = None,
        patterns: Optional[Dict[str, SyntacticPattern]] = None,
        max_holdout_entries: int = 40,
    ):
        self.dataset = dataset.upper()
        if self.dataset == "D1":
            self.patterns = {}
            return
        if patterns is not None:
            self.patterns = patterns
            return
        if holdout is None:
            holdout = build_holdout_corpus(
                self.dataset, max_entries_per_entity=max_holdout_entries
            )
        self.patterns = learn_patterns_from_holdout(holdout)

    def extract(self, doc: Document) -> List[Extraction]:
        """Strongest mined-pattern match per entity across clause units."""
        units = sentence_units(doc)
        if self.dataset == "D1":
            return descriptor_extractions(doc, units)
        out: List[Extraction] = []
        for entity_type, pattern in self.patterns.items():
            best = None
            for unit in units:
                text = normalize_text(unit.text)
                if not text:
                    continue
                matches = pattern.find(text)
                if not matches:
                    continue
                m = max(matches, key=lambda x: x.strength)
                if best is None or m.strength > best[0].strength:
                    best = (m, unit)
            if best is not None:
                m, unit = best
                span = unit.span_bbox(m.start, m.end)
                out.append(Extraction(entity_type, m.text, span, span, m.strength))
        return out
