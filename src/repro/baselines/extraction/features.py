"""Feature extraction shared by the trained baselines.

Apostolova et al. [2] combine visual and textual features of candidate
regions; Zhou et al. [49] use HTML/DOM features.  Both are realised
here as fixed-length numeric vectors so the from-scratch linear models
of :mod:`repro.ml` can train on them.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.doc import Document
from repro.geometry import BBox
from repro.html import HtmlNode
from repro.nlp import gazetteers as gaz
from repro.nlp.geocode import has_valid_geocode
from repro.nlp.ner import EMAIL_RE, PHONE_RE
from repro.nlp.timex import has_timex
from repro.nlp.tokenizer import words

_TAGS = ("div", "p", "span", "li", "td", "h1", "h2", "h3", "a", "ul", "table", "tr")


def text_features(text: str) -> List[float]:
    """Textual features of a candidate region (shared by both SVMs)."""
    ws = words(text)
    n = len(ws)
    n_chars = max(len(text), 1)
    digits = sum(ch.isdigit() for ch in text)
    caps = sum(1 for w in text.split() if w[:1].isupper())
    return [
        min(n / 40.0, 1.0),
        digits / n_chars,
        caps / max(len(text.split()), 1),
        1.0 if PHONE_RE.search(text) else 0.0,
        1.0 if EMAIL_RE.search(text) else 0.0,
        1.0 if has_timex(text) else 0.0,
        1.0 if has_valid_geocode(text) else 0.0,
        sum(1 for w in ws if w in gaz.FIRST_NAMES or w in gaz.LAST_NAMES) / max(n, 1),
        sum(1 for w in ws if w in gaz.EVENT_WORDS) / max(n, 1),
        sum(1 for w in ws if w in gaz.PROPERTY_WORDS) / max(n, 1),
        sum(1 for w in ws if w in gaz.CONTACT_WORDS) / max(n, 1),
        sum(1 for w in ws if w in gaz.STREET_SUFFIXES) / max(n, 1),
    ]


def visual_features(doc: Document, box: BBox) -> List[float]:
    """Visual features of a region (Apostolova et al. style)."""
    words_in = doc.words_in(box)
    mean_font = float(np.mean([w.font_size for w in words_in])) if words_in else 0.0
    mean_l = float(np.mean([w.color.l for w in words_in])) if words_in else 100.0
    density = len(words_in) / max(box.area, 1.0)
    return [
        box.x / doc.width,
        box.y / doc.height,
        box.w / doc.width,
        box.h / doc.height,
        mean_font / 60.0,
        mean_l / 100.0,
        min(density * 1000.0, 3.0),
    ]


def block_feature_vector(doc: Document, box: BBox) -> np.ndarray:
    """Visual + textual vector for one block (Apostolova)."""
    return np.array(visual_features(doc, box) + text_features(doc.text_of(box)))


def dom_feature_vector(node: HtmlNode, root: HtmlNode, page_w: float, page_h: float) -> np.ndarray:
    """DOM + textual vector for one HTML node (Zhou et al.)."""
    tag_onehot = [1.0 if node.tag == t else 0.0 for t in _TAGS]
    depth = 0.0
    # depth via walk: count ancestors by searching (DOM nodes lack parent
    # links; bounded scan is fine at page scale)
    for candidate in root.walk():
        if any(child is node for child in candidate.children):
            depth = 1.0
            break
    box = node.bbox
    geom = [
        (box.x / page_w) if box else 0.0,
        (box.y / page_h) if box else 0.0,
        (box.w / page_w) if box else 0.0,
        (box.h / page_h) if box else 0.0,
    ]
    has_class = [1.0 if node.attrs.get("class") else 0.0]
    return np.array(tag_onehot + [depth] + geom + has_class + text_features(node.text()))


def candidate_dom_nodes(root: HtmlNode) -> Sequence[HtmlNode]:
    """Leaf-ish DOM nodes with geometry and text — Zhou's candidates."""
    out = []
    for node in root.walk():
        if node.bbox is None or node.tag in ("html", "body"):
            continue
        has_block_child = any(
            isinstance(c, HtmlNode) and c.bbox is not None for c in node.children
        )
        if has_block_child:
            continue
        if node.text().strip():
            out.append(node)
    return out
