"""End-to-end extraction baselines (Tables 6, 7, 8).

All baselines consume the same *observed* (OCR-transcribed) document
view as VS2 and emit :class:`repro.core.select.Extraction` records:

=====================  =================================================
``textonly``           Tesseract layout + Tables 3/4 patterns + Lesk —
                       the ΔF1 reference of Tables 6 and 8
``clausie``            ClausIE [10]: clause-based rules over the linear
                       transcription (text-only)
``fsm``                frequent-subtree-mining patterns over the linear
                       transcription (text-only)
``ml_based``           Zhou et al. [49]: SVM over HTML node features
                       (HTML-convertible documents only)
``apostolova``         Apostolova et al. [2]: SVM over combined visual
                       and textual block features (60/40 split)
``reportminer``        ReportMiner [22]: per-template positional masks
                       induced from a 60% split
=====================  =================================================
"""

from repro.baselines.extraction.textonly import TextOnlyExtractor
from repro.baselines.extraction.clausie import ClausIEExtractor
from repro.baselines.extraction.fsm import FsmExtractor
from repro.baselines.extraction.ml_based import MlBasedExtractor
from repro.baselines.extraction.apostolova import ApostolovaExtractor
from repro.baselines.extraction.reportminer import ReportMinerExtractor

__all__ = [
    "TextOnlyExtractor",
    "ClausIEExtractor",
    "FsmExtractor",
    "MlBasedExtractor",
    "ApostolovaExtractor",
    "ReportMinerExtractor",
]
