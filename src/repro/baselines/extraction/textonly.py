"""The text-only baseline of Tables 6 and 8.

"Using Tesseract to segment the input document, it searches for
syntactic patterns within the text transcribed from each segmented
area.  Entity disambiguation is performed using Lesk [3]" (§6.4).

It shares VS2's pattern library but differs in exactly the two places
the paper ablates: segmentation comes from Tesseract's layout analysis
(no visual-feature clustering, no semantic merging) and conflicts are
resolved by text-only Lesk rather than the multimodal Eq. 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.extraction.base import TextUnit, descriptor_extractions
from repro.core.patterns import CURATED_PATTERNS, SyntacticPattern
from repro.core.select import Extraction
from repro.doc import Document
from repro.doc.document import group_into_lines
from repro.geometry import BBox
from repro.nlp.lesk import LeskCandidate, lesk_select
from repro.nlp.tokenizer import normalize_text
from repro.ocr.layout_analysis import tesseract_blocks
from repro.synth.corpus import entity_vocabulary


class TextOnlyExtractor:
    """Tesseract blocks + Tables 3/4 patterns + Lesk disambiguation."""

    def __init__(self, dataset: str, patterns: Optional[Dict[str, SyntacticPattern]] = None):
        self.dataset = dataset.upper()
        if patterns is not None:
            self.patterns = patterns
        elif self.dataset in ("D2", "D3"):
            self.patterns = {e: CURATED_PATTERNS[e] for e in entity_vocabulary(self.dataset)}
        else:
            self.patterns = {}

    def extract(self, doc: Document) -> List[Extraction]:
        """``doc`` is the observed (OCR) view, as for VS2."""
        blocks = tesseract_blocks(doc)
        if self.dataset == "D1":
            units = []
            for b in blocks:
                words = [w for line in group_into_lines(doc.words_in(b)) for w in line]
                if words:
                    units.append(TextUnit(words))
            return descriptor_extractions(doc, units)
        out: List[Extraction] = []
        block_texts = [(b, normalize_text(doc.text_of(b))) for b in blocks]
        for entity_type, pattern in self.patterns.items():
            candidates: List[tuple] = []
            for box, text in block_texts:
                if not text:
                    continue
                for match in pattern.find(text):
                    candidates.append((box, text, match))
            if not candidates:
                continue
            if len(candidates) == 1:
                choice = candidates[0]
            else:
                lesk_candidates = [
                    LeskCandidate(m.text, text) for _, text, m in candidates
                ]
                choice = candidates[lesk_select(lesk_candidates, entity_type)]
            box, _text, match = choice
            out.append(Extraction(entity_type, match.text, box, box, match.strength))
        return out
