"""Shared plumbing for extraction baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.formfields import find_descriptor_span
from repro.core.select import Extraction
from repro.doc import Document
from repro.doc.document import group_into_lines
from repro.doc.elements import TextElement
from repro.geometry import BBox, enclosing_bbox
from repro.nlp.fuzzy import normalize_for_match, similarity_ratio
from repro.synth.tax_forms import FormFace, form_faces


@dataclass
class TextUnit:
    """A clause-like unit of the linear transcription.

    ``text`` is the single-space join of ``words``; span localisation
    maps character ranges of ``text`` back to word boxes.
    """

    words: List[TextElement]

    @property
    def text(self) -> str:
        return " ".join(w.text for w in self.words)

    @property
    def bbox(self) -> BBox:
        return enclosing_bbox([w.bbox for w in self.words])

    def span_bbox(self, start: int, end: int) -> BBox:
        """Box of the words overlapping character span [start, end)."""
        offset = 0
        covered: List[TextElement] = []
        for i, w in enumerate(self.words):
            if i > 0:
                offset += 1
            w_start, w_end = offset, offset + len(w.text)
            if w_start < end and w_end > start:
                covered.append(w)
            offset = w_end
        if not covered:
            return self.bbox
        return enclosing_bbox([w.bbox for w in covered])


def sentence_units(doc: Document) -> List[TextUnit]:
    """Sentence-like units of the page-linearised transcription.

    Lines accumulate until terminal punctuation — the clause unit the
    text-only extractors operate on.  Side-by-side layout areas
    interleave inside these units, the text-only failure mode of Fig. 3.
    """
    lines = group_into_lines(doc.text_elements)
    units: List[TextUnit] = []
    buffer: List[TextElement] = []
    for line in lines:
        buffer.extend(line)
        text = " ".join(w.text for w in line)
        if text.rstrip().endswith((".", "!", "?", ":")) or len(buffer) > 40:
            units.append(TextUnit(buffer))
            buffer = []
    if buffer:
        units.append(TextUnit(buffer))
    return units


def identify_face_from_text(doc: Document) -> Optional[FormFace]:
    """Detect the D1 form face from the transcription's title line."""
    lines = group_into_lines(doc.text_elements)[:6]
    best: Optional[Tuple[float, FormFace]] = None
    for line in lines:
        text = normalize_for_match(" ".join(w.text for w in line))
        if not text:
            continue
        for face in form_faces():
            title = normalize_for_match(face.title)
            ratio = similarity_ratio(text[: len(title) + 6], title)
            if best is None or ratio > best[0]:
                best = (ratio, face)
    if best is None or best[0] < 0.6:
        return None
    return best[1]


def descriptor_extractions(
    doc: Document,
    units: Sequence[TextUnit],
    min_ratio: float = 0.8,
) -> List[Extraction]:
    """D1 extraction over text units: find each field descriptor as a
    fuzzy word subsequence; the following words are the value.

    Localisation is the enclosure of the matched descriptor + value
    words, so a correct match localises to the form row even when the
    linearisation interleaved the two form columns.
    """
    face = identify_face_from_text(doc)
    if face is None:
        return []
    out: List[Extraction] = []
    for field in face.fields:
        found: Optional[Extraction] = None
        for unit in units:
            span = find_descriptor_span(unit.words, field.descriptor, min_ratio)
            if span is None:
                continue
            start_w, end_w, ratio = span
            value_ws = unit.words[end_w : end_w + 3]
            # The value ends at the next line-number-like token (the
            # neighbouring column's row begins there).
            value: List[TextElement] = []
            for w in value_ws:
                if value and w.text.isdigit() and len(w.text) <= 2:
                    break
                value.append(w)
            if not value:
                continue
            box = enclosing_bbox([w.bbox for w in unit.words[start_w:end_w] + value])
            found = Extraction(
                field.entity_type,
                " ".join(w.text for w in value),
                box,
                box,
                ratio,
            )
            break
        if found is not None:
            out.append(found)
    return out

