"""Baseline: supervised ML over HTML features (Zhou et al. [49]).

"Every non-HTML document needs to be converted to HTML format for this
approach.  Hence it could not be applied for the first dataset D1.
...we only consider those documents in D2 that are in PDF format"
(§6.4).  Candidates are leaf DOM nodes; a softmax classifier over DOM +
textual features assigns entity types; the top-probability node per
entity is extracted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.extraction.features import candidate_dom_nodes, dom_feature_vector
from repro.baselines.segmentation.vips import html_convert
from repro.core.select import Extraction
from repro.doc import Document
from repro.html import HtmlNode
from repro.ml import SoftmaxRegression, StandardScaler

_OTHER = "__other__"


def _html_view(doc: Document) -> Optional[HtmlNode]:
    if doc.html is not None:
        return doc.html
    if doc.source == "pdf":
        return html_convert(doc)
    return None


class MlBasedExtractor:
    """Fit on annotated documents, extract from unseen ones."""

    def __init__(self, dataset: str, seed: int = 0):
        self.dataset = dataset.upper()
        if self.dataset == "D1":
            raise ValueError("the ML-based baseline cannot be applied to D1 (no HTML view)")
        self.seed = seed
        self.model: Optional[SoftmaxRegression] = None
        self.scaler = StandardScaler()

    def applicable(self, doc: Document) -> bool:
        """Whether the document has (or can be converted to) an HTML view."""
        return _html_view(doc) is not None

    # ------------------------------------------------------------------
    def fit(self, train_docs: Sequence[Document]) -> "MlBasedExtractor":
        """Train the DOM-node classifier on annotated documents."""
        features: List[np.ndarray] = []
        labels: List[str] = []
        for doc in train_docs:
            root = _html_view(doc)
            if root is None:
                continue
            for node in candidate_dom_nodes(root):
                features.append(dom_feature_vector(node, root, doc.width, doc.height))
                labels.append(self._label_for(node, doc))
        if not features or len(set(labels)) < 2:
            raise ValueError("not enough labelled HTML nodes to train on")
        x = self.scaler.fit_transform(np.stack(features))
        self.model = SoftmaxRegression(epochs=250, learning_rate=0.6).fit(x, labels)
        return self

    @staticmethod
    def _label_for(node: HtmlNode, doc: Document) -> str:
        best: Tuple[float, str] = (0.0, _OTHER)
        for a in doc.annotations:
            if node.bbox is None:
                continue
            iou = node.bbox.iou(a.bbox)
            if iou > max(best[0], 0.4):
                best = (iou, a.entity_type)
        return best[1]

    # ------------------------------------------------------------------
    def extract(self, doc: Document) -> List[Extraction]:
        """Highest-probability DOM node per entity type."""
        if self.model is None:
            raise RuntimeError("fit() the extractor before extracting")
        root = _html_view(doc)
        if root is None:
            return []
        nodes = list(candidate_dom_nodes(root))
        if not nodes:
            return []
        x = self.scaler.transform(
            np.stack([dom_feature_vector(n, root, doc.width, doc.height) for n in nodes])
        )
        probs = self.model.predict_proba(x)
        classes = self.model.classes_
        out: List[Extraction] = []
        for k, entity_type in enumerate(classes):
            if entity_type == _OTHER:
                continue
            best = int(np.argmax(probs[:, k]))
            if probs[best, k] < 0.1:
                continue
            node = nodes[best]
            box = node.bbox if node.bbox is not None else doc.page_bbox
            out.append(
                Extraction(entity_type, node.text(), box, box, float(probs[best, k]))
            )
        return out
