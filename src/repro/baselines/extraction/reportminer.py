"""Baseline: ReportMiner-style positional masks [22].

A commercial human-in-the-loop tool: experts draw custom masks per
layout and the most appropriate rule is selected per document.  We
automate the expert: training documents (the paper's random 60%)
contribute one *rule set* each — a layout signature plus a mask box per
entity, taken from ground truth (the expert's drawing).  At test time
the nearest rule set by layout signature is applied verbatim: words
under each mask are the extraction.

This is exact on rigid layouts (D1's 20 faces ⇒ Table 7's 96.5/100)
and degrades with layout variability (D2/D3), the paper's observation
that "performance worsened as the variability in document layouts
increased".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.select import Extraction
from repro.doc import Document
from repro.geometry import BBox

_GRID = 8


def layout_signature(doc: Document) -> np.ndarray:
    """Word-count histogram over an ``_GRID × _GRID`` page grid, plus a
    character histogram of the first text line.

    The textual component is how the "most appropriate rule" is picked
    for near-identical layouts: the 20 D1 form faces share a row grid
    and differ only in their title line.
    """
    hist = np.zeros((_GRID, _GRID))
    for w in doc.text_elements:
        cx, cy = w.bbox.centroid
        col = min(int(cx / doc.width * _GRID), _GRID - 1)
        row = min(int(cy / doc.height * _GRID), _GRID - 1)
        if 0 <= col < _GRID and 0 <= row < _GRID:
            hist[row, col] += 1
    total = hist.sum()
    layout = (hist / total).ravel() if total else hist.ravel()

    from repro.doc.document import group_into_lines
    from repro.nlp.fuzzy import ocr_fold

    chars = np.zeros(36)
    lines = group_into_lines(doc.text_elements)
    if lines:
        title = ocr_fold(" ".join(w.text for w in lines[0]))
        for ch in title:
            if ch.isdigit():
                chars[int(ch)] += 1
            elif ch.isalpha():
                chars[10 + (ord(ch) - ord("a")) % 26] += 1
        if chars.sum():
            chars = chars / chars.sum()
    return np.concatenate([layout, 3.0 * chars])


@dataclass
class RuleSet:
    """Masks learned from one training document."""

    signature: np.ndarray
    masks: Dict[str, BBox]


class ReportMinerExtractor:
    """Nearest-rule-set mask application."""

    def __init__(self, dataset: str):
        self.dataset = dataset.upper()
        self.rule_sets: List[RuleSet] = []

    def fit(self, train_docs: Sequence[Document]) -> "ReportMinerExtractor":
        """Record one rule set (signature + GT masks) per training doc."""
        self.rule_sets = [
            RuleSet(
                layout_signature(doc),
                {a.entity_type: a.bbox for a in doc.annotations},
            )
            for doc in train_docs
            if doc.annotations
        ]
        if not self.rule_sets:
            raise ValueError("no annotated training documents")
        return self

    def _nearest(self, doc: Document) -> Optional[RuleSet]:
        if not self.rule_sets:
            return None
        signature = layout_signature(doc)
        distances = [
            float(np.abs(signature - rs.signature).sum()) for rs in self.rule_sets
        ]
        return self.rule_sets[int(np.argmin(distances))]

    def extract(self, doc: Document) -> List[Extraction]:
        """Apply the nearest rule set's masks, snapped to layout blocks."""
        rule_set = self._nearest(doc)
        if rule_set is None:
            return []
        from repro.ocr.layout_analysis import tesseract_blocks

        blocks = tesseract_blocks(doc)
        out: List[Extraction] = []
        for entity_type, mask in rule_set.masks.items():
            box = self._snap(mask, blocks)
            text = doc.text_of(box)
            if not text.strip():
                continue
            out.append(Extraction(entity_type, text, box, box, 0.6))
        return out

    @staticmethod
    def _snap(mask: BBox, blocks: List[BBox]) -> BBox:
        """Anchor a mask to the detected region it overlaps most —
        ReportMiner rules bind to layout regions, not raw pixels."""
        best = mask
        best_iou = 0.15
        for b in blocks:
            iou = mask.iou(b)
            if iou > best_iou:
                best, best_iou = b, iou
        return best
