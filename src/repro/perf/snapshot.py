"""``BENCH_*.json`` timing snapshots — the repo's perf trajectory.

One snapshot is a JSON file holding run parameters plus the per-stage
metrics of an instrumented corpus run.  ``python -m repro bench`` and
the ``bench_smoke`` pytest marker write them; ``compare`` diffs two
snapshots so a PR can show what it did to the hot path (see
``docs/PROFILING.md`` for the workflow).

Timestamps are intentionally absent: snapshots are committed artefacts
and byte-stable output keeps their diffs reviewable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.perf.metrics import PipelineMetrics

#: Bumped when the JSON layout changes incompatibly.  ``/2`` added the
#: optional per-stage ``hist``/``max_seconds`` latency-histogram fields;
#: ``/1`` snapshots (no histograms) still load.
SCHEMA = "repro.bench.pipeline/2"

#: Older layouts :func:`load_snapshot` still accepts.
COMPATIBLE_SCHEMAS = (SCHEMA, "repro.bench.pipeline/1")


def write_snapshot(
    path: Union[str, pathlib.Path],
    metrics: PipelineMetrics,
    **meta: object,
) -> pathlib.Path:
    """Write ``metrics`` (plus free-form run ``meta``) as JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "meta": dict(sorted(meta.items())),
        "stages": metrics.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_snapshot(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    """Load a snapshot; raises ``ValueError`` on a foreign schema."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") not in COMPATIBLE_SCHEMAS:
        raise ValueError(f"{path}: unknown snapshot schema {data.get('schema')!r}")
    return data


def metrics_of(snapshot: Dict[str, object]) -> PipelineMetrics:
    return PipelineMetrics.from_dict(snapshot["stages"])  # type: ignore[arg-type]


def delta_line(
    baseline: Dict[str, object],
    metrics: PipelineMetrics,
    stages: Optional[List[str]] = None,
    mode: Optional[str] = None,
) -> str:
    """One-line per-stage delta of a live run vs a committed snapshot.

    ``repro bench`` prints this after its table so a run immediately
    shows its drift against ``benchmarks/results/BENCH_pipeline.json``
    without a separate compare step.  Defaults to the union of both
    snapshots' top-level stages (sub-stages stay in the table), so a
    stage that *disappeared* from the live run is reported as
    ``removed`` rather than silently skipped.  Each cell carries the
    total-seconds delta and, when both sides have latency histograms,
    the p95 delta.  This line is advisory output — it must never crash
    a bench run, so an explicitly requested stage neither side recorded
    shows as ``(not measured)`` and a stage absent from the committed
    baseline shows as ``new``.

    ``mode`` is the live run's contract mode (``off`` / ``checked`` /
    ``ledger-skip``, see :func:`repro.analysis.contracts.
    contracts_mode`).  When it differs from the baseline's recorded
    ``contracts`` meta the line is prefixed with a not-comparable
    label: a ledger-skip run beating a contract-checked baseline is
    the proof layer working, not the pipeline speeding up.
    """
    prefix = "vs committed baseline: "
    if mode is not None:
        meta = baseline.get("meta")
        base_mode = meta.get("contracts", "off") if isinstance(meta, dict) else "off"
        if base_mode != mode:
            prefix = (
                f"vs committed baseline [NOT COMPARABLE: baseline contracts="
                f"{base_mode}, this run contracts={mode}]: "
            )
    base = metrics_of(baseline).stages
    if stages is None:
        stages = sorted(
            n for n in set(metrics.stages) | set(base) if "." not in n
        )
    parts: List[str] = []
    for name in stages:
        in_base = name in base
        if name not in metrics.stages:
            if in_base:
                parts.append(f"{name} (removed; was {base[name].seconds:.3f}s)")
            else:
                parts.append(f"{name} (not measured)")
            continue
        curr = metrics.stages[name]
        if not in_base:
            parts.append(f"{name} {curr.seconds:.3f}s (new)")
            continue
        b = base[name].seconds
        pct = (curr.seconds - b) / b * 100.0 if b > 0 else 0.0
        cell = f"{name} {curr.seconds:.3f}s ({pct:+.0f}%"
        base_p95 = base[name].quantile_seconds(0.95)
        curr_p95 = curr.quantile_seconds(0.95)
        if base_p95 is not None and curr_p95 is not None and base_p95 > 0:
            p95_pct = (curr_p95 - base_p95) / base_p95 * 100.0
            cell += f", p95 {p95_pct:+.0f}%"
        parts.append(cell + ")")
    return prefix + ("  ".join(parts) if parts else "(no stages)")


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = 0.10,
) -> List[str]:
    """Human-readable per-stage deltas (current vs baseline).

    Lines are emitted for every stage present in either snapshot;
    changes beyond ``threshold`` (fractional) are flagged with
    ``SLOWER``/``faster`` so a glance finds the regressions.
    """
    base = metrics_of(baseline).stages
    curr = metrics_of(current).stages
    lines: List[str] = []
    for name in sorted(set(base) | set(curr)):
        b: Optional[float] = base[name].seconds if name in base else None
        c: Optional[float] = curr[name].seconds if name in curr else None
        if b is None:
            lines.append(f"{name:22s} new stage          ({c:.3f}s)")
        elif c is None:
            lines.append(f"{name:22s} stage removed      (was {b:.3f}s)")
        else:
            delta = (c - b) / b if b > 0 else 0.0
            flag = ""
            if delta > threshold:
                flag = "  SLOWER"
            elif delta < -threshold:
                flag = "  faster"
            lines.append(f"{name:22s} {b:8.3f}s -> {c:8.3f}s ({delta:+6.1%}){flag}")
    return lines
