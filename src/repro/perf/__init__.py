"""Performance layer: instrumentation, memoisation, parallel execution.

Three pieces, each usable alone:

* :mod:`repro.perf.metrics` — :class:`StageTimer` /
  :class:`PipelineMetrics`, the per-stage wall-time/call/item
  accumulator threaded through the pipeline;
* :mod:`repro.perf.cache` — :class:`TranscriptionCache`, memoising the
  OCR-transcription + deskew step keyed by ``(seed, doc_id)``;
* :mod:`repro.perf.runner` — :class:`CorpusRunner`, the process-pool
  corpus executor with chunked dispatch, deterministic result ordering
  and per-document error isolation;
* :mod:`repro.perf.profiles` — :class:`RegionProfile` /
  :class:`ProfileStore`, the prefix-sum projection profiles behind the
  ``segment.cuts`` fast path (see ``docs/PERFORMANCE.md``).

See ``docs/ARCHITECTURE.md`` for where each hooks into the pipeline and
``docs/PROFILING.md`` for the operator's view (``--workers`` /
``--profile`` and ``BENCH_*.json`` snapshots).
"""

from repro.perf.cache import TranscriptionCache, transcribe_and_clean
from repro.perf.metrics import PipelineMetrics, StageStats, StageTimer, merge_all
from repro.perf.profiles import ProfileStore, RegionProfile
from repro.perf.runner import (
    CorpusRunError,
    CorpusRunner,
    CorpusRunResult,
    DocumentFailure,
    WarmProcessPool,
)
from repro.perf.snapshot import compare, delta_line, load_snapshot, write_snapshot

__all__ = [
    "ProfileStore",
    "RegionProfile",
    "compare",
    "delta_line",
    "load_snapshot",
    "write_snapshot",
    "CorpusRunError",
    "CorpusRunner",
    "CorpusRunResult",
    "DocumentFailure",
    "PipelineMetrics",
    "StageStats",
    "StageTimer",
    "TranscriptionCache",
    "WarmProcessPool",
    "merge_all",
    "transcribe_and_clean",
]
