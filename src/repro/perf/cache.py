"""Historical import path for the transcription cache.

The cache lives in :mod:`repro.ocr.cache` — the layer that owns the
clean step — so ``repro.core`` can import it without depending on
``repro.perf``.  This module re-exports it for existing callers.
"""

from __future__ import annotations

from repro.ocr.cache import CleanedView, TranscriptionCache, transcribe_and_clean

__all__ = ["CleanedView", "TranscriptionCache", "transcribe_and_clean"]
