"""Parallel corpus execution with per-document error isolation.

:class:`CorpusRunner` fans a corpus out across a process pool and runs
the full VS2 pipeline on every document:

* **chunked dispatch** — documents are submitted in contiguous chunks
  (default ``ceil(n / (workers * 4))`` per chunk) so scheduling
  overhead amortises while stragglers still rebalance;
* **deterministic ordering** — results come back aligned with the
  input order regardless of which worker finished first, so a parallel
  run is byte-identical to a serial one (the pipeline itself is fully
  seeded);
* **error isolation** — a document that raises mid-pipeline becomes a
  :class:`DocumentFailure` in :attr:`CorpusRunResult.failures` (and a
  ``None`` at its slot in :attr:`CorpusRunResult.results`) instead of
  killing the run;
* **instrumentation** — every worker accumulates
  :class:`~repro.perf.metrics.PipelineMetrics` and the parent merges
  them, so ``--profile`` tables cover the whole run.

``workers <= 1`` runs serially in-process through the exact same
bookkeeping, which is also the fallback when the platform cannot spawn
processes (restricted sandboxes).
"""

from __future__ import annotations

import builtins
import logging
import math
import os
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import (
    MetricRegistry,
    get_registry,
    ingest_pipeline_metrics,
)
from repro.obs.resources import sample_resources
from repro.perf.cache import TranscriptionCache
from repro.perf.metrics import PipelineMetrics
from repro.resilience import faults as _faults
from repro.trace import NULL_TRACER, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids core import cycle)
    from repro.core.config import VS2Config
    from repro.core.pipeline import PipelineResult, VS2Pipeline
    from repro.doc import Document
    from repro.resilience.faults import FaultPlan
    from repro.resilience.supervisor import SupervisionPolicy, SupervisionReport

_LOG = logging.getLogger("repro.perf.runner")

#: Builds the pipeline a worker runs; must be picklable (a module-level
#: function) when ``workers > 1``.
PipelineFactory = Callable[[], "VS2Pipeline"]


@dataclass(frozen=True)
class DocumentFailure:
    """One document that raised mid-pipeline, with enough context to
    reproduce it (``python -m repro extract`` on the same seed/doc).

    ``doc_index`` is the document's position in the submitted corpus
    (``-1`` when unknown); ``ocr_seed`` the engine seed the failing
    pipeline was built with; ``span_path`` the deepest open trace span
    at the moment the exception unwound (empty when tracing was off);
    ``transient`` marks failures worth retrying (an injected
    :class:`~repro.resilience.faults.TransientFault`, a watchdog
    timeout, a worker crash) — the supervised runner's retry budget
    applies only to these.
    """

    doc_id: str
    error_type: str
    message: str
    traceback: str
    doc_index: int = -1
    span_path: str = ""
    ocr_seed: Optional[int] = None
    transient: bool = False

    def __str__(self) -> str:
        where = f"doc[{self.doc_index}] {self.doc_id}" if self.doc_index >= 0 else self.doc_id
        out = f"{where}: {self.error_type}: {self.message}"
        if self.span_path:
            out += f" (at {self.span_path})"
        if self.ocr_seed is not None:
            out += f" [ocr_seed={self.ocr_seed}]"
        return out


class CorpusRunError(RuntimeError):
    """A corpus run's first per-document failure, re-raised.

    Carries the full :class:`DocumentFailure` (``.failure``) and the
    original exception class name (``.error_type``) so callers of the
    fail-fast path can still dispatch on what actually went wrong.
    """

    def __init__(self, failure: DocumentFailure):
        super().__init__(
            f"pipeline failed on {failure.doc_id}: "
            f"{failure.error_type}: {failure.message}\n{failure.traceback}"
        )
        self.failure = failure
        self.error_type = failure.error_type


@dataclass
class CorpusRunResult:
    """Everything one corpus run produces.

    ``results[i]`` corresponds to ``docs[i]`` of the input — ``None``
    where that document failed (its :class:`DocumentFailure` is in
    ``failures``, in input order).  ``degrade_reason`` is non-``None``
    when a parallel run silently would have fallen back to serial — the
    runner now records why (no process support, pool exhaustion).
    ``supervision`` is populated only by supervised runs (see
    :mod:`repro.resilience.supervisor`).
    """

    results: List[Optional["PipelineResult"]]
    failures: List[DocumentFailure] = field(default_factory=list)
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    degrade_reason: Optional[str] = None
    supervision: Optional["SupervisionReport"] = None
    registry: MetricRegistry = field(default_factory=MetricRegistry)

    @property
    def ok(self) -> List["PipelineResult"]:
        """The successful results, input order preserved."""
        return [r for r in self.results if r is not None]

    def raise_first(self) -> None:
        """Re-raise the first failure (for callers that want the old
        fail-fast ``run_corpus`` semantics).  The raised
        :class:`CorpusRunError` is chained ``from`` an instance of the
        original exception type when that type is resolvable, so
        ``except`` clauses and logs see the real cause."""
        if not self.failures:
            return
        f = self.failures[0]
        cause_type = getattr(builtins, f.error_type, None)
        if isinstance(cause_type, type) and issubclass(cause_type, BaseException):
            raise CorpusRunError(f) from cause_type(f.message)
        raise CorpusRunError(f)


# ----------------------------------------------------------------------
# Worker-side machinery (module level so the spawn start method works)
# ----------------------------------------------------------------------
_WORKER_PIPELINE: Optional["VS2Pipeline"] = None
_WORKER_TRACER = NULL_TRACER


def _default_factory(
    dataset: str, config: Optional["VS2Config"], tracer=NULL_TRACER
) -> "VS2Pipeline":
    from repro.core.pipeline import VS2Pipeline

    return VS2Pipeline(
        dataset, config=config, cache=TranscriptionCache(), tracer=tracer
    )


def _init_worker(  # conc: ambient - per-process setup is the point of an initializer
    dataset: str,
    config: Optional["VS2Config"],
    factory: Optional[PipelineFactory],
    trace_enabled: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
) -> None:
    """Process-pool initialiser: build this worker's pipeline once.

    When the parent traces, each worker gets its own :class:`Tracer`;
    its drained span buffers travel back with every chunk result and
    are re-parented under the parent's ``corpus`` span.  A fault plan
    is installed non-preemptible: pool workers cannot be individually
    killed, so ``hang``/``crash`` faults simulate as transient raises
    (the supervised runner's hand-managed workers run them for real).
    """
    global _WORKER_PIPELINE, _WORKER_TRACER
    get_registry().drain()  # fork-inherited ambient samples belong to the parent
    _WORKER_TRACER = Tracer() if trace_enabled else NULL_TRACER
    if fault_plan is not None:
        _faults.install(fault_plan, tracer=_WORKER_TRACER)
    _WORKER_PIPELINE = (
        factory()
        if factory is not None
        else _default_factory(dataset, config, tracer=_WORKER_TRACER)
    )


def _run_one(
    pipeline: "VS2Pipeline",
    index: int,
    doc: "Document",
    tracer=NULL_TRACER,
    attempt: int = 1,
) -> Tuple[int, Optional["PipelineResult"], Optional[DocumentFailure]]:
    attrs: Dict[str, Any] = {"index": index, "doc_id": doc.doc_id}
    if attempt > 1:
        attrs["attempt"] = attempt
    corpus = getattr(pipeline, "dataset", "?")
    registry = get_registry()
    try:
        with _faults.doc_scope(doc.doc_id, index, attempt):
            with tracer.span("doc", **attrs):
                _faults.fault_site("worker.chunk")
                result = pipeline.run(doc)
        registry.counter("repro.docs.processed", corpus=corpus, status="ok").inc()
        for degradation in getattr(result, "degradations", ()):
            registry.counter(
                "repro.doc.degradations", corpus=corpus, stage=degradation.stage
            ).inc()
        return index, result, None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        failure = DocumentFailure(
            doc_id=doc.doc_id,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=_traceback.format_exc(),
            doc_index=index,
            span_path=tracer.consume_error_path(exc) or "",
            ocr_seed=getattr(getattr(pipeline, "config", None), "ocr_seed", None),
            transient=isinstance(exc, _faults.TransientFault),
        )
        registry.counter("repro.docs.processed", corpus=corpus, status="failed").inc()
        registry.counter(
            "repro.doc.failures", corpus=corpus, error_type=failure.error_type
        ).inc()
        return index, None, failure


def _emit_cache_counters(pipeline: "VS2Pipeline", before: Tuple[int, int]) -> None:
    """Record transcription-cache hits/misses accrued since ``before``
    into the ambient registry (cumulative cache counters need delta
    accounting so repeated chunks never double-count)."""
    cache = getattr(pipeline, "cache", None)
    if cache is None:
        return
    registry = get_registry()
    hits = getattr(cache, "hits", 0) - before[0]
    misses = getattr(cache, "misses", 0) - before[1]
    if hits:
        registry.counter("repro.ocr.cache", outcome="hit").inc(hits)
    if misses:
        registry.counter("repro.ocr.cache", outcome="miss").inc(misses)


def _cache_counts(pipeline: "VS2Pipeline") -> Tuple[int, int]:
    cache = getattr(pipeline, "cache", None)
    return (getattr(cache, "hits", 0), getattr(cache, "misses", 0))


def _run_chunk(chunk: List[Tuple[int, "Document"]]):
    """Run one chunk in a worker; returns per-doc outcomes plus the
    metrics, trace spans and metric-registry dump accumulated *by this
    chunk* (all drained, so successive chunks in the same worker never
    double-count)."""
    assert _WORKER_PIPELINE is not None, "worker initialiser did not run"
    cache_before = _cache_counts(_WORKER_PIPELINE)
    out = [_run_one(_WORKER_PIPELINE, index, doc, _WORKER_TRACER) for index, doc in chunk]
    _emit_cache_counters(_WORKER_PIPELINE, cache_before)
    sample_resources(get_registry(), worker=f"pid{os.getpid()}")
    spans = [span.to_dict() for span in _WORKER_TRACER.drain()]
    registry_dump = get_registry().drain().to_dict()
    return out, _WORKER_PIPELINE.metrics.drain().to_dict(), spans, registry_dump


def _warm_worker(spin_s: float) -> int:
    """Warm-up task for :meth:`WarmProcessPool.boot`: occupy a worker
    long enough that concurrent warm-up submissions cannot be served by
    an idle worker and force the executor to spawn fresh ones."""
    deadline = time.perf_counter() + spin_s
    spins = 0
    while time.perf_counter() < deadline:
        spins += 1
    return spins


# ----------------------------------------------------------------------
# The warm pool
# ----------------------------------------------------------------------
class WarmProcessPool:
    """A persistent process pool whose workers boot the pipeline once.

    :meth:`CorpusRunner._run_parallel` historically constructed a fresh
    :class:`ProcessPoolExecutor` per run, paying worker boot (embedding
    tables, pattern libraries, holdout mining) on every call.  A
    ``WarmProcessPool`` hoists that pool out of the runner: build one,
    hand it to any number of :class:`CorpusRunner` instances via the
    ``pool`` parameter, and the same already-initialised workers serve
    every run until :meth:`close`.

    The pool owns the worker-side initialisation arguments (dataset,
    config, factory, tracing, fault plan) — runners sharing the pool
    must be built consistently with them, since ``_init_worker`` runs
    once per worker, not once per run.  Chunk results still drain the
    worker-side tracer/metrics/registry per chunk, so successive runs
    through one pool never double-count.

    The executor boots lazily on first :meth:`executor` call and boots
    again transparently after :meth:`close` — a drained server can be
    restarted.  Not thread-safe for concurrent first boot; callers
    (the serve layer) boot it before starting any request threads.
    """

    def __init__(
        self,
        dataset: str,
        config: Optional["VS2Config"] = None,
        workers: int = 2,
        pipeline_factory: Optional[PipelineFactory] = None,
        trace_enabled: bool = False,
        fault_plan: Optional["FaultPlan"] = None,
    ):
        self.dataset = dataset.upper()
        self.config = config
        self.workers = max(1, int(workers))
        self.pipeline_factory = pipeline_factory
        self.trace_enabled = bool(trace_enabled)
        self.fault_plan = fault_plan
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, booting it on first use.  Raises
        ``OSError``/``ValueError`` when the platform cannot spawn
        processes — callers degrade exactly as for a cold pool."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.dataset,
                    self.config,
                    self.pipeline_factory,
                    self.trace_enabled,
                    self.fault_plan,
                ),
            )
        return self._executor

    def boot(self) -> "WarmProcessPool":
        """Force the executor *and every worker process* to exist now.

        ``ProcessPoolExecutor`` forks workers lazily — one per
        submission that finds no idle worker — so merely creating the
        executor would still fork workers on the first real run.  For
        the serve layer that first run happens after the event loop and
        its threads exist, and a child forked then can inherit a held
        lock and deadlock.  The warm-up rounds keep every live worker
        busy while submitting, so each extra submission must spawn a
        fresh process; the private ``_processes`` peek is only a stop
        condition (when the attribute is missing the rounds just run to
        the cap)."""
        executor = self.executor()
        for _ in range(8):
            processes = getattr(executor, "_processes", None)
            if processes is not None and len(processes) >= self.workers:
                break
            futures = [
                executor.submit(_warm_worker, 0.05) for _ in range(self.workers)
            ]
            for future in futures:
                future.result()
        return self

    @property
    def booted(self) -> bool:
        return self._executor is not None

    def close(self) -> None:
        """Shut the executor down, joining every worker.  Idempotent;
        the pool can boot again afterwards."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "WarmProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class CorpusRunner:
    """Run the VS2 pipeline over a corpus, serially or across a pool.

    Parameters
    ----------
    dataset:
        ``"D1"`` / ``"D2"`` / ``"D3"`` — which pipeline wiring to build.
    config:
        Optional :class:`~repro.core.config.VS2Config` override (must be
        picklable when ``workers > 1``).
    workers:
        Process count.  ``<= 1`` runs serially in-process.
    chunk_size:
        Documents per dispatched chunk; default balances ~4 chunks per
        worker.
    cache:
        A :class:`TranscriptionCache` for the serial path (workers own
        private caches — transcription is deterministic, so this only
        affects speed, never results).
    pipeline_factory:
        Custom pipeline builder (e.g. for tests or alternative
        configs).  Must be a picklable callable when ``workers > 1``.
    tracer:
        A :class:`repro.trace.Tracer` receiving the run's hierarchical
        spans (``corpus > doc[i] > stage``) and decision events.
        Workers trace into private buffers that are re-parented here in
        deterministic document order, so a normalised export of a
        parallel run is byte-identical to the serial one.
    fault_plan:
        A :class:`~repro.resilience.faults.FaultPlan` to install for
        the run (parent process for serial runs, each worker for
        parallel ones).  The plan's schedule is seeded per document, so
        serial and parallel runs see identical faults.
    supervision:
        A :class:`~repro.resilience.supervisor.SupervisionPolicy`.
        When set, :meth:`run` executes under the supervised layer:
        per-document timeouts with worker replacement, retry of
        transient failures, quarantine and checkpoint/resume.
    registry:
        A :class:`repro.obs.registry.MetricRegistry` receiving the
        run's labeled metrics (doc outcomes, stage accounting,
        resilience decisions, resource high-water marks).  Workers emit
        into their process-local registry; drained dumps ride each
        chunk result and fold in here, so a serial and a parallel run
        produce the same normalized dump (docs/OBSERVABILITY.md).
        A fresh registry is created when not given.
    pool:
        A :class:`WarmProcessPool` to run parallel chunks on instead of
        constructing (and tearing down) a private executor.  The pool's
        worker count governs ``workers``; its boot arguments govern the
        worker-side pipelines, so build the runner consistently with
        them.  Ignored on the serial path and under ``supervision``
        (supervised runs hand-manage their own preemptible workers).
        The runner never shuts a shared pool down — its owner does.
    """

    def __init__(
        self,
        dataset: str,
        config: Optional["VS2Config"] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        cache: Optional[TranscriptionCache] = None,
        pipeline_factory: Optional[PipelineFactory] = None,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional["FaultPlan"] = None,
        supervision: Optional["SupervisionPolicy"] = None,
        registry: Optional[MetricRegistry] = None,
        pool: Optional[WarmProcessPool] = None,
    ):
        self.dataset = dataset.upper()
        self.config = config
        self.pool = pool
        self.workers = max(1, int(workers if pool is None else pool.workers))
        self.chunk_size = chunk_size
        self.cache = cache
        self.pipeline_factory = pipeline_factory
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_plan = fault_plan
        self.supervision = supervision
        self.registry = registry if registry is not None else MetricRegistry()
        self._serial_pipeline: Optional["VS2Pipeline"] = None

    # ------------------------------------------------------------------
    def run(self, docs: Sequence["Document"]) -> CorpusRunResult:
        """Process every document; never raises for a per-document
        pipeline error (see :class:`CorpusRunResult`)."""
        docs = list(docs)
        get_registry().drain()  # discard ambient samples stranded by earlier runs
        if self.supervision is not None:
            from repro.resilience.supervisor import run_supervised

            return run_supervised(self, docs)
        metrics = PipelineMetrics()
        degrade_reason: Optional[str] = None
        with metrics.stage("corpus") as t, self.tracer.span(
            "corpus", dataset=self.dataset, docs=len(docs)
        ):
            t.items = len(docs)
            if self.workers <= 1 or len(docs) <= 1:
                slots, failures = self._run_serial(docs, metrics)
            else:
                slots, failures, degrade_reason = self._run_parallel(docs, metrics)
        failures.sort(key=lambda f: (f.doc_index, f.doc_id))
        # Parent-side emissions (serial docs, in-process faults) sit in
        # the ambient registry; fold them plus the stage accounting and
        # this process's resource high-water marks into the run registry.
        self.registry.merge(get_registry().drain())
        ingest_pipeline_metrics(metrics, self.registry)
        sample_resources(self.registry, worker="main")
        return CorpusRunResult(
            results=slots,
            failures=failures,
            metrics=metrics,
            degrade_reason=degrade_reason,
            registry=self.registry,
        )

    # ------------------------------------------------------------------
    def _serial(self) -> "VS2Pipeline":
        if self._serial_pipeline is None:
            from repro.core.pipeline import VS2Pipeline

            if self.pipeline_factory is not None:
                self._serial_pipeline = self.pipeline_factory()
            else:
                self._serial_pipeline = VS2Pipeline(
                    self.dataset,
                    config=self.config,
                    cache=self.cache or TranscriptionCache(),
                    tracer=self.tracer,
                )
        return self._serial_pipeline

    def _run_serial(self, docs, metrics):
        pipeline = self._serial()
        pipeline.metrics.drain()  # only this run's samples
        slots: List[Optional["PipelineResult"]] = [None] * len(docs)
        failures: List[DocumentFailure] = []
        installed = False
        if self.fault_plan is not None and not _faults.is_installed():
            _faults.install(self.fault_plan, tracer=self.tracer)
            installed = True
        cache_before = _cache_counts(pipeline)
        try:
            for index, doc in enumerate(docs):
                _, result, failure = _run_one(pipeline, index, doc, self.tracer)
                slots[index] = result
                if failure is not None:
                    failures.append(failure)
        finally:
            if installed:
                _faults.uninstall()
        _emit_cache_counters(pipeline, cache_before)
        metrics.merge(pipeline.metrics.drain())
        return slots, failures

    def _run_parallel(self, docs, metrics):
        chunk_size = self.chunk_size or max(
            1, math.ceil(len(docs) / (self.workers * 4))
        )
        chunks = [
            list(enumerate(docs))[i : i + chunk_size]
            for i in range(0, len(docs), chunk_size)
        ]
        workers = min(self.workers, len(chunks))
        slots: List[Optional["PipelineResult"]] = [None] * len(docs)
        failures: List[DocumentFailure] = []
        owned = self.pool is None
        try:
            if owned:
                executor = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(
                        self.dataset,
                        self.config,
                        self.pipeline_factory,
                        self.tracer.enabled,
                        self.fault_plan,
                    ),
                )
            else:
                executor = self.pool.executor()
        except (OSError, ValueError) as exc:  # no process support: degrade, don't die
            reason = f"{type(exc).__name__}: {exc}"
            _LOG.warning(
                "parallel corpus run degraded to serial (%s workers unavailable): %s",
                workers, reason,
            )
            self.tracer.event("runner.degrade", reason=reason, to="serial")
            slots, failures = self._run_serial(docs, metrics)
            return slots, failures, reason
        adopted: List[Span] = []
        try:
            pending = {executor.submit(_run_chunk, chunk) for chunk in chunks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcomes, chunk_metrics, chunk_spans, chunk_registry = future.result()
                    metrics.merge(PipelineMetrics.from_dict(chunk_metrics))
                    self.registry.merge(MetricRegistry.from_dict(chunk_registry))
                    adopted.extend(Span.from_dict(s) for s in chunk_spans)
                    for index, result, failure in outcomes:
                        slots[index] = result
                        if failure is not None:
                            failures.append(failure)
        finally:
            if owned:
                executor.shutdown()
        # Chunks complete in whichever order the pool schedules them;
        # re-parent worker spans sorted by document index so a traced
        # parallel run is structurally identical to the serial one.
        adopted.sort(key=lambda s: (s.attrs.get("index", -1), s.name))
        for span in adopted:
            self.tracer.adopt(span)
        return slots, failures, None
