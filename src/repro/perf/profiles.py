"""Perf-layer face of the projection-profile fast path.

The implementation lives in :mod:`repro.geometry.profiles` — the base
layer — so ``repro.core`` can use it without importing ``repro.perf``
(the ``LAYER001`` contract), exactly like :mod:`repro.perf.metrics`
re-exports :mod:`repro.instrument`.  Import from here when writing
perf tooling; import from ``repro.geometry`` inside the pipeline.
"""

from __future__ import annotations

from repro.geometry.profiles import (
    ProfileStore,
    RegionProfile,
    runs_of_flags,
)

__all__ = ["ProfileStore", "RegionProfile", "runs_of_flags"]
