"""Historical import path for the per-stage instrumentation.

The accumulator lives in :mod:`repro.instrument` (base layer, importable
from ``repro.core`` without violating the layering contract).  This
module re-exports it so existing callers and snapshots keep working.
"""

from __future__ import annotations

from repro.instrument import (
    STAGE_ORDER,
    PipelineMetrics,
    StageStats,
    StageTimer,
    merge_all,
)

__all__ = [
    "STAGE_ORDER",
    "PipelineMetrics",
    "StageStats",
    "StageTimer",
    "merge_all",
]
