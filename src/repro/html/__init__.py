"""A miniature HTML substrate.

Three of the paper's moving parts need HTML:

* the **holdout corpus** is populated by scraping fixed-format listing
  pages and running a custom web wrapper over them (§5.2.1, Table 2);
* the **VIPS baseline** (A4) segments HTML documents using tag-level
  cues [4];
* the **ML-based baseline** (Zhou et al. [49]) consumes HTML features,
  and dataset D3 is natively HTML.

This package provides a small DOM node type, a serialiser, a parser for
the HTML subset our synthetic websites emit, and the web wrapper used
to pull (entity, text) tuples out of fixed-format pages.
"""

from repro.html.dom import HtmlNode, el, text_of
from repro.html.parser import parse_html
from repro.html.wrapper import WrapperRule, extract_records

__all__ = ["HtmlNode", "el", "text_of", "parse_html", "WrapperRule", "extract_records"]
