"""DOM node type and serialisation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.geometry import BBox

Child = Union["HtmlNode", str]

#: Tags serialised without a closing tag.
VOID_TAGS = frozenset({"br", "hr", "img", "input", "meta", "link"})

#: Tags VIPS treats as block-level separators.
BLOCK_TAGS = frozenset(
    {
        "html", "body", "div", "p", "table", "tr", "td", "th", "ul", "ol",
        "li", "h1", "h2", "h3", "h4", "h5", "h6", "section", "header",
        "footer", "article", "aside", "form", "hr",
    }
)


@dataclass
class HtmlNode:
    """An element node.

    ``bbox`` is the rendered box when the DOM was produced alongside a
    layout (dataset D3) — ``None`` for scraped holdout pages, which are
    never rendered.
    """

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Child] = field(default_factory=list)
    bbox: Optional[BBox] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: Child) -> "HtmlNode":
        self.children.append(child)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    def walk(self) -> Iterator["HtmlNode"]:
        yield self
        for child in self.children:
            if isinstance(child, HtmlNode):
                yield from child.walk()

    def find_all(
        self, tag: Optional[str] = None, class_: Optional[str] = None
    ) -> List["HtmlNode"]:
        found = []
        for node in self.walk():
            if tag is not None and node.tag != tag:
                continue
            if class_ is not None and class_ not in node.classes:
                continue
            found.append(node)
        return found

    def find(self, tag: Optional[str] = None, class_: Optional[str] = None) -> Optional["HtmlNode"]:
        matches = self.find_all(tag, class_)
        return matches[0] if matches else None

    def text(self) -> str:
        """Concatenated text content, block tags separated by newlines."""
        parts: List[str] = []

        def visit(node: "HtmlNode") -> None:
            for child in node.children:
                if isinstance(child, str):
                    parts.append(child)
                else:
                    if child.tag in BLOCK_TAGS and parts and parts[-1] != "\n":
                        parts.append("\n")
                    visit(child)
                    if child.tag in BLOCK_TAGS and parts and parts[-1] != "\n":
                        parts.append("\n")

        visit(self)
        text = "".join(parts)
        lines = [ln.strip() for ln in text.split("\n")]
        return "\n".join(ln for ln in lines if ln)

    def is_block(self) -> bool:
        return self.tag in BLOCK_TAGS

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_html(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(f' {k}="{v}"' for k, v in self.attrs.items())
        if self.tag in VOID_TAGS:
            return f"{pad}<{self.tag}{attrs}>"
        if all(isinstance(c, str) for c in self.children):
            inner = "".join(self.children)  # type: ignore[arg-type]
            return f"{pad}<{self.tag}{attrs}>{_escape(inner)}</{self.tag}>"
        lines = [f"{pad}<{self.tag}{attrs}>"]
        for child in self.children:
            if isinstance(child, str):
                lines.append("  " * (indent + 1) + _escape(child))
            else:
                lines.append(child.to_html(indent + 1))
        lines.append(f"{pad}</{self.tag}>")
        return "\n".join(lines)


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def unescape(text: str) -> str:
    return text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")


def el(tag: str, *children: Child, **attrs: str) -> HtmlNode:
    """Terse element constructor: ``el('div', 'hi', class_='row')``."""
    clean_attrs = {k.rstrip("_").replace("_", "-"): v for k, v in attrs.items()}
    node = HtmlNode(tag, clean_attrs)
    for child in children:
        node.append(child)
    return node


def text_of(node: Optional[HtmlNode]) -> str:
    """Safe text extraction (empty string for ``None``)."""
    return node.text() if node is not None else ""
