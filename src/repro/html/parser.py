"""A small HTML parser (stack-based tokeniser).

Covers the subset our synthetic websites serialise: nested elements,
attributes in double quotes, void tags, text nodes and entity escapes.
Round-trips with :meth:`HtmlNode.to_html` — the property tests assert
``parse(serialize(dom)) ≡ dom`` up to whitespace.
"""

from __future__ import annotations

import re
from typing import List

from repro.html.dom import VOID_TAGS, HtmlNode, unescape

_TAG_RE = re.compile(r"<(/?)([a-zA-Z][a-zA-Z0-9]*)((?:\s+[a-zA-Z-]+=\"[^\"]*\")*)\s*(/?)>")
_ATTR_RE = re.compile(r'([a-zA-Z-]+)="([^"]*)"')


class HtmlParseError(ValueError):
    """Raised on malformed input (mismatched or stray tags)."""


def parse_html(source: str) -> HtmlNode:
    """Parse ``source`` into a DOM tree.

    A single root element is required; a virtual ``document`` root
    wraps multi-rooted input.
    """
    root = HtmlNode("document")
    stack: List[HtmlNode] = [root]
    pos = 0
    for m in _TAG_RE.finditer(source):
        text = source[pos : m.start()]
        if text.strip():
            stack[-1].append(unescape(text.strip()))
        pos = m.end()
        closing, tag, attr_blob, self_closing = m.groups()
        tag = tag.lower()
        if closing:
            if len(stack) < 2 or stack[-1].tag != tag:
                open_tag = stack[-1].tag if len(stack) > 1 else None
                raise HtmlParseError(f"mismatched </{tag}> (open: {open_tag})")
            stack.pop()
            continue
        attrs = dict(_ATTR_RE.findall(attr_blob))
        node = HtmlNode(tag, attrs)
        stack[-1].append(node)
        if not self_closing and tag not in VOID_TAGS:
            stack.append(node)
    tail = source[pos:]
    if tail.strip():
        stack[-1].append(unescape(tail.strip()))
    if len(stack) != 1:
        raise HtmlParseError(f"unclosed tag <{stack[-1].tag}>")
    real_children = [c for c in root.children if isinstance(c, HtmlNode)]
    if len(real_children) == 1 and not any(
        isinstance(c, str) and c.strip() for c in root.children
    ):
        return real_children[0]
    return root
