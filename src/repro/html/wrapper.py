"""The custom web wrapper of the holdout pipeline (§5.2.1, step c).

Fixed-format listing pages render every record with the same tag/class
skeleton, so extraction is a matter of selecting the record container
and, inside each record, the element carrying each field.  A
:class:`WrapperRule` names those selectors; :func:`extract_records`
applies them — the Kushmerick-style wrapper induction the paper cites
[19], with the induction step done by the "expert" who wrote the rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.html.dom import HtmlNode


@dataclass(frozen=True)
class WrapperRule:
    """Selectors for one fixed-format page family.

    Attributes
    ----------
    record_selector:
        ``(tag, class)`` of the element wrapping one record; either
        member may be ``None`` to match any.
    field_selectors:
        field name → ``(tag, class)`` inside the record.
    """

    record_selector: Tuple[Optional[str], Optional[str]]
    field_selectors: Dict[str, Tuple[Optional[str], Optional[str]]] = field(
        default_factory=dict
    )


def extract_records(root: HtmlNode, rule: WrapperRule) -> List[Dict[str, str]]:
    """Apply ``rule`` to a page, returning one field dict per record.

    Records missing a field map it to ``""`` — holdout construction
    drops empties downstream.
    """
    tag, class_ = rule.record_selector
    records = []
    for container in root.find_all(tag, class_):
        # Skip containers nested inside another matching container (the
        # outermost match is the record).
        fields: Dict[str, str] = {}
        for name, (ftag, fclass) in rule.field_selectors.items():
            node = container.find(ftag, fclass)
            fields[name] = node.text() if node is not None else ""
        records.append(fields)
    return _drop_nested(root, rule, records)


def _drop_nested(
    root: HtmlNode, rule: WrapperRule, records: List[Dict[str, str]]
) -> List[Dict[str, str]]:
    tag, class_ = rule.record_selector
    containers = root.find_all(tag, class_)
    keep: List[Dict[str, str]] = []
    seen_ids = set()
    for container, record in zip(containers, records):
        inner_ids = {id(n) for n in container.walk()} - {id(container)}
        if id(container) in seen_ids:
            continue
        seen_ids |= inner_ids
        keep.append(record)
    return keep
