"""Non-dominated sorting and Pareto fronts.

Convention: **all objectives are maximised**.  Callers minimising an
objective (e.g. word density in §5.3.1) negate it before scoring.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.analysis.contracts import check_pareto_front, checked


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether point ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one.
    """
    if len(a) != len(b):
        raise ValueError("points must share dimensionality")
    no_worse = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return no_worse and strictly_better


@checked(post=lambda front, points: check_pareto_front(points, front))
def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:  # proof: assumed
    """Indices of the first-order (non-dominated) front.

    O(n² · d); the block counts VS2 feeds in are tens, not thousands.
    """
    n = len(points)
    front: List[int] = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i != j and dominates(points[j], points[i]):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def non_dominated_sort(points: Sequence[Sequence[float]]) -> List[List[int]]:
    """Deb's fast non-dominated sort: points partitioned into ranked
    fronts (front 0 = non-dominated)."""
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
            elif dominates(points[j], points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    k = 0
    while fronts[k]:
        next_front: List[int] = []
        for i in fronts[k]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        k += 1
        fronts.append(next_front)
    fronts.pop()  # trailing empty front
    return fronts


def crowding_distance(points: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance of each point within its set.

    Boundary points get ``inf``.  Useful for thinning a front while
    keeping its spread.
    """
    n = len(points)
    if n == 0:
        return []
    arr = np.asarray(points, dtype=float)
    distance = np.zeros(n)
    for d in range(arr.shape[1]):
        order = np.argsort(arr[:, d])
        lo, hi = arr[order[0], d], arr[order[-1], d]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            i = order[rank]
            distance[i] += (arr[order[rank + 1], d] - arr[order[rank - 1], d]) / span
    return distance.tolist()
