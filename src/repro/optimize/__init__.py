"""Multi-objective optimisation utilities.

Interest-point selection (§5.3.1) is an *optimal subset selection*
problem solved by non-dominated sorting [25]: logical blocks are scored
on three objectives and the first-order Pareto front is the selected
subset.  This package implements dominance tests, fast non-dominated
sorting into ranked fronts, and crowding distance (useful when a front
must be thinned).
"""

from repro.optimize.pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front,
)

__all__ = ["dominates", "pareto_front", "non_dominated_sort", "crowding_distance"]
