"""Ordered labelled trees for mining.

A :class:`MiningTree` is a flat preorder array of nodes with parent
links — the representation the miner's occurrence lists index into.
Trees round-trip through Zaki's string encoding (labels in preorder
with ``-1`` on backtrack), which is also how parse trees from
:mod:`repro.nlp.parse` enter the miner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class MiningTree:
    """An ordered labelled tree in preorder-array form.

    ``labels[i]`` is the label of node ``i``; ``parents[i]`` its parent
    index (``-1`` for the root); preorder order is the node index
    order.  ``children`` is derived and kept for traversal speed.
    """

    labels: List[str]
    parents: List[int]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.parents):
            raise ValueError("labels/parents length mismatch")
        if self.labels and self.parents[0] != -1:
            raise ValueError("node 0 must be the root")
        self.children: List[List[int]] = [[] for _ in self.labels]
        for i, p in enumerate(self.parents):
            if p >= i:
                raise ValueError("parents must precede children in preorder")
            if p >= 0:
                self.children[p].append(i)

    def __len__(self) -> int:
        return len(self.labels)

    def depth_of(self, node: int) -> int:
        d = 0
        while self.parents[node] >= 0:
            node = self.parents[node]
            d += 1
        return d

    def encode(self) -> Tuple[str, ...]:
        return encode_from_arrays(self.labels, self.parents)


def encode_from_arrays(labels: Sequence[str], parents: Sequence[int]) -> Tuple[str, ...]:
    """Zaki preorder/backtrack encoding of a preorder-array tree."""
    children: List[List[int]] = [[] for _ in labels]
    for i, p in enumerate(parents):
        if p >= 0:
            children[p].append(i)
    out: List[str] = []

    def visit(i: int) -> None:
        out.append(labels[i])
        for c in children[i]:
            visit(c)
        out.append("-1")

    if labels:
        visit(0)
        out.pop()
    return tuple(out)


def encode_tree(parse_node) -> Tuple[str, ...]:
    """Encode any object exposing ``label`` and ``children`` attributes
    (e.g. :class:`repro.nlp.parse.ParseNode`)."""
    out: List[str] = []

    def visit(node) -> None:
        out.append(node.label)
        for child in node.children:
            visit(child)
        out.append("-1")

    visit(parse_node)
    out.pop()
    return tuple(out)


def decode_tree(encoding: Sequence[str]) -> MiningTree:
    """Parse a Zaki encoding back into a :class:`MiningTree`."""
    labels: List[str] = []
    parents: List[int] = []
    stack: List[int] = []
    for symbol in encoding:
        if symbol == "-1":
            if not stack:
                raise ValueError(f"unbalanced encoding: {encoding!r}")
            stack.pop()
        else:
            if not stack and labels:
                raise ValueError(f"encoding has multiple roots: {encoding!r}")
            parent = stack[-1] if stack else -1
            labels.append(symbol)
            parents.append(parent)
            stack.append(len(labels) - 1)
    if len(stack) > 1:
        raise ValueError(f"encoding does not close to a single root: {encoding!r}")
    if not labels:
        raise ValueError("empty encoding")
    return MiningTree(labels, parents)


def contains_subtree(
    tree: MiningTree, pattern: MiningTree, embedded: bool = False
) -> bool:
    """Whether ``pattern`` occurs in ``tree`` as an ordered subtree.

    ``embedded=False`` — induced matching: pattern edges map to
    parent/child edges.  ``embedded=True`` — Zaki's embedded matching:
    pattern edges map to ancestor/descendant paths.  Both preserve the
    left-to-right order of siblings (gaps allowed).
    """

    def match_at(p: int, t: int) -> bool:
        """Can pattern subtree rooted at p match data subtree rooted at t
        (roots aligned)?"""
        if pattern.labels[p] != tree.labels[t]:
            return False
        return match_children(pattern.children[p], t)

    def candidate_roots(t: int) -> List[int]:
        """Data nodes where a pattern child may attach under data node t."""
        if not embedded:
            return tree.children[t]
        # embedded: any proper descendant of t, in preorder order
        out: List[int] = []
        stack = list(reversed(tree.children[t]))
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(reversed(tree.children[n]))
        return out

    def match_children(pattern_kids: List[int], t: int) -> bool:
        """Greedy-with-backtracking ordered matching of pattern children
        into the candidate attachment points under data node t."""
        candidates = candidate_roots(t)

        def backtrack(pi: int, start: int) -> bool:
            if pi == len(pattern_kids):
                return True
            for ci in range(start, len(candidates)):
                c = candidates[ci]
                if match_at(pattern_kids[pi], c):
                    nxt = _next_disjoint_index(candidates, ci, c)
                    if backtrack(pi + 1, nxt):
                        return True
            return False

        def _next_disjoint_index(cands: List[int], ci: int, used_root: int) -> int:
            """First candidate index after ``ci`` outside the subtree of
            ``used_root`` (keeps embedded sibling matches disjoint)."""
            if not embedded:
                return ci + 1
            end = used_root
            # subtree of used_root = contiguous preorder block
            stack = [used_root]
            while stack:
                n = stack.pop()
                end = max(end, n)
                stack.extend(tree.children[n])
            j = ci + 1
            while j < len(cands) and cands[j] <= end:
                j += 1
            return j

        return backtrack(0, 0)

    for t in range(len(tree)):
        if match_at(0, t):
            return True
    return False


def contains_encoded(
    tree_encoding: Sequence[str], pattern_encoding: Sequence[str], embedded: bool = False
) -> bool:
    """Containment test straight from encodings."""
    return contains_subtree(
        decode_tree(tree_encoding), decode_tree(pattern_encoding), embedded
    )
