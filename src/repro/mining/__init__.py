"""Frequent subtree mining.

VS2-Select learns its lexico-syntactic patterns by mining *maximal
frequent subtrees* across the annotated parse chunks of the holdout
corpus (§5.2.1, citing TreeMiner [47]).  This package implements
ordered labelled tree mining from scratch:

* :mod:`repro.mining.trees` — the mining tree representation, Zaki's
  preorder/backtrack string encoding, and induced/embedded ordered
  subtree containment tests;
* :mod:`repro.mining.treeminer` — frequent pattern enumeration by
  rightmost-path extension with occurrence lists (the FREQT/TreeMiner
  family), plus the maximality filter.
"""

from repro.mining.trees import MiningTree, contains_subtree, decode_tree, encode_tree
from repro.mining.treeminer import FrequentPattern, maximal_patterns, mine_frequent_subtrees

__all__ = [
    "MiningTree",
    "encode_tree",
    "decode_tree",
    "contains_subtree",
    "FrequentPattern",
    "mine_frequent_subtrees",
    "maximal_patterns",
]
