"""Frequent ordered-subtree mining by rightmost-path extension.

The enumeration strategy is the FREQT / TreeMiner family: every
frequent pattern with ``k`` nodes is grown from a frequent pattern with
``k−1`` nodes by attaching one new node to a node on the *rightmost
path*, which enumerates each ordered tree exactly once.  Occurrence
lists carry full pattern→data node mappings so extensions can be
validated locally without re-matching the whole pattern.

Support is transaction-based: the number of distinct data trees
containing the pattern (≥ ``min_support``).  :func:`maximal_patterns`
then keeps only patterns not contained in another frequent pattern —
the paper mines *maximal* frequent subtrees (§5.2.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.mining.trees import MiningTree, contains_subtree, decode_tree, encode_from_arrays


@dataclass(frozen=True)
class FrequentPattern:
    """A mined pattern: its encoding and transaction support."""

    encoding: Tuple[str, ...]
    support: int

    @property
    def size(self) -> int:
        return sum(1 for s in self.encoding if s != "-1")

    def tree(self) -> MiningTree:
        return decode_tree(self.encoding)

    def __str__(self) -> str:
        return f"{' '.join(self.encoding)}  (support={self.support})"


# An occurrence maps pattern node index -> data node index, stored as a
# tuple ordered by pattern node index.
_Occurrence = Tuple[int, ...]


class _Pattern:
    """Mutable pattern under construction (preorder arrays)."""

    __slots__ = ("labels", "parents")

    def __init__(self, labels: List[str], parents: List[int]):
        self.labels = labels
        self.parents = parents

    def rightmost_path(self) -> List[int]:
        """Pattern node indices from the root to the rightmost leaf."""
        path = [0]
        children: Dict[int, int] = {}
        for i, p in enumerate(self.parents):
            if p >= 0:
                children[p] = i  # last child in preorder = rightmost
        node = 0
        while node in children:
            node = children[node]
            path.append(node)
        return path

    def extend(self, attach_at: int, label: str) -> "_Pattern":
        return _Pattern(self.labels + [label], self.parents + [attach_at])

    def encode(self) -> Tuple[str, ...]:
        return encode_from_arrays(self.labels, self.parents)


def mine_frequent_subtrees(
    trees: Sequence[MiningTree],
    min_support: int,
    max_nodes: int = 8,
    max_patterns: int = 20000,
) -> List[FrequentPattern]:
    """All frequent induced ordered subtrees of ``trees``.

    Parameters
    ----------
    trees:
        The database of parse trees.
    min_support:
        Minimum number of distinct trees a pattern must occur in (≥ 1).
    max_nodes:
        Pattern size cap; syntactic patterns in Tables 3/4 are small, so
        8 is generous.
    max_patterns:
        Safety valve against pathological databases.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if not trees:
        return []

    results: List[FrequentPattern] = []

    # --- 1-node patterns -------------------------------------------------
    label_occurrences: Dict[str, Dict[int, List[_Occurrence]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for tid, tree in enumerate(trees):
        for node, label in enumerate(tree.labels):
            label_occurrences[label][tid].append((node,))

    frontier: List[Tuple[_Pattern, Dict[int, List[_Occurrence]]]] = []
    for label, occs in sorted(label_occurrences.items()):
        if len(occs) >= min_support:
            pattern = _Pattern([label], [-1])
            results.append(FrequentPattern(pattern.encode(), len(occs)))
            frontier.append((pattern, dict(occs)))

    # --- rightmost extension ---------------------------------------------
    while frontier:
        pattern, occurrences = frontier.pop()
        if len(pattern.labels) >= max_nodes:
            continue
        if len(results) >= max_patterns:
            break
        rightmost = pattern.rightmost_path()
        # Candidate extensions grouped by (attach position, new label).
        grouped: Dict[Tuple[int, str], Dict[int, List[_Occurrence]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for tid, occ_list in occurrences.items():
            tree = trees[tid]
            for occ in occ_list:
                rightmost_data = occ[-1]
                for attach_at in rightmost:
                    anchor = occ[attach_at]
                    for child in tree.children[anchor]:
                        # Rightmost growth: the new node must follow, in
                        # preorder, everything already matched.
                        if child <= rightmost_data:
                            continue
                        key = (attach_at, tree.labels[child])
                        grouped[key][tid].append(occ + (child,))
        for (attach_at, label), occs in sorted(grouped.items()):
            if len(occs) < min_support:
                continue
            child_pattern = pattern.extend(attach_at, label)
            results.append(FrequentPattern(child_pattern.encode(), len(occs)))
            frontier.append((child_pattern, dict(occs)))

    return results


def maximal_patterns(patterns: Sequence[FrequentPattern]) -> List[FrequentPattern]:
    """Patterns not contained (induced, ordered) in any larger frequent
    pattern.  This is the paper's *maximal frequent subtree* output."""
    decoded = [(p, p.tree()) for p in patterns]
    decoded.sort(key=lambda item: -len(item[1]))
    kept: List[Tuple[FrequentPattern, MiningTree]] = []
    for pattern, tree in decoded:
        contained = any(
            len(big_tree) > len(tree) and contains_subtree(big_tree, tree)
            for _, big_tree in kept
        )
        if not contained:
            kept.append((pattern, tree))
    kept.sort(key=lambda item: (-item[0].support, -len(item[1]), item[0].encoding))
    return [p for p, _ in kept]


def mine_maximal_subtrees(
    trees: Sequence[MiningTree],
    min_support: int,
    max_nodes: int = 8,
) -> List[FrequentPattern]:
    """Convenience: mine then keep only maximal patterns."""
    return maximal_patterns(mine_frequent_subtrees(trees, min_support, max_nodes))
