"""Shallow parse trees for frequent-subtree mining.

§5.2.1 of the paper annotates holdout text with lexical and syntactic
features — chunks, dependency trees, NE tags, geocode tags, hypernym
senses, VerbNet senses — and then mines maximal frequent subtrees
across the chunks.  This module builds the trees those miners consume:

::

    S
    ├── NP
    │   ├── DT
    │   └── NN ── HYP:structure
    └── VP
        └── VBD ── VN:create

Node labels are drawn from a small vocabulary (chunk labels, POS tags,
and annotation tags like ``NE:PERSON`` / ``GEO:VALID`` / ``TIMEX:DATE``
/ ``HYP:measure`` / ``VN:captain``), so mined subtrees are directly
interpretable as the lexico-syntactic patterns of Tables 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.nlp import hypernyms, verbnet
from repro.nlp.chunker import Chunk, chunk
from repro.nlp.geocode import has_valid_geocode
from repro.nlp.ner import recognize_entities
from repro.nlp.timex import recognize_timex
from repro.nlp.tokenizer import Token


@dataclass
class ParseNode:
    """A node in a shallow parse tree."""

    label: str
    children: List["ParseNode"] = field(default_factory=list)
    token: Optional[Token] = None

    def add(self, child: "ParseNode") -> "ParseNode":
        self.children.append(child)
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["ParseNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def labels(self) -> List[str]:
        return [n.label for n in self.walk()]

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def preorder_encoding(self) -> List[str]:
        """TreeMiner string encoding: labels in preorder with ``-1``
        markers on backtrack (Zaki's format [47])."""
        out: List[str] = []

        def visit(node: "ParseNode") -> None:
            out.append(node.label)
            for child in node.children:
                visit(child)
            out.append("-1")

        visit(self)
        out.pop()  # no trailing backtrack past the root
        return out

    def pretty(self, indent: int = 0) -> str:
        line = "  " * indent + self.label
        if self.token is not None:
            line += f" [{self.token.text}]"
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def _annotate_token(node: ParseNode, token: Token, tag: str) -> None:
    """Attach semantic annotation children to a token node."""
    if tag.startswith("NN"):
        chain = hypernyms.hypernym_chain(token.text)
        # Attach the most informative (deepest-but-general) senses the
        # pattern language uses; immediate node + mid-level sense.
        for sense in ("measure", "structure", "estate", "event", "person", "location", "time"):
            if sense in chain:
                node.add(ParseNode(f"HYP:{sense}"))
    if tag.startswith("VB"):
        for sense in verbnet.verb_senses(token.text):
            node.add(ParseNode(f"VN:{sense}"))
    if tag == "CD":
        node.add(ParseNode("NUM"))


def parse_sentence(text: str) -> ParseNode:
    """Build the annotated shallow parse tree of one sentence/line."""
    root = ParseNode("S")
    chunks = chunk(text)
    entities = recognize_entities(text)
    timexes = recognize_timex(text)

    def entity_covering(start: int, end: int) -> Optional[str]:
        for e in entities:
            if e.start <= start and end <= e.end:
                return e.label
        return None

    for c in chunks:
        chunk_node = root.add(ParseNode(c.label))
        for token, tag in c.tokens:
            token_node = chunk_node.add(ParseNode(tag, token=token))
            _annotate_token(token_node, token, tag)
            label = entity_covering(token.start, token.end)
            if label is not None:
                token_node.add(ParseNode(f"NE:{label}"))
        # Chunk-level annotations used by Tables 3/4 patterns.
        if c.label == "NP":
            if has_valid_geocode(c.text):
                chunk_node.add(ParseNode("GEO:VALID"))
            if any(t.start <= c.start and c.end <= t.end for t in timexes) or any(
                c.start <= t.start and t.end <= c.end for t in timexes
            ):
                kinds = {
                    t.timex_type
                    for t in timexes
                    if not (t.end <= c.start or t.start >= c.end)
                }
                for kind in sorted(kinds):
                    chunk_node.add(ParseNode(f"TIMEX:{kind}"))
    return root


def parse_chunks(text: str) -> List[ParseNode]:
    """One tree per chunk (the paper mines subtrees *across chunks*)."""
    tree = parse_sentence(text)
    return [c for c in tree.children]


def chunks_of(text: str) -> List[Chunk]:
    """Convenience re-export used by pattern matchers."""
    return chunk(text)
