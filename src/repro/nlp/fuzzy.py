"""Fuzzy string matching for OCR-noised text.

D1's extraction matches field descriptors by exact string comparison
(§5.2.1) — but the transcription those strings come from is OCR output,
so "exact" must be read modulo transcription noise.  This module
provides a banded Levenshtein distance and the prefix-matching test the
selector uses.
"""

from __future__ import annotations

import re
from typing import Optional


def normalize_for_match(text: str) -> str:
    """Lowercase, strip punctuation, collapse whitespace."""
    text = text.lower()
    text = re.sub(r"[^a-z0-9 ]+", " ", text)
    return re.sub(r"\s+", " ", text).strip()


def edit_distance(a: str, b: str, cutoff: Optional[int] = None) -> int:
    """Levenshtein distance with an optional early-exit ``cutoff``
    (returns ``cutoff + 1`` when the distance provably exceeds it)."""
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if cutoff is not None and len(b) - len(a) > cutoff:
        return cutoff + 1
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        best = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[i] + 1, current[i - 1] + 1, previous[i - 1] + cost)
            current.append(value)
            best = min(best, value)
        if cutoff is not None and best > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def similarity_ratio(a: str, b: str) -> float:
    """1 − normalised edit distance (1.0 = identical)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - edit_distance(a, b) / longest


_DIGIT_TO_LETTER = str.maketrans({"0": "o", "1": "l", "5": "s", "8": "b", "9": "g", "2": "z", "6": "b"})
_LETTER_TO_DIGIT = str.maketrans({"o": "0", "O": "0", "l": "1", "I": "1", "s": "5", "S": "5", "B": "8", "z": "2", "Z": "2", "g": "9"})


def repair_ocr_text(text: str) -> str:
    """Heuristic OCR repair, **length preserving** (char-for-char maps
    only, so character spans survive).

    Per token: digits inside a mostly-alphabetic word become their
    usual glyph confusions' letters ("Po5ter" → "Poster"); letters
    inside a mostly-numeric token become digits ("2l3,893" →
    "213,893"); spurious inner capitals relax ("ScreEning" →
    "Screening") unless the token is an acronym.
    """
    out = []
    for token in re.split(r"(\s)", text):  # separators preserved 1:1
        if not token or token.isspace():
            out.append(token)
            continue
        alpha = sum(ch.isalpha() for ch in token)
        digit = sum(ch.isdigit() for ch in token)
        if digit and alpha >= digit and alpha + digit >= 3:
            token = token.translate(_DIGIT_TO_LETTER)
        elif alpha and digit > alpha:
            token = token.translate(_LETTER_TO_DIGIT)
        if (
            len(token) > 2
            and token[0].isalpha()
            and any(ch.isupper() for ch in token[1:])
            and any(ch.islower() for ch in token)
        ):
            token = token[0] + token[1:].lower()
        out.append(token)
    return "".join(out)


_FOLD = str.maketrans(
    {
        "o": "0", "l": "1", "i": "1", "s": "5", "b": "8", "z": "2",
        "g": "9", "c": "e", "q": "0", "d": "0",
    }
)


def ocr_fold(text: str) -> str:
    """Collapse common OCR glyph-confusion classes onto canonical
    characters, so `'l2 Wages'` and `'12 Wages'` compare equal.  Used
    as a cheap prefilter before edit-distance matching."""
    return normalize_for_match(text).translate(_FOLD)


def fuzzy_prefix_match(
    text: str, prefix: str, min_ratio: float = 0.8
) -> Optional[int]:
    """If ``text`` starts with (a noisy rendering of) ``prefix``, return
    the matched prefix length in ``text``; else ``None``.

    Both inputs should be pre-normalised.  The match window flexes by
    ±15% of the prefix length to absorb OCR splits/merges.
    """
    if not prefix:
        return None
    slack = max(2, int(0.15 * len(prefix)))
    best_len: Optional[int] = None
    best_ratio = min_ratio
    for window in range(max(1, len(prefix) - slack), min(len(text), len(prefix) + slack) + 1):
        ratio = similarity_ratio(text[:window], prefix)
        if ratio >= best_ratio:
            best_ratio = ratio
            best_len = window
    return best_len
