"""Gazetteers: word lists shared by the NER and the synthetic corpora.

These play the role of the lexical resources bundled with Stanford NER
and the Google Maps geocoder in the paper's pipeline.  The synthetic
data providers sample from supersets of these lists (including
out-of-gazetteer names), so recognisers cannot simply memorise the
generator's vocabulary — they must also use shape and context rules.
"""

from __future__ import annotations

from typing import FrozenSet

FIRST_NAMES: FrozenSet[str] = frozenset(
    """
    james mary john patricia robert jennifer michael linda william elizabeth
    david barbara richard susan joseph jessica thomas sarah charles karen
    christopher nancy daniel lisa matthew betty anthony margaret mark sandra
    donald ashley steven kimberly paul emily andrew donna joshua michelle
    kenneth dorothy kevin carol brian amanda george melissa edward deborah
    ronald stephanie timothy rebecca jason sharon jeffrey laura ryan cynthia
    jacob kathleen gary amy nicholas shirley eric angela jonathan helen
    stephen anna larry brenda justin pamela scott nicole brandon emma
    benjamin samantha samuel katherine gregory christine frank debra
    alexander rachel raymond catherine patrick carolyn jack janet dennis ruth
    jerry maria alice albert priya wei chen ahmed fatima carlos sofia hiroshi
    yuki ivan olga ritesh arnab rajesh ananya dmitri ingrid pierre chloe
    """.split()
)

LAST_NAMES: FrozenSet[str] = frozenset(
    """
    smith johnson williams brown jones garcia miller davis rodriguez martinez
    hernandez lopez gonzalez wilson anderson thomas taylor moore jackson
    martin lee perez thompson white harris sanchez clark ramirez lewis
    robinson walker young allen king wright scott torres nguyen hill flores
    green adams nelson baker hall rivera campbell mitchell carter roberts
    gomez phillips evans turner diaz parker cruz edwards collins reyes
    stewart morris morales murphy cook rogers gutierrez ortiz morgan cooper
    peterson bailey reed kelly howard ramos kim cox ward richardson watson
    brooks chavez wood james bennett gray mendoza ruiz hughes price alvarez
    castillo sanders patel myers long ross foster jimenez sarkhel nandi
    banerjee chatterjee kumar sharma gupta tanaka suzuki petrov novak weber
    """.split()
)

NAME_PREFIXES: FrozenSet[str] = frozenset(
    ["mr", "mrs", "ms", "dr", "prof", "professor", "rev", "sir", "madam"]
)

ORG_SUFFIXES: FrozenSet[str] = frozenset(
    """
    inc llc ltd corp corporation company co group associates partners realty
    properties holdings enterprises agency brokers foundation institute
    university college department society association club committee council
    center centre laboratory labs studio studios church ministries
    """.split()
)

ORG_HEAD_WORDS: FrozenSet[str] = frozenset(
    """
    acme apex summit pinnacle horizon vanguard keystone landmark gateway
    heritage liberty premier metro urban pacific atlantic midwest northern
    southern eastern western global national regional united allied first
    capital crown sterling beacon cornerstone legacy frontier evergreen
    cascade aurora meridian catalyst nexus quantum vertex zenith
    """.split()
)

CITIES: FrozenSet[str] = frozenset(
    """
    columbus cleveland cincinnati dayton toledo akron chicago detroit
    indianapolis pittsburgh buffalo rochester albany syracuse boston
    hartford providence newark trenton philadelphia baltimore richmond
    charlotte raleigh atlanta nashville memphis louisville stlouis
    minneapolis milwaukee madison desmoines omaha wichita tulsa denver
    phoenix tucson seattle portland sacramento oakland fresno dallas austin
    houston miami orlando tampa brooklyn queens manhattan bronx amsterdam
    dublin westerville hilliard gahanna bexley whitehall reynoldsburg
    """.split()
)

STATES: FrozenSet[str] = frozenset(
    """
    alabama alaska arizona arkansas california colorado connecticut delaware
    florida georgia hawaii idaho illinois indiana iowa kansas kentucky
    louisiana maine maryland massachusetts michigan minnesota mississippi
    missouri montana nebraska nevada ohio oklahoma oregon pennsylvania
    tennessee texas utah vermont virginia washington wisconsin wyoming
    """.split()
)

STATE_ABBREVS: FrozenSet[str] = frozenset(
    """
    al ak az ar ca co ct de fl ga hi id il in ia ks ky la me md ma mi mn ms
    mo mt ne nv nh nj nm ny nc nd oh ok or pa ri sc sd tn tx ut vt va wa wv
    wi wy dc
    """.split()
)

STREET_SUFFIXES: FrozenSet[str] = frozenset(
    """
    street st avenue ave boulevard blvd drive dr lane ln road rd court ct
    circle cir place pl way parkway pkwy terrace ter trail trl highway hwy
    square sq plaza alley loop crossing xing
    """.split()
)

STREET_NAMES: FrozenSet[str] = frozenset(
    """
    main oak maple cedar pine elm washington park lake hill river church
    walnut spring north south high ridge view sunset meadow forest franklin
    jefferson lincoln madison jackson grant cherry chestnut willow sycamore
    dogwood magnolia juniper birch aspen hawthorn laurel poplar hickory
    """.split()
)

VENUE_WORDS: FrozenSet[str] = frozenset(
    """
    hall auditorium theater theatre stadium arena pavilion ballroom gallery
    library museum park plaza campus room lounge cafe tavern grill lobby
    rooftop garden terrace amphitheater conservatory atrium gymnasium
    """.split()
)

MONTHS: FrozenSet[str] = frozenset(
    """
    january february march april may june july august september october
    november december jan feb mar apr jun jul aug sep sept oct nov dec
    """.split()
)

WEEKDAYS: FrozenSet[str] = frozenset(
    """
    monday tuesday wednesday thursday friday saturday sunday mon tue tues
    wed thu thur thurs fri sat sun
    """.split()
)

TIME_WORDS: FrozenSet[str] = frozenset(
    """
    am pm noon midnight morning afternoon evening tonight today tomorrow
    oclock doors start starts begins until till through
    """.split()
)

EVENT_WORDS: FrozenSet[str] = frozenset(
    """
    concert festival workshop seminar lecture conference symposium meetup
    fundraiser gala exhibition fair show performance recital screening
    marathon tournament hackathon webinar colloquium talk session keynote
    celebration party reception opening premiere reading signing class
    refreshments seating admission performances proceeds raffle
    intermission artists audience attendees doors rsvp welcome tickets
    drinks prizes ages students families jazz folk blues poetry film
    science history art food wine craft coding photography pottery dance
    chess astronomy robotics gardening
    """.split()
)

PROPERTY_WORDS: FrozenSet[str] = frozenset(
    """
    bedroom bedrooms bed beds bath baths bathroom bathrooms acre acres sqft
    footage garage basement attic kitchen fireplace hardwood granite floor
    floors lot land building office retail warehouse suite unit condo
    apartment townhouse duplex ranch colonial storage parking deck patio
    pool hvac zoning zoned lease leased listing listed sale price details
    commercial residential renovated finishes visibility highway investor
    windows signage vacant plan acreage frontage tenant tenants space
    spaces opportunity available spacious prime investment
    """.split()
)

CONTACT_WORDS: FrozenSet[str] = frozenset(
    """
    contact call phone tel telephone fax email mail mobile cell office
    broker agent realtor listing information info inquiries rsvp visit
    """.split()
)
