"""A miniature hypernym taxonomy (WordNet stand-in).

The paper annotates noun POS tags with their hypernym senses [42] and
Table 4 matches *Property Size* on "noun POS tags with senses measure /
structure / estate in the hypernym tree".  This module provides a small
hand-built IS-A taxonomy over the vocabulary the corpora use, with the
same query surface: the chain of hypernyms of a noun, and a test for
whether a noun falls under a given sense.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

#: child → parent.  Roots point to "entity".
_PARENT: Dict[str, str] = {
    # measure subtree
    "measure": "abstraction",
    "unit": "measure",
    "area_unit": "unit",
    "acre": "area_unit",
    "acres": "area_unit",
    "sqft": "area_unit",
    "footage": "area_unit",
    "dimension": "measure",
    "size": "dimension",
    "count": "measure",
    "quantity": "measure",
    "price": "measure",
    "cost": "price",
    "fee": "price",
    "rent": "price",
    # structure subtree
    "structure": "artifact",
    "building": "structure",
    "house": "building",
    "home": "building",
    "office": "building",
    "warehouse": "building",
    "condo": "building",
    "apartment": "building",
    "townhouse": "building",
    "duplex": "building",
    "suite": "structure",
    "unit_room": "structure",
    "room": "structure",
    "rooms": "structure",
    "bedroom": "room",
    "bedrooms": "room",
    "bathroom": "room",
    "bathrooms": "room",
    "bath": "room",
    "baths": "room",
    "bed": "furniture",
    "beds": "furniture",
    "kitchen": "room",
    "basement": "room",
    "attic": "room",
    "garage": "structure",
    "deck": "structure",
    "patio": "structure",
    "floor": "structure",
    "floors": "structure",
    "furniture": "artifact",
    # estate subtree
    "estate": "possession",
    "property": "estate",
    "properties": "estate",
    "land": "estate",
    "lot": "estate",
    "parcel": "estate",
    "listing": "estate",
    "acreage": "estate",
    "real_estate": "estate",
    # people / organisations
    "person": "entity",
    "broker": "person",
    "agent": "person",
    "realtor": "person",
    "organizer": "person",
    "speaker": "person",
    "artist": "person",
    "organization": "entity",
    "company": "organization",
    "agency": "organization",
    "university": "organization",
    "department": "organization",
    "club": "organization",
    # events
    "event": "abstraction",
    "concert": "event",
    "festival": "event",
    "workshop": "event",
    "seminar": "event",
    "lecture": "event",
    "conference": "event",
    "talk": "event",
    "class": "event",
    "party": "event",
    "show": "event",
    "gala": "event",
    "fundraiser": "event",
    # time / place
    "time": "abstraction",
    "date": "time",
    "location": "entity",
    "place": "location",
    "address": "location",
    "venue": "location",
    "street": "location",
    "city": "location",
    # misc upper ontology
    "artifact": "entity",
    "abstraction": "entity",
    "possession": "entity",
    "communication": "abstraction",
    "document": "communication",
    "form": "document",
    "flyer": "document",
    "poster": "document",
}

#: Surface-word aliases mapped onto taxonomy nodes.
_ALIASES: Dict[str, str] = {
    "sq": "sqft",
    "ft": "sqft",
    "sf": "sqft",
    "square": "sqft",
    "br": "bedroom",
    "ba": "bathroom",
    "bldg": "building",
    "apt": "apartment",
    "homes": "home",
    "houses": "house",
    "lots": "lot",
    "units": "unit_room",
    "suites": "suite",
    "listings": "listing",
}


def _node_of(word: str) -> Optional[str]:
    lower = word.lower().strip(".,")
    if lower in _PARENT or lower == "entity":
        return lower
    return _ALIASES.get(lower)


def hypernym_chain(word: str) -> List[str]:
    """The hypernym path from ``word``'s node up to ``entity``.

    Empty when the word is not in the taxonomy.
    """
    node = _node_of(word)
    if node is None:
        return []
    chain = [node]
    seen: Set[str] = {node}
    while node in _PARENT:
        node = _PARENT[node]
        if node in seen:  # defensive: taxonomy must stay acyclic
            raise ValueError(f"cycle in hypernym taxonomy at {node!r}")
        seen.add(node)
        chain.append(node)
    return chain


def has_sense(word: str, sense: str) -> bool:
    """Whether ``word`` IS-A ``sense`` in the taxonomy (Table 4 test)."""
    return sense in hypernym_chain(word)


def any_has_sense(words, senses) -> bool:
    sense_set = set(senses)
    for w in words:
        if sense_set & set(hypernym_chain(w)):
            return True
    return False


def known_words() -> Set[str]:
    return set(_PARENT) | set(_ALIASES)
