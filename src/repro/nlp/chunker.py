"""Shallow chunking: noun phrases, verb phrases, SVO triples.

The lexico-syntactic patterns of Tables 3 and 4 are stated over chunks:
*"Noun phrase with numeric (CD) or textual (JJ) modifiers"*, *"Verb
phrase"*, *"SVO"*.  This module finds those chunks with a small
grammar over POS tag sequences, the standard regex-chunking approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.nlp.pos import pos_tag
from repro.nlp.tokenizer import Token

_NP_DET = {"DT", "PRP$"}
_NP_MOD = {"JJ", "JJR", "JJS", "CD", "VBG", "VBN"}
_NP_HEAD = {"NN", "NNS", "NNP", "NNPS"}
_VP_VERB = {"VB", "VBD", "VBG", "VBN", "VBZ", "MD"}


@dataclass
class Chunk:
    """A contiguous chunk of tagged tokens.

    Attributes
    ----------
    label:
        ``"NP"``, ``"VP"`` or ``"O"`` (outside any phrase).
    tokens:
        The (token, tag) pairs inside the chunk.
    """

    label: str
    tokens: List[Tuple[Token, str]] = field(default_factory=list)

    @property
    def text(self) -> str:
        return " ".join(t.text for t, _ in self.tokens)

    @property
    def tags(self) -> List[str]:
        return [tag for _, tag in self.tokens]

    @property
    def start(self) -> int:
        return self.tokens[0][0].start

    @property
    def end(self) -> int:
        return self.tokens[-1][0].end

    @property
    def head(self) -> Optional[Token]:
        """Right-most head-tag token for NPs, first verb for VPs."""
        pool = _NP_HEAD if self.label == "NP" else _VP_VERB
        ordered = reversed(self.tokens) if self.label == "NP" else iter(self.tokens)
        for token, tag in ordered:
            if tag in pool:
                return token
        return None

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def has_modifier(self) -> bool:
        """Whether the chunk carries a CD or JJ modifier (Tables 3/4)."""
        return any(t in ("CD", "JJ", "JJR", "JJS") for t in self.tags)

    def word_texts(self) -> List[str]:
        return [t.lower for t, _ in self.tokens if t.is_word]


def chunk(text_or_tagged) -> List[Chunk]:
    """Chunk a sentence into NP / VP / O spans.

    NP grammar: ``DT? MOD* HEAD+ (IN NP)?`` without the PP attachment
    (kept flat).  VP grammar: ``MD? VERB+ RB?``.
    """
    if isinstance(text_or_tagged, str):
        tagged = pos_tag(text_or_tagged)
    else:
        tagged = list(text_or_tagged)

    chunks: List[Chunk] = []
    i = 0
    n = len(tagged)
    while i < n:
        token, tag = tagged[i]
        if tag in _NP_DET or tag in _NP_MOD or tag in _NP_HEAD:
            j = i
            saw_head = False
            while j < n:
                _, t = tagged[j]
                if t in _NP_HEAD:
                    saw_head = True
                    j += 1
                elif not saw_head and (t in _NP_DET or t in _NP_MOD):
                    j += 1
                elif saw_head and t in _NP_MOD and t == "CD":
                    # trailing numerics stay in the NP ("suite 210")
                    j += 1
                else:
                    break
            if saw_head:
                chunks.append(Chunk("NP", tagged[i:j]))
                i = j
                continue
            # Modifier run with no head (e.g. bare "2,465" or "free") —
            # numeric-led runs still form a (headless) NP candidate.
            if tagged[i][1] == "CD":
                chunks.append(Chunk("NP", tagged[i:j] or [tagged[i]]))
                i = max(j, i + 1)
                continue
        if tag in _VP_VERB:
            j = i
            while j < n and tagged[j][1] in _VP_VERB:
                j += 1
            if j < n and tagged[j][1] == "RB":
                j += 1
            chunks.append(Chunk("VP", tagged[i:j]))
            i = j
            continue
        chunks.append(Chunk("O", [tagged[i]]))
        i += 1
    return _merge_outside_runs(chunks)


def _merge_outside_runs(chunks: List[Chunk]) -> List[Chunk]:
    merged: List[Chunk] = []
    for c in chunks:
        if c.label == "O" and merged and merged[-1].label == "O":
            merged[-1].tokens.extend(c.tokens)
        else:
            merged.append(c)
    return merged


@dataclass(frozen=True)
class SvoTriple:
    """A subject–verb–object triple over chunks."""

    subject: Chunk
    verb: Chunk
    obj: Chunk

    @property
    def text(self) -> str:
        return f"{self.subject.text} {self.verb.text} {self.obj.text}"


def find_svo(chunks: Sequence[Chunk]) -> List[SvoTriple]:
    """NP VP NP sequences — the paper's *SVO* pattern (Table 3)."""
    triples: List[SvoTriple] = []
    content = [c for c in chunks if c.label != "O"]
    for i in range(len(content) - 2):
        a, b, c = content[i], content[i + 1], content[i + 2]
        if a.label == "NP" and b.label == "VP" and c.label == "NP":
            triples.append(SvoTriple(a, b, c))
    return triples


def noun_phrases(text: str) -> List[Chunk]:
    return [c for c in chunk(text) if c.label == "NP"]


def verb_phrases(text: str) -> List[Chunk]:
    return [c for c in chunk(text) if c.label == "VP"]
