"""Tokenisation and text normalisation.

VS2-Select preprocesses every block transcription the same way the
paper describes (§5.2): normalise, split into sentences/lines, tokenise
into words, drop stopwords where asked.  Tokens keep their character
offsets so matched patterns can be mapped back to page coordinates.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass
from typing import Iterable, List

STOPWORDS = frozenset(
    """
    a an the and or but if then than that this these those of in on at by
    for with from to into over under as is are was were be been being am
    do does did will would can could should may might must have has had
    it its he she they them his her their our your my we you i not no nor
    so such there here when where which who whom what why how all any both
    each few more most other some own same s t don now
    """.split()
)

# A word is letters/digits possibly holding internal apostrophes, hyphens,
# periods (abbreviations, decimals), @ and domain dots (emails survive as
# single tokens), or a standalone punctuation mark.
_TOKEN_RE = re.compile(
    r"\d{1,3}(?:,\d{3})+(?:\.\d+)?"  # comma-grouped numbers stay whole
    r"|[A-Za-z0-9][A-Za-z0-9@._'\-/]*[A-Za-z0-9]|[A-Za-z0-9]|[$€£#%&+]|[^\sA-Za-z0-9]"
)

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?;])\s+|\n+")


@dataclass(frozen=True)
class Token:
    """A token with its source-character span."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        return any(ch.isalnum() for ch in self.text)

    @property
    def is_capitalized(self) -> bool:
        return bool(self.text) and self.text[0].isupper()

    @property
    def is_all_caps(self) -> bool:
        letters = [c for c in self.text if c.isalpha()]
        return bool(letters) and all(c.isupper() for c in letters)

    @property
    def is_numeric(self) -> bool:
        stripped = self.text.replace(",", "").replace(".", "").replace("/", "")
        return bool(stripped) and stripped.isdigit()


def normalize_text(text: str) -> str:
    """Unicode-normalise, unify quotes/dashes, collapse runs of spaces.

    This mirrors the cleaning the paper applies before semantic parsing
    (§5.2: "the transcribed text is normalized").
    """
    text = unicodedata.normalize("NFKC", text)
    text = text.replace("’", "'").replace("‘", "'")
    text = text.replace("“", '"').replace("”", '"')
    text = text.replace("–", "-").replace("—", "-")
    text = re.sub(r"[ \t]+", " ", text)
    text = re.sub(r" ?\n ?", "\n", text)
    return text.strip()


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into :class:`Token` objects with offsets."""
    return [Token(m.group(0), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)]


def sentences(text: str) -> List[str]:
    """Split on sentence punctuation and newlines.

    Visually rich documents rarely carry full sentence punctuation; the
    newline split treats each layout line as a sentence-like unit, which
    is exactly the "ill-defined context boundaries" behaviour the paper
    attributes to transcribed visual documents (Fig. 3).
    """
    parts = _SENTENCE_SPLIT_RE.split(text)
    return [p.strip() for p in parts if p and p.strip()]


def remove_stopwords(tokens: Iterable[Token]) -> List[Token]:
    return [t for t in tokens if t.lower not in STOPWORDS]


def words(text: str) -> List[str]:
    """Lower-cased word tokens only (no punctuation)."""
    return [t.lower for t in tokenize(text) if t.is_word]
