"""Lesk gloss-overlap disambiguation (the text-only baseline's ranker).

The paper's text-only baseline resolves multiple matched patterns with
Lesk [3], a dictionary-based word-sense disambiguation method: the
candidate whose *context* shares the most words with the sense *gloss*
wins.  For entity-candidate ranking we use the adapted form: each named
entity type carries a gloss (a bag of indicative context words), each
candidate is scored by the overlap between the words around its match
and that gloss, and the top-scoring candidate is selected.

This is deliberately text-only: it sees the linearised transcription
and nothing of the page geometry, exactly the limitation §5.3 argues
makes it unsuited to visually rich documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.nlp.tokenizer import STOPWORDS, words

#: Glosses per entity type: the context vocabulary a dictionary entry
#: for that concept would use.  Mirrors the Tables 3/4 descriptions.
ENTITY_GLOSSES: Dict[str, str] = {
    "event_title": "name title of the event show concert festival workshop announcement headline",
    "event_place": "place venue location address where hall room street city held hosted at",
    "event_time": "time date when schedule doors start begins pm am evening day month",
    "event_organizer": "organizer host presented hosted organized by sponsor department club society",
    "event_description": "description details about join us featuring what expect admission free tickets",
    "broker_name": "broker agent realtor contact name listing by call",
    "broker_phone": "phone call telephone contact number tel cell office",
    "broker_email": "email mail contact inquiries address at",
    "property_address": "address located location street city state property site",
    "property_size": "size square feet sqft acres beds baths bedrooms bathrooms lot area",
    "property_description": "description property features building space office retail parking includes",
}


@dataclass(frozen=True)
class LeskCandidate:
    """A candidate match with its surrounding context."""

    text: str
    context: str


def gloss_overlap(context: str, gloss: str) -> int:
    """Number of distinct non-stopword words shared by context and gloss."""
    a = {w for w in words(context) if w not in STOPWORDS}
    b = {w for w in words(gloss) if w not in STOPWORDS}
    return len(a & b)


def lesk_rank(
    candidates: Sequence[LeskCandidate],
    entity_type: str,
    glosses: Dict[str, str] = ENTITY_GLOSSES,
) -> List[int]:
    """Indices of ``candidates`` ordered best-first by gloss overlap.

    Ties preserve input order (document order), matching the common
    "first plausible mention wins" behaviour of text IE pipelines.
    """
    gloss = glosses.get(entity_type, "")
    scored = [
        (gloss_overlap(c.context, gloss) + gloss_overlap(c.text, gloss), -i)
        for i, c in enumerate(candidates)
    ]
    order = sorted(range(len(candidates)), key=lambda i: scored[i], reverse=True)
    return order


def lesk_select(
    candidates: Sequence[LeskCandidate],
    entity_type: str,
    glosses: Dict[str, str] = ENTITY_GLOSSES,
) -> int:
    """Index of the best candidate (raises on empty input)."""
    if not candidates:
        raise ValueError("lesk_select needs at least one candidate")
    return lesk_rank(candidates, entity_type, glosses)[0]
