"""A miniature verb-sense lexicon (VerbNet stand-in).

Table 3 matches *Event Organizer* on "verb phrase with captain / create
/ reflexive_appearance verb-senses [38]".  This module maps verbs to
VerbNet-style class names; the three classes the paper names are
populated with the verbs organisers actually use on posters ("hosted
by", "presented by", "organized by", ...).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

_CLASSES: Dict[str, FrozenSet[str]] = {
    # VerbNet 'captain-29.8': acting in a leading capacity.
    "captain": frozenset(
        """
        captain chair chairs chaired lead leads led direct directs directed
        head heads headed manage manages managed host hosts hosted
        organize organizes organized coordinate coordinates coordinated
        moderate moderates moderated supervise supervised
        """.split()
    ),
    # VerbNet 'create-26.4': bringing something into existence.
    "create": frozenset(
        """
        create creates created produce produces produced found founded
        establish establishes established launch launches launched
        develop develops developed curate curates curated compose
        composed author authored design designs designed build built
        """.split()
    ),
    # VerbNet 'reflexive_appearance-48.1.2': presenting / showing.
    "reflexive_appearance": frozenset(
        """
        present presents presented show shows showed showcase showcases
        showcased feature features featured display displays displayed
        exhibit exhibits exhibited introduce introduces introduced
        premiere premieres premiered perform performs performed appear
        appears appeared
        """.split()
    ),
    # Supporting classes used by other patterns / the holdout annotator.
    "contribute": frozenset(
        """
        sponsor sponsors sponsored support supports supported fund funds
        funded donate donates donated benefit benefits benefited
        """.split()
    ),
    "invite": frozenset(
        """
        invite invites invited welcome welcomes welcomed join joins joined
        attend attends attended register registers registered rsvp
        """.split()
    ),
    "transfer": frozenset(
        """
        sell sells sold buy buys bought lease leases leased rent rents
        rented list lists listed offer offers offered
        """.split()
    ),
    "communicate": frozenset(
        """
        call calls called contact contacts contacted email emails emailed
        visit visits visited inquire inquires inquired ask asks asked
        """.split()
    ),
}

_VERB_TO_CLASSES: Dict[str, Set[str]] = {}
for _cls, _verbs in _CLASSES.items():
    for _v in _verbs:
        _VERB_TO_CLASSES.setdefault(_v, set()).add(_cls)

#: The classes Table 3 names for the Event Organizer pattern.
ORGANIZER_SENSES = ("captain", "create", "reflexive_appearance")


def verb_senses(verb: str) -> List[str]:
    """VerbNet-style class names for ``verb`` (empty if unknown)."""
    return sorted(_VERB_TO_CLASSES.get(verb.lower().strip(".,"), set()))


def has_sense(verb: str, sense: str) -> bool:
    if sense not in _CLASSES:
        raise KeyError(f"unknown verb class {sense!r}")
    return verb.lower().strip(".,") in _CLASSES[sense]


def any_has_sense(verbs, senses) -> bool:
    for v in verbs:
        classes = _VERB_TO_CLASSES.get(v.lower().strip(".,"))
        if classes and classes & set(senses):
            return True
    return False


def known_classes() -> List[str]:
    return sorted(_CLASSES)
