"""Postal address recognition — the paper's *geocode tag* provider.

The paper augments 'Location' entities with a geocode tag via the
Google Maps API [24]; Tables 3/4 then pattern-match "noun phrases with
valid geocode tags" for *Event Place* and *Property Address*.  This
module recognises US-style postal addresses with street-grammar rules
plus the city/state gazetteers, and scores a confidence in lieu of a
remote geocoder's validity bit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.nlp import gazetteers as gaz

_STREET_SUFFIX_RE = "|".join(sorted(gaz.STREET_SUFFIXES, key=len, reverse=True))

# "1234 North Maple Street" (+ optional unit, city, state, zip)
_ADDRESS_RE = re.compile(
    rf"""
    \b(?P<number>\d{{1,6}})\s+
    (?P<street>(?:[A-Z][A-Za-z]*\.?\s+){{0,3}}[A-Z][A-Za-z]*)\s+
    (?P<suffix>(?i:{_STREET_SUFFIX_RE})\b\.?)
    (?P<unit>[,\s]+(?:suite|ste|unit|apt|floor|fl|\#)\.?\s*\w+)?
    (?P<city>[,\s]+[A-Z][A-Za-z]+(?:\s[A-Z][A-Za-z]+)?)?
    (?P<state>[,\s]+(?:[A-Z]{{2}}|[A-Z][a-z]+))?
    (?P<zip>[,\s]+\d{{5}}(?:-\d{{4}})?)?
    """,
    re.VERBOSE,
)

# City, ST 12345 (address tail without a street line)
_CITY_STATE_RE = re.compile(
    r"\b(?P<city>[A-Z][A-Za-z]+(?:\s[A-Z][A-Za-z]+)?)\s*,\s*"
    r"(?P<state>[A-Z]{2}|[A-Z][a-z]{3,})\.?\s*(?P<zip>\d{5}(?:-\d{4})?)?\b"
)


@dataclass(frozen=True)
class GeocodeMatch:
    """A recognised address span with a validity confidence in [0, 1]."""

    text: str
    start: int
    end: int
    confidence: float
    has_street: bool

    @property
    def is_valid(self) -> bool:
        """The stand-in for the geocoder's "resolves to a place" bit."""
        return self.confidence >= 0.5


def _score_street_match(m: "re.Match[str]") -> float:
    score = 0.5  # number + street + suffix already matched
    street_words = m.group("street").lower().split()
    if any(w.strip(".") in gaz.STREET_NAMES for w in street_words):
        score += 0.15
    city = (m.group("city") or "").strip(", ").lower()
    if city and city.split()[0] in gaz.CITIES:
        score += 0.15
    state = (m.group("state") or "").strip(", ").lower()
    if state in gaz.STATE_ABBREVS or state in gaz.STATES:
        score += 0.1
    if m.group("zip"):
        score += 0.1
    return min(score, 1.0)


def recognize_addresses(text: str) -> List[GeocodeMatch]:
    """All address-like spans in ``text`` with confidences."""
    matches: List[GeocodeMatch] = []
    claimed: List[range] = []
    for m in _ADDRESS_RE.finditer(text):
        matches.append(
            GeocodeMatch(
                m.group(0).strip(" ,"),
                m.start(),
                m.end(),
                _score_street_match(m),
                has_street=True,
            )
        )
        claimed.append(range(m.start(), m.end()))
    for m in _CITY_STATE_RE.finditer(text):
        if any(set(range(m.start(), m.end())) & set(c) for c in claimed):
            continue
        city = m.group("city").lower()
        state = m.group("state").lower()
        confidence = 0.3
        if city.split()[0] in gaz.CITIES:
            confidence += 0.25
        if state in gaz.STATE_ABBREVS or state in gaz.STATES:
            confidence += 0.2
        if m.group("zip"):
            confidence += 0.15
        matches.append(
            GeocodeMatch(m.group(0).strip(" ,"), m.start(), m.end(), confidence, False)
        )
    matches.sort(key=lambda g: g.start)
    return matches


def geocode(text: str) -> Optional[GeocodeMatch]:
    """Best valid address in ``text``, or ``None``."""
    candidates = [g for g in recognize_addresses(text) if g.is_valid]
    if not candidates:
        return None
    return max(candidates, key=lambda g: (g.confidence, g.has_street, -g.start))


def has_valid_geocode(text: str) -> bool:
    return geocode(text) is not None
