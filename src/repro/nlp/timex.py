"""TIMEX3-style temporal expression recognition (SUTime stand-in).

Table 3's pattern for *Event Time* is "noun phrases with valid TIMEX3
tags" [5].  This recogniser finds dates, clock times and ranges in text
and assigns them coarse TIMEX3 classes (``DATE``, ``TIME``,
``DURATION``) with a normalised value where derivable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.nlp import gazetteers as gaz

_MONTH_NUM = {
    m: i + 1
    for i, names in enumerate(
        [
            ("january", "jan"),
            ("february", "feb"),
            ("march", "mar"),
            ("april", "apr"),
            ("may",),
            ("june", "jun"),
            ("july", "jul"),
            ("august", "aug"),
            ("september", "sep", "sept"),
            ("october", "oct"),
            ("november", "nov"),
            ("december", "dec"),
        ]
    )
    for m in names
}

_CLOCK = r"(?:[01]?\d|2[0-3])(?::[0-5]\d)?\s*(?:a\.?m\.?|p\.?m\.?|AM|PM|am|pm)"
_CLOCK_24 = r"(?:[01]?\d|2[0-3]):[0-5]\d"

_PATTERNS = [
    # 7:30 pm - 9:00 pm / 7 pm to 9 pm
    ("DURATION", re.compile(rf"{_CLOCK}\s*(?:-|–|to|until|till)\s*{_CLOCK}", re.I)),
    ("TIME", re.compile(rf"\b{_CLOCK}\b", re.I)),
    ("TIME", re.compile(rf"\b{_CLOCK_24}\b")),
    # April 12, 2026 / Apr 12 / 12 April 2026
    (
        "DATE",
        re.compile(
            r"\b(?:" + "|".join(sorted(_MONTH_NUM, key=len, reverse=True)) + r")\.?\s+\d{1,2}(?:st|nd|rd|th)?(?:\s*,?\s*\d{4})?\b",
            re.I,
        ),
    ),
    (
        "DATE",
        re.compile(
            r"\b\d{1,2}(?:st|nd|rd|th)?\s+(?:"
            + "|".join(sorted(_MONTH_NUM, key=len, reverse=True))
            + r")\.?(?:\s*,?\s*\d{4})?\b",
            re.I,
        ),
    ),
    # 04/12/2026, 4-12-26
    ("DATE", re.compile(r"\b\d{1,2}[/-]\d{1,2}[/-]\d{2,4}\b")),
    # ISO
    ("DATE", re.compile(r"\b\d{4}-\d{2}-\d{2}\b")),
    # Weekday mentions ("Saturday", "every Friday")
    (
        "DATE",
        re.compile(
            r"\b(?:" + "|".join(sorted(gaz.WEEKDAYS, key=len, reverse=True)) + r")\b",
            re.I,
        ),
    ),
    ("TIME", re.compile(r"\b(?:noon|midnight|doors\s+(?:open\s+)?at)\b", re.I)),
]


@dataclass(frozen=True)
class Timex:
    """A recognised temporal expression."""

    text: str
    start: int
    end: int
    timex_type: str  # DATE | TIME | DURATION
    value: Optional[str] = None  # normalised value when derivable


def _normalize(kind: str, text: str) -> Optional[str]:
    lower = text.lower()
    m = re.match(r"(\d{1,2})[/-](\d{1,2})[/-](\d{2,4})$", lower)
    if m:
        mm, dd, yy = (int(g) for g in m.groups())
        if yy < 100:
            yy += 2000
        if 1 <= mm <= 12 and 1 <= dd <= 31:
            return f"{yy:04d}-{mm:02d}-{dd:02d}"
    m = re.match(r"([a-z]+)\.?\s+(\d{1,2})(?:st|nd|rd|th)?(?:\s*,?\s*(\d{4}))?$", lower)
    if m and m.group(1) in _MONTH_NUM:
        mm = _MONTH_NUM[m.group(1)]
        dd = int(m.group(2))
        yy = m.group(3)
        if 1 <= dd <= 31:
            return f"{yy or 'XXXX'}-{mm:02d}-{dd:02d}"
    if kind == "TIME":
        m = re.match(r"(\d{1,2})(?::(\d{2}))?\s*(a\.?m\.?|p\.?m\.?)?", lower)
        if m:
            hh = int(m.group(1))
            mins = int(m.group(2) or 0)
            mer = (m.group(3) or "").replace(".", "")
            if mer == "pm" and hh < 12:
                hh += 12
            if mer == "am" and hh == 12:
                hh = 0
            if 0 <= hh <= 23 and 0 <= mins <= 59:
                return f"T{hh:02d}:{mins:02d}"
    return None


def recognize_timex(text: str) -> List[Timex]:
    """All temporal expressions in ``text``, left to right, non-overlapping.

    Longer/earlier-listed patterns win overlaps (so a time range beats
    its component clock times).
    """
    found: List[Timex] = []
    claimed: List[range] = []
    for kind, pattern in _PATTERNS:
        for m in pattern.finditer(text):
            span = range(m.start(), m.end())
            if any(set(span) & set(c) for c in claimed):
                continue
            claimed.append(span)
            found.append(
                Timex(m.group(0), m.start(), m.end(), kind, _normalize(kind, m.group(0)))
            )
    found.sort(key=lambda t: t.start)
    return found


def has_timex(text: str) -> bool:
    return bool(recognize_timex(text))
