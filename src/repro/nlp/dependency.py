"""A rule-based dependency parser (the paper's "dependency trees").

§5.2 constructs dependency trees during preprocessing and §5.2.1 mines
"the maximal frequent subtrees within the dependency trees" — so the
mining database can be built from dependency structure, not only the
shallow chunk trees of :mod:`repro.nlp.parse`.  This parser produces
projective head/dependent arcs with a small arc-standard rule set over
POS tags and chunks:

* the main verb of the first VP heads the sentence (``root``);
* NP heads attach their determiners (``det``), adjective/participle
  modifiers (``amod``), numerals (``nummod``) and compound nouns
  (``compound``);
* NPs left of the root verb attach as ``nsubj``, right as ``obj``;
* prepositions head their NP (``pobj``) and attach to the nearest
  verb or noun on their left (``prep``);
* everything else attaches to the nearest content head (``dep``).

That covers the constructions the corpora's language actually uses —
the same scope trade-off every rule-based stand-in in this repo makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mining.trees import MiningTree
from repro.nlp.chunker import Chunk, chunk
from repro.nlp.tokenizer import Token

_NP_HEAD = {"NN", "NNS", "NNP", "NNPS"}
_VERB = {"VB", "VBD", "VBG", "VBN", "VBZ", "MD"}


@dataclass
class DepNode:
    """One token with its syntactic head."""

    token: Token
    tag: str
    head: int  # index into the sentence's node list; -1 for the root
    relation: str


def parse_dependencies(text: str) -> List[DepNode]:
    """Dependency-parse one sentence/line into a list of nodes.

    Always returns a single-rooted projective tree (the root's head is
    ``-1``); degenerate inputs root their first token.
    """
    chunks = chunk(text)
    tagged = [(t, tag) for c in chunks for (t, tag) in c.tokens]
    if not tagged:
        return []
    nodes = [DepNode(t, tag, -1, "dep") for t, tag in tagged]

    # Flatten chunk structure with global token indices.
    spans: List[tuple] = []  # (chunk, [global indices])
    cursor = 0
    for c in chunks:
        indices = list(range(cursor, cursor + len(c.tokens)))
        spans.append((c, indices))
        cursor += len(c.tokens)

    root = _find_root(nodes, spans)

    # Intra-NP attachments.
    np_heads: List[int] = []
    for c, indices in spans:
        if c.label != "NP":
            continue
        head = _np_head_index(nodes, indices)
        np_heads.append(head)
        for i in indices:
            if i == head:
                continue
            tag = nodes[i].tag
            if tag in ("DT", "PRP$"):
                _attach(nodes, i, head, "det")
            elif tag == "CD":
                _attach(nodes, i, head, "nummod")
            elif tag in ("JJ", "JJR", "JJS", "VBG", "VBN"):
                _attach(nodes, i, head, "amod")
            elif tag in _NP_HEAD:
                _attach(nodes, i, head, "compound")
            else:
                _attach(nodes, i, head, "dep")

    # Verb-phrase internals: auxiliaries attach to the main verb.
    for c, indices in spans:
        if c.label != "VP":
            continue
        main = indices[-1]
        for i in indices[:-1]:
            _attach(nodes, i, main, "aux")

    # Clause-level attachments.
    for head in np_heads:
        if head == root:
            continue
        relation = "nsubj" if head < root else "obj"
        if nodes[head].head == -1 or nodes[head].head == head:
            _attach(nodes, head, root, relation)

    # Prepositions and leftovers.
    for i, node in enumerate(nodes):
        if i == root or node.head != -1:
            continue
        if node.tag == "IN":
            left = _nearest_content(nodes, i, direction=-1) or root
            _attach(nodes, i, left, "prep")
            right_np = _nearest_np_head(np_heads, i, nodes)
            if right_np is not None and nodes[right_np].head == root:
                _attach(nodes, right_np, i, "pobj")
        else:
            _attach(nodes, i, _nearest_content(nodes, i, direction=-1) or root, "dep")

    nodes[root].head = -1
    nodes[root].relation = "root"
    _break_cycles(nodes, root)
    return nodes


def _attach(nodes: List[DepNode], child: int, head: int, relation: str) -> None:
    if child == head:
        return
    nodes[child].head = head
    nodes[child].relation = relation


def _find_root(nodes: List[DepNode], spans) -> int:
    for c, indices in spans:
        if c.label == "VP":
            return indices[-1]
    for c, indices in spans:
        if c.label == "NP":
            return _np_head_index(nodes, indices)
    return 0


def _np_head_index(nodes: List[DepNode], indices: List[int]) -> int:
    for i in reversed(indices):
        if nodes[i].tag in _NP_HEAD:
            return i
    return indices[-1]


def _nearest_content(nodes: List[DepNode], i: int, direction: int) -> Optional[int]:
    j = i + direction
    while 0 <= j < len(nodes):
        if nodes[j].tag in _NP_HEAD or nodes[j].tag in _VERB:
            return j
        j += direction
    return None


def _nearest_np_head(np_heads: List[int], i: int, nodes: List[DepNode]) -> Optional[int]:
    following = [h for h in np_heads if h > i]
    return min(following) if following else None


def _break_cycles(nodes: List[DepNode], root: int) -> None:
    """Defensive: re-root any node whose head chain never reaches the
    root (rule interactions on adversarial input)."""
    for i in range(len(nodes)):
        seen = set()
        j = i
        while j != -1 and j != root:
            if j in seen:
                nodes[i].head = root
                nodes[i].relation = "dep"
                break
            seen.add(j)
            j = nodes[j].head


def dependency_mining_tree(text: str) -> MiningTree:
    """The dependency tree as a :class:`MiningTree` for subtree mining.

    Node labels are ``relation:TAG`` pairs, the vocabulary dependency-
    pattern mining keys on ("nsubj:NNP", "pobj:NN", ...).
    """
    nodes = parse_dependencies(text)
    if not nodes:
        return MiningTree(["S"], [-1])
    order: List[int] = []
    children: dict = {}
    root = next(i for i, n in enumerate(nodes) if n.head == -1)

    def visit(i: int) -> None:
        order.append(i)
        for j, n in enumerate(nodes):
            if n.head == i:
                visit(j)

    visit(root)
    labels = [f"{nodes[i].relation}:{nodes[i].tag}" for i in order]
    position = {token_index: pos for pos, token_index in enumerate(order)}
    parents = [
        -1 if nodes[i].head == -1 else position[nodes[i].head] for i in order
    ]
    return MiningTree(labels, parents)
