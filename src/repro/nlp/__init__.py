"""The natural-language substrate.

The paper leans on off-the-shelf NLP tooling — tokenisation, POS
tagging, chunking, dependency parsing, Stanford-style NER, SUTime
(TIMEX3), a geocoder, WordNet hypernyms, VerbNet senses and the Lesk
disambiguator.  None of those ship in this offline environment, so this
package implements the needed slices from scratch.  The goal is not
linguistic fidelity but *interface fidelity*: the same tag vocabulary
and the same failure modes (e.g. NER false positives on OCR noise) that
the paper's pipeline exhibits.

Module map:

=================  ====================================================
``tokenizer``      word / sentence tokenisation and normalisation
``gazetteers``     name / place / organisation word lists
``pos``            lexicon + suffix-rule POS tagger (Penn tags)
``chunker``        NP / VP chunking, SVO detection over tag patterns
``parse``          shallow constituent trees for subtree mining
``dependency``     rule-based dependency parser (arc per token)
``ner``            rule + gazetteer named entity recogniser
``timex``          TIMEX3-style date/time recognition
``geocode``        postal-address (geocode tag) recognition
``hypernyms``      mini hypernym taxonomy (WordNet stand-in)
``verbnet``        mini verb-sense lexicon (VerbNet stand-in)
``lesk``           Lesk gloss-overlap disambiguation (text baseline)
=================  ====================================================
"""

from repro.nlp.tokenizer import Token, normalize_text, sentences, tokenize
from repro.nlp.pos import pos_tag
from repro.nlp.chunker import Chunk, chunk
from repro.nlp.ner import Entity, recognize_entities
from repro.nlp.parse import ParseNode, parse_sentence
from repro.nlp.dependency import DepNode, parse_dependencies

__all__ = [
    "Token",
    "tokenize",
    "sentences",
    "normalize_text",
    "pos_tag",
    "Chunk",
    "chunk",
    "Entity",
    "recognize_entities",
    "ParseNode",
    "parse_sentence",
    "DepNode",
    "parse_dependencies",
]
