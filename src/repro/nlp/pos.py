"""A lexicon + suffix-rule part-of-speech tagger (Penn tag subset).

Plays the role of the off-the-shelf tagger in the paper's NLP stack.
Tagging proceeds in three layers: a closed-class lexicon, an open-class
lexicon of common words, then shape/suffix fallback rules.  A final
contextual repair pass fixes the classic noun/verb ambiguities that the
pattern matchers of Tables 3/4 are sensitive to (e.g. ``to <verb>``,
``<determiner> <noun>``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.nlp import gazetteers as gaz
from repro.nlp.tokenizer import Token, tokenize

#: Tags emitted by this tagger.
TAGSET = (
    "NN NNS NNP NNPS VB VBD VBG VBN VBZ MD JJ JJR JJS RB CD DT IN CC PRP "
    "PRP$ TO EX WDT SYM PUNCT UH"
).split()

_CLOSED: Dict[str, str] = {}
for _w in "the a an this that these those each every some any no".split():
    _CLOSED[_w] = "DT"
for _w in (
    "of in on at by for with from into over under about against between "
    "through during before after above below up down out off near upon "
    "within without along across behind beyond per via"
).split():
    _CLOSED[_w] = "IN"
for _w in "and or but nor yet so".split():
    _CLOSED[_w] = "CC"
for _w in "i you he she it we they me him her us them".split():
    _CLOSED[_w] = "PRP"
for _w in "my your his its our their".split():
    _CLOSED[_w] = "PRP$"
for _w in "will would can could shall should may might must".split():
    _CLOSED[_w] = "MD"
for _w in "who whom which what whose".split():
    _CLOSED[_w] = "WDT"
_CLOSED["to"] = "TO"
_CLOSED["there"] = "EX"
_CLOSED["not"] = "RB"

_COMMON_VERBS = frozenset(
    """
    be is are was were been being am have has had do does did go goes went
    gone make makes made take takes took get gets got see sees saw come
    comes came know knows knew give gives gave find finds found think
    thinks thought tell tells told become became show shows showed leave
    left feel felt put bring brings brought begin begins began keep keeps
    kept hold holds held write writes wrote stand stood hear heard let
    mean means meant set meet meets met run runs ran pay pays paid sit
    include includes included continue offer offers offered present
    presents presented host hosts hosted organize organizes organized
    sponsor sponsors sponsored feature features featured join joins joined
    attend attends attended register registers registered invite invites
    invited celebrate celebrates learn learns learned perform performs
    performed lead leads led direct directs directed create creates
    created found founded establish established captain captains sell
    sells sold buy buys bought list lists call calls called contact
    contacts contacted visit visits visited welcome welcomes welcomed
    enjoy enjoys enjoyed explore explores discover discovers provide
    provides provided serve serves served open opens opened close closes
    closed start starts started end ends ended announce announces
    announced presents introducing
    """.split()
)

_COMMON_NOUNS = frozenset(
    set("""
    event time place date year day week month name address phone email
    number price cost fee ticket tickets admission entry info information
    details detail description title organizer speaker artist band music
    food drinks family kids children adults students people person group
    community city town state street home house property estate listing
    agent broker office space size area room rooms water heat power line
    form tax income wage credit deduction refund amount total schedule
    page return spouse dependent employer interest dividend business
    school work life world part form question answer example kind
    """.split())
    | set(gaz.EVENT_WORDS)
    | set(gaz.PROPERTY_WORDS)
    | set(gaz.VENUE_WORDS)
)

_COMMON_ADJECTIVES = frozenset(
    """
    new free live local annual great grand open public special first
    second third last next big small large little good best famous
    beautiful spacious modern updated renovated charming cozy bright
    prime commercial residential available historic downtown quiet
    convenient affordable luxury private gross net taxable joint single
    married federal early late final official national live
    """.split()
)

_COMMON_ADVERBS = frozenset(
    """
    very too also just only now then here soon daily weekly monthly
    tonight today tomorrow yesterday always never often really currently
    newly fully recently
    """.split()
)


def _suffix_tag(word: str) -> str:
    """Open-class fallback by suffix shape."""
    lower = word.lower()
    if lower.endswith("ing") and len(lower) > 4:
        return "VBG"
    if lower.endswith("ed") and len(lower) > 3:
        return "VBD"
    if lower.endswith("ly") and len(lower) > 3:
        return "RB"
    if lower.endswith(("tion", "sion", "ment", "ness", "ship", "ance", "ence")):
        return "NN"
    if lower.endswith(("ous", "ful", "ive", "ible", "able", "ic", "ish")):
        return "JJ"
    if lower.endswith("est") and len(lower) > 4:
        return "JJS"
    if lower.endswith("er") and len(lower) > 4 and lower[:-2] in _COMMON_ADJECTIVES:
        return "JJR"
    if lower.endswith("s") and len(lower) > 3 and not lower.endswith("ss"):
        return "NNS"
    return "NN"


def _is_name_like(word: str) -> bool:
    lower = word.lower().strip(".")
    return (
        lower in gaz.FIRST_NAMES
        or lower in gaz.LAST_NAMES
        or lower in gaz.CITIES
        or lower in gaz.STATES
        or lower in gaz.ORG_HEAD_WORDS
        or lower in gaz.NAME_PREFIXES
    )


def _base_tag(token: Token) -> str:
    text = token.text
    lower = token.lower

    if not token.is_word:
        return "SYM" if text in "$€£#%&+" else "PUNCT"
    if token.is_numeric:
        return "CD"
    # Ordinals and mixed numerics (3rd, 12th, 1040EZ, 2-bed).
    if any(ch.isdigit() for ch in text):
        if lower.endswith(("st", "nd", "rd", "th")) and lower[:-2].isdigit():
            return "CD"
        return "CD" if sum(ch.isdigit() for ch in text) >= len(text) / 2 else "NN"
    if lower in _CLOSED:
        return _CLOSED[lower]
    if _is_name_like(text) and token.is_capitalized:
        return "NNP"
    if lower in _COMMON_VERBS:
        if lower.endswith("s") and lower not in ("is", "was", "has", "does"):
            return "VBZ"
        if lower.endswith("ing"):
            return "VBG"
        if lower.endswith("ed"):
            return "VBD"
        return "VB"
    if lower in _COMMON_ADJECTIVES:
        return "JJ"
    if lower in _COMMON_ADVERBS:
        return "RB"
    if lower in _COMMON_NOUNS:
        return "NNS" if lower.endswith("s") and lower[:-1] in _COMMON_NOUNS else "NN"
    if token.is_all_caps and len(text) >= 2:
        return "NNP"
    if token.is_capitalized:
        return "NNP"
    return _suffix_tag(text)


def _repair(tagged: List[Tuple[Token, str]]) -> List[Tuple[Token, str]]:
    """Contextual repairs for the ambiguities that matter downstream."""
    out = list(tagged)
    for i, (token, tag) in enumerate(out):
        prev_tag = out[i - 1][1] if i > 0 else None
        # "to <base verb>" — infinitive.
        if prev_tag == "TO" and tag in ("NN", "NNP") and token.lower in _COMMON_VERBS:
            out[i] = (token, "VB")
        # Determiner forces a nominal reading of a verb-shaped word.
        elif prev_tag == "DT" and tag in ("VB", "VBZ"):
            out[i] = (token, "NN" if tag == "VB" else "NNS")
        # Past participle after a form of "be"/"have".
        elif (
            tag == "VBD"
            and prev_tag in ("VBZ", "VB", "MD")
            and i > 0
            and out[i - 1][0].lower in ("is", "are", "was", "were", "been", "be", "has", "have", "had")
        ):
            out[i] = (token, "VBN")
    return out


def pos_tag(text_or_tokens) -> List[Tuple[Token, str]]:
    """Tag a string or a pre-tokenised list; returns (token, tag) pairs."""
    if isinstance(text_or_tokens, str):
        tokens: Sequence[Token] = tokenize(text_or_tokens)
    else:
        tokens = text_or_tokens
    tagged = [(t, _base_tag(t)) for t in tokens]
    return _repair(tagged)
