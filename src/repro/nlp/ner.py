"""Named entity recognition (Stanford NER stand-in).

Recognises PERSON, ORGANIZATION, LOCATION, DATE, TIME, MONEY, PHONE and
EMAIL spans using gazetteers, shape rules and the TIMEX/geocode
recognisers.  Like its real counterpart, it over-triggers on
capitalised token runs — which is precisely the behaviour Fig. 3 of the
paper shows on OCR'd posters, where title-case noise produces spurious
Person/Organization candidates for the text-only baseline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.nlp import gazetteers as gaz
from repro.nlp.geocode import recognize_addresses
from repro.nlp.timex import recognize_timex
from repro.nlp.tokenizer import Token, tokenize

PHONE_RE = re.compile(
    r"(?:\+?1[\s.-]?)?(?:\(\d{3}\)|\d{3})[\s.-]?\d{3}[\s.-]?\d{4}\b"
)
#: RFC-5322-flavoured email pattern (Table 4's Broker Email pattern).
EMAIL_RE = re.compile(
    r"\b[A-Za-z0-9!#$%&'*+/=?^_`{|}~.-]+@[A-Za-z0-9](?:[A-Za-z0-9-]*[A-Za-z0-9])?"
    r"(?:\.[A-Za-z0-9](?:[A-Za-z0-9-]*[A-Za-z0-9])?)+\b"
)
MONEY_RE = re.compile(r"[$€£]\s?\d[\d,]*(?:\.\d{1,2})?(?:\s?(?:k|K|M|million))?")


@dataclass(frozen=True)
class Entity:
    """A recognised named entity span."""

    text: str
    start: int
    end: int
    label: str  # PERSON | ORGANIZATION | LOCATION | DATE | TIME | MONEY | PHONE | EMAIL
    confidence: float = 1.0


def _gazetteer_person_score(words: Sequence[str]) -> float:
    clean = [w.lower().strip(".,") for w in words]
    if not clean:
        return 0.0
    hits = 0.0
    if clean[0] in gaz.NAME_PREFIXES:
        hits += 1.0
        clean = clean[1:]
    if clean and clean[0] in gaz.FIRST_NAMES:
        hits += 1.0
    if clean and clean[-1] in gaz.LAST_NAMES:
        hits += 1.0
    return hits / max(len(words), 1)


def _gazetteer_org_score(words: Sequence[str]) -> float:
    clean = [w.lower().strip(".,") for w in words]
    score = 0.0
    if clean and clean[-1] in gaz.ORG_SUFFIXES:
        score += 0.6
    if any(w in gaz.ORG_HEAD_WORDS for w in clean):
        score += 0.3
    if any(w in gaz.VENUE_WORDS for w in clean):
        score += 0.2
    if any(w in ("of", "for") for w in clean):  # "Department of ..."
        score += 0.1
    return min(score, 1.0)


def _capitalized_runs(tokens: Sequence[Token]) -> List[Tuple[int, int]]:
    """Maximal runs of capitalised word tokens (allowing inner '&'/'of')."""
    runs: List[Tuple[int, int]] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.is_word and (t.is_capitalized or t.is_all_caps) and not t.is_numeric:
            j = i + 1
            while j < n:
                u = tokens[j]
                if u.is_word and (u.is_capitalized or u.is_all_caps) and not u.is_numeric:
                    j += 1
                elif u.text in ("&",) or (u.is_word and u.lower in ("of", "for", "and")):
                    # connective allowed only when followed by another cap
                    if j + 1 < n and tokens[j + 1].is_word and tokens[j + 1].is_capitalized:
                        j += 2
                    else:
                        break
                else:
                    break
            runs.append((i, j))
            i = j
        else:
            i += 1
    return runs


def _classify_run(tokens: Sequence[Token]) -> Optional[Tuple[str, float]]:
    words = [t.text for t in tokens]
    person = _gazetteer_person_score(words)
    org = _gazetteer_org_score(words)
    lower = [w.lower().strip(".,") for w in words]
    if any(w in gaz.CITIES or w in gaz.STATES for w in lower) and org < 0.4:
        return ("LOCATION", 0.7)
    if org >= 0.5 and org >= person:
        return ("ORGANIZATION", min(0.55 + org / 2, 1.0))
    if person >= 0.5 and 1 < len(words) <= 4:
        return ("PERSON", min(0.5 + person / 2, 1.0))
    # Shape-only fallback: 2-3 token title-case run → low-confidence
    # PERSON; longer run → low-confidence ORGANIZATION.  These are the
    # false-positive generators on noisy transcriptions (Fig. 3).
    if 1 < len(words) <= 3 and all(w[0].isupper() for w in words):
        return ("PERSON", 0.35 + person / 4)
    if len(words) > 3:
        return ("ORGANIZATION", 0.3 + org / 4)
    return None


def recognize_entities(text: str, min_confidence: float = 0.3) -> List[Entity]:
    """All entity spans in ``text`` above ``min_confidence``.

    Regex entities (PHONE / EMAIL / MONEY) are found first and their
    character spans blocked; TIMEX and address recognisers contribute
    DATE/TIME/LOCATION; finally capitalised runs are classified into
    PERSON/ORGANIZATION/LOCATION.
    """
    entities: List[Entity] = []
    claimed = [False] * (len(text) + 1)

    def claim(start: int, end: int) -> bool:
        if any(claimed[start:end]):
            return False
        for k in range(start, end):
            claimed[k] = True
        return True

    for label, pattern in (("EMAIL", EMAIL_RE), ("PHONE", PHONE_RE), ("MONEY", MONEY_RE)):
        for m in pattern.finditer(text):
            if claim(m.start(), m.end()):
                entities.append(Entity(m.group(0), m.start(), m.end(), label, 0.95))

    for tm in recognize_timex(text):
        if claim(tm.start, tm.end):
            label = "TIME" if tm.timex_type in ("TIME", "DURATION") else "DATE"
            entities.append(Entity(tm.text, tm.start, tm.end, label, 0.9))

    for g in recognize_addresses(text):
        if g.is_valid and claim(g.start, g.end):
            entities.append(Entity(g.text, g.start, g.end, "LOCATION", g.confidence))

    tokens = tokenize(text)
    free_tokens = [t for t in tokens if not any(claimed[t.start : t.end])]
    for i, j in _capitalized_runs(free_tokens):
        run = free_tokens[i:j]
        result = _classify_run(run)
        if result is None:
            continue
        label, confidence = result
        if confidence < min_confidence:
            continue
        start, end = run[0].start, run[-1].end
        if claim(start, end):
            entities.append(Entity(text[start:end], start, end, label, confidence))

    entities.sort(key=lambda e: e.start)
    return entities


def entities_of(text: str, labels: Sequence[str], min_confidence: float = 0.3) -> List[Entity]:
    wanted = set(labels)
    return [e for e in recognize_entities(text, min_confidence) if e.label in wanted]
