"""Result containers and text formatting for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.metrics import PipelineMetrics


@dataclass
class TableResult:
    """One reproduced table: header, rows, free-form notes.

    ``rows`` map column name → value; ``None`` values render as a dash
    (method not applicable), matching the paper's table typography.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Optional[Dict[str, object]]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        return None

    def value(self, key_column: str, key: object, column: str) -> Optional[object]:
        row = self.row_for(key_column, key)
        return None if row is None else row.get(column)

    def format(self) -> str:
        widths = {
            c: max(len(c), *(len(_cell(r.get(c))) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(
                " | ".join(_cell(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value * 100:.2f}" if -1.0 <= value <= 1.0 else f"{value:.2f}"
    return str(value)


def percent(value: Optional[float]) -> Optional[float]:
    """Identity passthrough kept for call-site readability: metric
    fractions render as percentages via :func:`_cell`."""
    return value


def timing_table(
    metrics: "PipelineMetrics", title: str = "Per-stage timing"
) -> TableResult:
    """A :class:`TableResult` view of a per-stage metrics accumulator,
    so profiling output renders with the same typography as the paper
    tables (``repro bench`` and the bench-smoke snapshot use it)."""
    table = TableResult(
        title=title,
        columns=[
            "stage", "calls", "total s", "ms/call",
            "p50 ms", "p95 ms", "max ms", "items",
        ],
    )

    def ms_cell(value: Optional[float]) -> str:
        # Preformatted: _cell renders floats in [-1, 1] as percentages.
        return "-" if value is None else f"{value:.2f}"

    for name in metrics.ordered_names():
        stats = metrics[name]
        table.add_row(**{
            "stage": ("  " + name) if "." in name else name,
            "calls": stats.calls,
            "total s": f"{stats.seconds:.3f}",
            "ms/call": f"{stats.ms_per_call:.2f}",
            "p50 ms": ms_cell(stats.p50_ms),
            "p95 ms": ms_cell(stats.p95_ms),
            "max ms": ms_cell(stats.max_ms),
            "items": stats.items,
        })
    table.notes.append(
        f"summed top-level stage time {metrics.total_seconds():.3f}s; "
        "dotted sub-stages nest inside their parents (excluded from the "
        "sum), and the sum exceeds the corpus wall-time when workers overlap"
    )
    table.notes.append(
        "p50/p95/max come from bounded log-scale latency histograms of "
        "individually timed calls; dashes mean a stage only recorded "
        "aggregate or instantaneous samples"
    )
    return table
