"""Result containers and text formatting for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TableResult:
    """One reproduced table: header, rows, free-form notes.

    ``rows`` map column name → value; ``None`` values render as a dash
    (method not applicable), matching the paper's table typography.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Optional[Dict[str, object]]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        return None

    def value(self, key_column: str, key: object, column: str) -> Optional[object]:
        row = self.row_for(key_column, key)
        return None if row is None else row.get(column)

    def format(self) -> str:
        widths = {
            c: max(len(c), *(len(_cell(r.get(c))) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(
                " | ".join(_cell(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value * 100:.2f}" if -1.0 <= value <= 1.0 else f"{value:.2f}"
    return str(value)


def percent(value: Optional[float]) -> Optional[float]:
    """Identity passthrough kept for call-site readability: metric
    fractions render as percentages via :func:`_cell`."""
    return value
