"""Error analysis (§6.3 / §6.4 narrative).

The paper attributes ~80 % of segmentation errors to *over-segmentation*
driven by low-quality transcription inhibiting semantic merging, and
notes D2's end-to-end gap to D3 stems from the same effect on mobile
captures.  This module classifies every localisation failure so that
claim is checkable:

=====================  ==============================================
category               definition (per missed ground-truth area)
=====================  ==============================================
``over-segmentation``  ≥ 2 proposals each overlap the GT area
                       substantially but none reaches the IoU bar
``under-segmentation`` the best proposal reaches the bar's overlap on
                       the GT side but is much larger (merged areas)
``drift``              exactly one proposal overlaps, same scale,
                       but misaligned
``missing``            nothing overlaps the GT area at all
=====================  ==============================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.doc import Annotation
from repro.geometry import BBox

IOU_BAR = 0.65


@dataclass
class ErrorBreakdown:
    """Counts per failure category plus the matched count."""

    matched: int = 0
    over_segmentation: int = 0
    under_segmentation: int = 0
    drift: int = 0
    missing: int = 0

    @property
    def total_errors(self) -> int:
        return self.over_segmentation + self.under_segmentation + self.drift + self.missing

    def fraction(self, category: str) -> float:
        value = getattr(self, category)
        return value / self.total_errors if self.total_errors else 0.0

    def add(self, other: "ErrorBreakdown") -> "ErrorBreakdown":
        for field in ("matched", "over_segmentation", "under_segmentation", "drift", "missing"):
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def __str__(self) -> str:
        return (
            f"matched={self.matched} over={self.over_segmentation} "
            f"under={self.under_segmentation} drift={self.drift} missing={self.missing}"
        )


def _coverage(proposal: BBox, gt: BBox) -> float:
    """Fraction of the GT area covered by the proposal."""
    inter = proposal.intersection(gt)
    if inter is None or gt.area <= 0:
        return 0.0
    return inter.area / gt.area


def classify_misses(
    proposals: Sequence[BBox],
    annotations: Sequence[Annotation],
    iou_bar: float = IOU_BAR,
) -> ErrorBreakdown:
    """Classify every ground-truth area of one document."""
    out = ErrorBreakdown()
    for a in annotations:
        ious = [p.iou(a.bbox) for p in proposals]
        if any(v > iou_bar for v in ious):
            out.matched += 1
            continue
        coverages = [_coverage(p, a.bbox) for p in proposals]
        overlapping = [i for i, c in enumerate(coverages) if c > 0.2]
        if not overlapping:
            out.missing += 1
        elif len(overlapping) >= 2:
            out.over_segmentation += 1
        else:
            p = proposals[overlapping[0]]
            if p.area > 1.8 * a.bbox.area and coverages[overlapping[0]] > 0.8:
                out.under_segmentation += 1
            else:
                out.drift += 1
    return out


def error_report(
    per_doc: Sequence[tuple],
    iou_bar: float = IOU_BAR,
) -> ErrorBreakdown:
    """Aggregate classification over ``(proposals, annotations)`` pairs."""
    total = ErrorBreakdown()
    for proposals, annotations in per_doc:
        total.add(classify_misses(proposals, annotations, iou_bar))
    return total


def by_source(
    docs_with_proposals: Sequence[tuple],
    iou_bar: float = IOU_BAR,
) -> Dict[str, ErrorBreakdown]:
    """Breakdowns grouped by document source kind — the §6.3 comparison
    between mobile captures and digital documents."""
    groups: Dict[str, ErrorBreakdown] = {}
    for doc, proposals in docs_with_proposals:
        groups.setdefault(doc.source, ErrorBreakdown()).add(
            classify_misses(proposals, doc.annotations, iou_bar)
        )
    return groups
