"""Figure runners: text renderings of the paper's illustrative figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import VS2Segmenter
from repro.core.interest_points import select_interest_points
from repro.doc.render import ascii_render
from repro.harness.runner import ExperimentContext
from repro.nlp.ner import recognize_entities


@dataclass
class FigureResult:
    """A reproduced figure: a title, the rendering, and findings."""

    title: str
    body: str
    notes: List[str]

    def format(self) -> str:
        lines = [self.title, "=" * len(self.title), self.body]
        lines += [f"  * {n}" for n in self.notes]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def figure3(context: Optional[ExperimentContext] = None, doc_index: int = 0) -> FigureResult:
    """Fig. 3: the text-only failure mode.

    Transcribe a poster, run NER over the whole-page linearisation and
    count the Person/Organization candidates — the false-positive pool
    a text-only extractor must disambiguate for 'Event Organizer'.
    """
    context = context or ExperimentContext.default()
    cleaned = context.cleaned("D2")[doc_index]
    doc = cleaned.original
    transcription = context.engine.transcribe(doc).full_text()
    entities = recognize_entities(transcription)
    person_org = [e for e in entities if e.label in ("PERSON", "ORGANIZATION")]
    true_organizer = next(
        (a.text for a in doc.annotations if a.entity_type == "event_organizer"), ""
    )
    body_lines = ["--- OCR transcription (reading order) ---", transcription, ""]
    body_lines.append("--- Person/Organization candidates (potential Event Organizer matches) ---")
    for e in person_org:
        marker = "<== ground truth" if true_organizer and e.text.lower() in true_organizer.lower() else ""
        body_lines.append(f"  [{e.label:12s}] {e.text!r} (conf {e.confidence:.2f}) {marker}")
    notes = [
        f"{len(person_org)} Person/Organization candidates for 1 true organizer",
        f"document source: {doc.source} (noise profile {doc.metadata.get('noise')})",
    ]
    return FigureResult(
        "Figure 3: text-only transcription and its NER candidates", "\n".join(body_lines), notes
    )


def figure4_and_6(
    context: Optional[ExperimentContext] = None, doc_index: int = 0
) -> FigureResult:
    """Figs. 4 and 6: the layout model, logical blocks and interest
    points of a poster, rendered as ASCII."""
    context = context or ExperimentContext.default()
    cleaned = context.cleaned("D2")[doc_index]
    segmenter = VS2Segmenter()
    tree = segmenter.segment(cleaned.observed)
    blocks = [b for b in tree.logical_blocks() if b.text_atoms]
    interest = select_interest_points(blocks)
    interest_ids = {id(b) for b in interest}

    body_lines = ["--- logical blocks ('*' prefix = interest point, Fig. 6) ---"]
    boxes = []
    labels = []
    for i, block in enumerate(blocks):
        star = "*" if id(block) in interest_ids else " "
        body_lines.append(
            f" {star} block[{i}] h={block.bbox.h:6.1f} words={block.word_count():3d} "
            f"text={block.text()[:48]!r}"
        )
        boxes.append(block.bbox)
        labels.append(f"{'*' if id(block) in interest_ids else ''}{i}")
    body_lines.append("")
    body_lines.append(ascii_render(cleaned.observed, boxes, cols=96, rows=40, labels=labels))
    body_lines.append("")
    body_lines.append("--- layout tree (Fig. 4) ---")

    def walk(node, depth):
        body_lines.append(
            "  " * depth
            + f"{node.kind} bbox=({node.bbox.x:.0f},{node.bbox.y:.0f},{node.bbox.w:.0f},{node.bbox.h:.0f})"
            + (f" text={node.text()[:32]!r}" if node.is_leaf else "")
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(tree.root, 0)
    notes = [
        f"{len(blocks)} logical blocks, {len(interest)} interest points "
        f"(first-order Pareto front of height/coherence/density)",
        f"layout tree height {tree.height}, {tree.node_count()} nodes",
    ]
    return FigureResult(
        "Figures 4 & 6: layout model, logical blocks and interest points",
        "\n".join(body_lines),
        notes,
    )
