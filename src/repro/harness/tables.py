"""Table runners — one per table of the paper's evaluation (§6)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.extraction import (
    ApostolovaExtractor,
    ClausIEExtractor,
    FsmExtractor,
    MlBasedExtractor,
    ReportMinerExtractor,
    TextOnlyExtractor,
)
from repro.baselines.segmentation import (
    text_cluster_blocks,
    vips_blocks,
    voronoi_blocks,
    xycut_blocks,
)
from repro.core import VS2Config, VS2Segmenter, VS2Selector
from repro.core.config import SegmentConfig, SelectConfig
from repro.core.holdout import (
    distribution_is_approximately_normal,
    pattern_distribution,
)
from repro.core.patterns import CURATED_PATTERNS, mine_entity_patterns
from repro.synth.holdout import build_holdout_corpus
from repro.core.select import Extraction
from repro.doc import Document
from repro.embeddings import default_embedding
from repro.eval.metrics import (
    PRF,
    corpus_segmentation_scores,
    end_to_end_scores,
    per_document_f1,
)
from repro.eval.significance import paired_t_test
from repro.harness.reporting import TableResult
from repro.harness.runner import ExperimentContext
from repro.perf.metrics import PipelineMetrics
from repro.ocr.layout_analysis import tesseract_blocks
from repro.synth.corpus import entity_vocabulary
from repro.synth.websites import HOLDOUT_SOURCES

DATASETS = ("D1", "D2", "D3")

#: Pretty entity names used by Tables 6 and 8.
ENTITY_LABELS = {
    "event_title": "Event Title",
    "event_place": "Event Place",
    "event_time": "Event Time",
    "event_organizer": "Event Organizer",
    "event_description": "Event Description",
    "broker_name": "Broker Name",
    "broker_phone": "Broker Phone",
    "broker_email": "Broker Email",
    "property_address": "Property Address",
    "property_size": "Property Size",
    "property_description": "Property Desc.",
}


class _VS2Extractor:
    """VS2 as an ``extract(observed)`` object over cleaned documents.

    Runs segment + select on the already cleaned view so every method
    in a table consumes the identical transcription.
    """

    def __init__(
        self,
        dataset: str,
        config: Optional[VS2Config] = None,
        metrics: Optional[PipelineMetrics] = None,
    ):
        config = config or VS2Config()
        embedding = default_embedding()
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.segmenter = VS2Segmenter(config.segment, embedding, metrics=self.metrics)
        self.selector = VS2Selector(
            dataset, config.select, embedding=embedding, metrics=self.metrics
        )

    def extract(self, observed: Document) -> List[Extraction]:  # exc: boundary - harness adapter; faults propagate unless run supervised
        """Segment + select on an already cleaned document view."""
        with self.metrics.stage("segment") as t:
            blocks = self.segmenter.segment(observed).logical_blocks()
            t.items = len(blocks)
        with self.metrics.stage("select") as t:
            out = self.selector.extract(observed, blocks)
            t.items = len(out)
        return out


def _vs2_blocks(config: Optional[SegmentConfig] = None) -> Callable:
    segmenter = VS2Segmenter(config)
    return segmenter.block_bboxes


# ----------------------------------------------------------------------
# Table 5 — segmentation
# ----------------------------------------------------------------------
def table5(context: Optional[ExperimentContext] = None) -> TableResult:
    """Evaluation of VS2-Segment against five page segmentation
    algorithms (precision / recall per dataset, IoU > 0.65)."""
    context = context or ExperimentContext.default()
    algorithms: List[Tuple[str, str, Callable]] = [
        ("A1", "Text-only", text_cluster_blocks),
        ("A2", "XY-Cut", xycut_blocks),
        ("A3", "Voronoi-tessellation", voronoi_blocks),
        ("A4", "VIPS", vips_blocks),
        ("A5", "Tesseract", tesseract_blocks),
        ("A6", "VS2-Segment", _vs2_blocks()),
    ]
    table = TableResult(
        "Table 5: Evaluation of VS2-Segment on experimental datasets",
        ["Index", "Algorithm"]
        + [f"{d} {m}" for d in DATASETS for m in ("Pr", "Rec")],
    )
    for index, name, algorithm in algorithms:
        row: Dict[str, object] = {"Index": index, "Algorithm": name}
        for dataset in DATASETS:
            runs = context.run_segmentation(dataset, algorithm)
            if runs is None:
                row[f"{dataset} Pr"] = None
                row[f"{dataset} Rec"] = None
                continue
            prf = corpus_segmentation_scores(
                (boxes, doc.annotations) for boxes, doc in runs
            )
            row[f"{dataset} Pr"] = prf.precision
            row[f"{dataset} Rec"] = prf.recall
        table.rows.append(row)
    table.notes.append(
        "A4 (VIPS) is not applicable to D1 scans: no reliable HTML conversion path."
    )
    return table


# ----------------------------------------------------------------------
# Tables 6 and 8 — per-entity end-to-end vs the text-only baseline
# ----------------------------------------------------------------------
def _per_entity_table(
    dataset: str, title: str, context: ExperimentContext
) -> TableResult:
    docs = context.cleaned(dataset)
    vs2_results = context.run_extractor(
        _VS2Extractor(dataset, metrics=context.metrics), docs
    )
    text_results = context.run_extractor(TextOnlyExtractor(dataset), docs)
    vs2_overall, vs2_entities = end_to_end_scores(vs2_results)
    text_overall, text_entities = end_to_end_scores(text_results)

    table = TableResult(title, ["Index", "Named Entity", "Pr", "Rec", "dF1"])
    for i, entity in enumerate(entity_vocabulary(dataset), start=1):
        vs2 = vs2_entities.get(entity, PRF())
        text = text_entities.get(entity, PRF())
        table.add_row(
            **{
                "Index": f"N{i}",
                "Named Entity": ENTITY_LABELS.get(entity, entity),
                "Pr": vs2.precision,
                "Rec": vs2.recall,
                "dF1": vs2.f1 - text.f1,
            }
        )
    table.add_row(
        **{
            "Index": "",
            "Named Entity": "Overall",
            "Pr": vs2_overall.precision,
            "Rec": vs2_overall.recall,
            "dF1": vs2_overall.f1 - text_overall.f1,
        }
    )
    test = paired_t_test(per_document_f1(vs2_results), per_document_f1(text_results))
    table.notes.append(
        f"paired t-test vs text-only baseline: t={test.statistic:.2f}, "
        f"p={test.p_value:.4f} ({'significant' if test.significant() else 'not significant'} at 0.05)"
    )
    return table


def table6(context: Optional[ExperimentContext] = None) -> TableResult:
    """End-to-end evaluation of VS2 on D2 (ΔF1 vs text-only)."""
    context = context or ExperimentContext.default()
    return _per_entity_table("D2", "Table 6: End-to-end evaluation of VS2 on D2", context)


def table8(context: Optional[ExperimentContext] = None) -> TableResult:
    """End-to-end evaluation of VS2 on D3 (ΔF1 vs text-only)."""
    context = context or ExperimentContext.default()
    return _per_entity_table("D3", "Table 8: End-to-end evaluation of VS2 on D3", context)


# ----------------------------------------------------------------------
# Table 7 — end-to-end comparison against existing methods
# ----------------------------------------------------------------------
def table7(context: Optional[ExperimentContext] = None) -> TableResult:
    """Comparison of end-to-end performance on all datasets.

    Trained baselines (ML-based, Apostolova, ReportMiner) fit on the
    60% split; *all* methods are evaluated on the held-out 40% so every
    cell of the table scores the same documents.  The ML-based method
    runs only on HTML-convertible documents (D2's PDF fraction, D3).
    """
    context = context or ExperimentContext.default()
    table = TableResult(
        "Table 7: Comparison of end-to-end performance against existing methods",
        ["Index", "Algorithm"]
        + [f"{d} {m}" for d in DATASETS for m in ("Pr", "Rec")],
    )

    methods: List[Tuple[str, str]] = [
        ("A1", "ClausIE"),
        ("A2", "FSM"),
        ("A3", "ML-based"),
        ("A4", "Apostolova et al."),
        ("A5", "ReportMiner"),
        ("A6", "VS2"),
    ]
    for index, name in methods:
        row: Dict[str, object] = {"Index": index, "Algorithm": name}
        for dataset in DATASETS:
            prf = _table7_cell(name, dataset, context)
            row[f"{dataset} Pr"] = None if prf is None else prf.precision
            row[f"{dataset} Rec"] = None if prf is None else prf.recall
        table.rows.append(row)
    table.notes.append(
        "ClausIE and ML-based do not apply to D1; ML-based on D2 scores its"
        " applicable (PDF) documents only."
    )
    return table


def _table7_cell(
    name: str, dataset: str, context: ExperimentContext
) -> Optional[PRF]:
    train, test = context.split(dataset)
    source_filter = None
    if name == "ClausIE":
        if dataset == "D1":
            return None
        extractor = ClausIEExtractor(dataset)
    elif name == "FSM":
        extractor = FsmExtractor(dataset)
    elif name == "ML-based":
        if dataset == "D1":
            return None
        extractor = MlBasedExtractor(dataset)
        train_docs = [c.original for c in train if extractor.applicable(c.original)]
        if not train_docs:
            return None
        extractor.fit(train_docs)
        if dataset == "D2":
            source_filter = "pdf"
    elif name == "Apostolova et al.":
        extractor = ApostolovaExtractor(dataset)
        extractor.fit([c.original for c in train])
    elif name == "ReportMiner":
        extractor = ReportMinerExtractor(dataset)
        extractor.fit([c.original for c in train])
    elif name == "VS2":
        extractor = _VS2Extractor(dataset, metrics=context.metrics)
    else:
        raise ValueError(f"unknown method {name!r}")
    results = context.run_extractor(extractor, test, source_filter)
    if not results:
        return None
    return end_to_end_scores(results)[0]


# ----------------------------------------------------------------------
# Table 9 — ablation study
# ----------------------------------------------------------------------
def table9(context: Optional[ExperimentContext] = None) -> TableResult:
    """Individual component effects: each row disables one component
    and reports the F1 *drop* (ΔF1, positive = the component helps)."""
    context = context or ExperimentContext.default()

    def config(merging=True, clustering=True, disambiguation="multimodal") -> VS2Config:
        cfg = VS2Config()
        cfg.segment = SegmentConfig(
            use_semantic_merging=merging, use_visual_clustering=clustering
        )
        cfg.select = SelectConfig(disambiguation=disambiguation)
        return cfg

    scenarios: List[Tuple[str, str, VS2Config]] = [
        ("A1", "- semantic merging", config(merging=False)),
        ("A2", "- visual clustering", config(clustering=False)),
        ("A3", "- entity disambiguation", config(disambiguation="none")),
        ("A4", "text-only disambiguation (Lesk)", config(disambiguation="lesk")),
    ]

    full_f1: Dict[str, float] = {}
    for dataset in DATASETS:
        docs = context.cleaned(dataset)
        full = end_to_end_scores(
            context.run_extractor(_VS2Extractor(dataset, metrics=context.metrics), docs)
        )[0]
        full_f1[dataset] = full.f1

    table = TableResult(
        "Table 9: Evaluating individual components in VS2 by ablation study",
        ["Index", "Scenario", "dF1 D1", "dF1 D2", "dF1 D3"],
    )
    for index, label, cfg in scenarios:
        row: Dict[str, object] = {"Index": index, "Scenario": label}
        for dataset in DATASETS:
            docs = context.cleaned(dataset)
            ablated = end_to_end_scores(
                context.run_extractor(
                    _VS2Extractor(dataset, cfg, metrics=context.metrics), docs
                )
            )[0]
            row[f"dF1 {dataset}"] = full_f1[dataset] - ablated.f1
        table.rows.append(row)
    table.notes.append("ΔF1 = F1(full VS2) − F1(ablated); positive means the component helps.")
    return table


# ----------------------------------------------------------------------
# Table 2 — holdout corpus construction
# ----------------------------------------------------------------------
def table2(seed: int = 0) -> TableResult:
    """Holdout corpus summary: source sites, extracted tuples, and the
    Shapiro–Wilk normality check on the pattern distribution."""
    table = TableResult(
        "Table 2: Constructing the holdout corpus",
        ["Dataset", "Source", "Entities", "Tuples", "Patterns approx. normal"],
    )
    for dataset in DATASETS:
        corpus = build_holdout_corpus(dataset, seed=seed, max_entries_per_entity=120)
        sources = ", ".join(note.split(" | ")[0] for _, _, note in HOLDOUT_SOURCES[dataset])
        counts = pattern_distribution(corpus.all_texts()[:400])
        table.add_row(
            **{
                "Dataset": dataset,
                "Source": sources,
                "Entities": len(corpus.entity_types()),
                "Tuples": corpus.size(),
                "Patterns approx. normal": str(
                    distribution_is_approximately_normal(counts)
                ),
            }
        )
    return table


# ----------------------------------------------------------------------
# Tables 3 / 4 — the learned syntactic patterns
# ----------------------------------------------------------------------
def tables3_4(seed: int = 0, max_entries: int = 24) -> TableResult:
    """Per entity: the curated (Table 3/4) pattern next to the top
    maximal frequent subtrees mined from the holdout corpus."""
    table = TableResult(
        "Tables 3 & 4: Syntactic patterns per named entity",
        ["Dataset", "Named Entity", "Curated pattern", "Top mined subtree", "Support"],
    )
    for dataset in ("D2", "D3"):
        holdout = build_holdout_corpus(dataset, seed=seed, max_entries_per_entity=max_entries)
        for entity in entity_vocabulary(dataset):
            mined = mine_entity_patterns(holdout.texts_for(entity), max_trees=max_entries)
            top = mined[0] if mined else None
            table.add_row(
                **{
                    "Dataset": dataset,
                    "Named Entity": ENTITY_LABELS.get(entity, entity),
                    "Curated pattern": CURATED_PATTERNS[entity].name,
                    "Top mined subtree": " ".join(top.encoding) if top else "-",
                    "Support": top.support if top else None,
                }
            )
    return table
