"""Experiment harness: one runner per table and figure of the paper.

Every public function regenerates one experimental artefact:

=====================  ================================================
``table5``             segmentation comparison (A1–A6 × D1/D2/D3)
``table6``             end-to-end per-entity results on D2 (+ΔF1)
``table7``             end-to-end comparison of six methods
``table8``             end-to-end per-entity results on D3 (+ΔF1)
``table9``             ablation study (ΔF1 per disabled component)
``table2``             holdout corpus construction summary
``tables3_4``          learned syntactic patterns (mined vs curated)
``figure3``            text-only NER false positives on a poster
``figure4_and_6``      layout tree / logical blocks / interest points
=====================  ================================================

All runners take ``n_docs`` and ``seed``; absolute numbers move with
corpus size, the paper's *shape* (who wins, by how much, where it
breaks) is what the accompanying benches assert.
"""

from repro.harness.reporting import TableResult, timing_table
from repro.harness.runner import ExperimentContext
from repro.harness.tables import (
    table2,
    table5,
    table6,
    table7,
    table8,
    table9,
    tables3_4,
)
from repro.harness.figures import figure3, figure4_and_6

__all__ = [
    "TableResult",
    "timing_table",
    "ExperimentContext",
    "table2",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "tables3_4",
    "figure3",
    "figure4_and_6",
]
