"""Shared experiment plumbing.

:class:`ExperimentContext` owns the corpora, the OCR engine and the
cleaned (deskewed) views, cached so the same transcription feeds every
algorithm — the paper's protocol of evaluating all competitors on
identical inputs.

The context rides on the :mod:`repro.perf` layer: a shared
:class:`~repro.perf.cache.TranscriptionCache` memoises the clean step
(so harness *and* pipeline transcribe each document exactly once per
process), a :class:`~repro.perf.metrics.PipelineMetrics` accumulator
records where the wall-time goes, and :meth:`ExperimentContext.
run_pipeline` fans a dataset out across a
:class:`~repro.perf.runner.CorpusRunner` process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.select import Extraction
from repro.doc import Document
from repro.geometry import BBox
from repro.ocr import OcrEngine
from repro.ocr.deskew import rotate_back
from repro.perf.cache import TranscriptionCache
from repro.perf.metrics import PipelineMetrics
from repro.perf.runner import CorpusRunner, CorpusRunResult
from repro.synth import Corpus, generate_corpus, train_test_split

#: A segmentation algorithm: cleaned document → block proposals (or
#: ``None`` when not applicable to this document).
SegmentationFn = Callable[[Document], Optional[List[BBox]]]


@dataclass
class CleanedDoc:
    """One document with its cleaned OCR view."""

    original: Document
    observed: Document  # deskewed OCR view (no ground truth)
    angle: float

    def to_original_frame(self, box: BBox) -> BBox:
        return rotate_back(box, self.angle, self.observed)

    def extraction_to_original(self, e: Extraction) -> Extraction:
        if self.angle == 0.0:
            return e
        return Extraction(
            e.entity_type,
            e.text,
            self.to_original_frame(e.bbox),
            self.to_original_frame(e.span_bbox),
            e.score,
        )


class ExperimentContext:
    """Corpus + transcription cache shared by the table runners."""

    def __init__(
        self,
        n_docs: Dict[str, int],
        seed: int = 0,
        ocr_seed: int = 7,
        cache: Optional[TranscriptionCache] = None,
        metrics: Optional[PipelineMetrics] = None,
    ):
        self.n_docs = dict(n_docs)
        self.seed = seed
        self.engine = OcrEngine(seed=ocr_seed)
        #: Clean-step memo shared with any pipeline built over this
        #: context (pass it to ``VS2Pipeline(cache=ctx.cache)``).
        self.cache = cache or TranscriptionCache()
        #: Per-stage wall-time accumulated by everything this context runs.
        self.metrics = metrics or PipelineMetrics()
        self._corpora: Dict[str, Corpus] = {}
        self._cleaned: Dict[str, List[CleanedDoc]] = {}

    @staticmethod
    def default(scale: int = 1, seed: int = 0) -> "ExperimentContext":
        """A context sized for bench runs (``scale`` multiplies the
        per-dataset document counts)."""
        # D1 needs enough documents that the 60% split covers most of
        # the 20 form faces (the trained baselines learn per-face).
        return ExperimentContext(
            {"D1": 100 * scale, "D2": 40 * scale, "D3": 40 * scale}, seed=seed
        )

    # ------------------------------------------------------------------
    def corpus(self, dataset: str) -> Corpus:
        dataset = dataset.upper()
        if dataset not in self._corpora:
            self._corpora[dataset] = generate_corpus(
                dataset, self.n_docs.get(dataset, 0), self.seed
            )
        return self._corpora[dataset]

    def cleaned(self, dataset: str) -> List[CleanedDoc]:
        dataset = dataset.upper()
        if dataset not in self._cleaned:
            cleaned: List[CleanedDoc] = []
            for doc in self.corpus(dataset):
                _, observed, angle = self.cache.cleaned(self.engine, doc, self.metrics)
                cleaned.append(CleanedDoc(doc, observed, angle))
            self._cleaned[dataset] = cleaned
        return self._cleaned[dataset]

    def split(self, dataset: str, train_fraction: float = 0.6) -> Tuple[List[CleanedDoc], List[CleanedDoc]]:
        """Train/test split over the cleaned views (same shuffle as the
        corpus-level split so annotations stay aligned)."""
        cleaned = self.cleaned(dataset)
        corpus = self.corpus(dataset)
        train_corpus, _ = train_test_split(corpus, train_fraction, seed=self.seed)
        train_ids = {d.doc_id for d in train_corpus}
        train = [c for c in cleaned if c.original.doc_id in train_ids]
        test = [c for c in cleaned if c.original.doc_id not in train_ids]
        return train, test

    # ------------------------------------------------------------------
    def run_pipeline(
        self,
        dataset: str,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        tracer=None,
        config=None,
        registry=None,
    ) -> CorpusRunResult:
        """Run the full VS2 pipeline over one dataset's corpus through
        the instrumented :class:`CorpusRunner`.

        ``workers > 1`` uses a process pool; results keep corpus order
        either way, per-document failures are isolated, and the run's
        per-stage metrics are folded into :attr:`metrics`.  An optional
        ``tracer`` (:class:`repro.trace.Tracer`) receives the run's
        span tree and decision events; an optional ``config``
        (:class:`repro.core.config.VS2Config`) overrides the pipeline
        configuration — ``repro bench --naive-cuts`` uses it to run
        the A/B reference cut search.  An optional ``registry``
        (:class:`repro.obs.registry.MetricRegistry`) receives the run's
        labeled metrics; the outcome always carries one either way.
        """
        runner = CorpusRunner(
            dataset,
            workers=workers,
            chunk_size=chunk_size,
            cache=self.cache,
            tracer=tracer,
            config=config,
            registry=registry,
        )
        outcome = runner.run(list(self.corpus(dataset)))
        self.metrics.merge(outcome.metrics)
        return outcome

    # ------------------------------------------------------------------
    def run_segmentation(
        self, dataset: str, algorithm: SegmentationFn
    ) -> Optional[List[Tuple[List[BBox], Document]]]:
        """Apply a segmentation algorithm to every cleaned document.

        Returns per-doc ``(proposals_in_original_frame, original)``, or
        ``None`` when the algorithm is inapplicable to the dataset.
        """
        out: List[Tuple[List[BBox], Document]] = []
        for c in self.cleaned(dataset):
            boxes = algorithm(c.observed)
            if boxes is None:
                return None
            out.append(([c.to_original_frame(b) for b in boxes], c.original))
        return out

    def run_extractor(
        self,
        extractor,
        docs: Sequence[CleanedDoc],
        source_filter: Optional[str] = None,
    ) -> List[Tuple[List[Extraction], Document]]:
        """Apply an extractor (``extract(observed)``) to cleaned docs."""
        results = []
        for c in docs:
            if source_filter is not None and c.original.source != source_filter:
                continue
            extractions = [c.extraction_to_original(e) for e in extractor.extract(c.observed)]
            results.append((extractions, c.original))
        return results
