"""Configuration of the long-lived extraction service.

Every knob of the robustness envelope lives here so a server's whole
behaviour — capacity, overload policy, degradation thresholds — is one
reproducible value, mirroring how :class:`repro.core.config.VS2Config`
captures the pipeline.  ``docs/SERVING.md`` documents the semantics of
each group (admission, batching, deadlines, circuit breakers, drain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import VS2Config


@dataclass
class BreakerConfig:
    """Per-stage circuit-breaker tuning.

    The breaker watches degradation-ladder activations per dispatched
    batch: once at least ``window`` documents have been observed and
    the failure fraction reaches ``threshold``, it opens and the stage
    is degraded *proactively* (merge → visual-only, select → NER
    fallback) for ``cooldown_batches`` batches, after which one trial
    batch runs un-degraded (half-open) and decides between closing and
    re-opening.
    """

    window: int = 8
    threshold: float = 0.5
    cooldown_batches: int = 2


@dataclass
class ServeConfig:
    """Top-level server configuration."""

    #: Which dataset wiring to serve (``D1`` | ``D2`` | ``D3``).
    dataset: str = "D2"
    #: Pipeline workers in the warm pool; ``1`` serves in-process.
    workers: int = 2
    #: Optional pipeline-config override shared by every request.
    pipeline: Optional[VS2Config] = None
    #: The warm corpus: synthesised once at boot; ``/extract`` requests
    #: reference documents by index into it.
    corpus_n: int = 32
    corpus_seed: int = 0
    #: Bounded admission queue: requests beyond this depth are shed
    #: with 429 + ``Retry-After`` instead of queuing without bound.
    queue_limit: int = 16
    #: Default per-request deadline (seconds from admission; callers
    #: may override per request).  Expiry anywhere — in queue, during a
    #: batch, at resolution — yields 504, never a hung slot.
    deadline_s: float = 30.0
    #: Seconds a caller shed with 429 should wait before retrying.
    retry_after_s: float = 1.0
    #: Micro-batching: at most ``batch_max`` queued requests coalesce
    #: into one pipeline dispatch; the HTTP dispatcher waits up to
    #: ``batch_window_s`` for the batch to fill.
    batch_max: int = 4
    batch_window_s: float = 0.05
    #: Attempts per request across batch retries (transient per-doc
    #: failures and whole-batch faults re-enqueue until exhausted).
    max_attempts: int = 2
    #: Circuit breakers for the two degradable stages.
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Where the drain checkpoint (final accounting snapshot) goes;
    #: ``None`` skips it.
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        self.dataset = self.dataset.upper()
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
