"""``repro.serve`` — the long-lived extraction service.

The paper frames the pipeline as a service for heterogeneous document
traffic; this package is the always-on form of the repo's batch
machinery.  One :class:`~repro.serve.service.ExtractionService` owns a
warm :class:`~repro.perf.runner.WarmProcessPool` (pipeline, embedding
tables, pattern library and holdout corpus booted once), a bounded
admission queue with 429 load-shedding, per-request deadlines (504,
never a hung slot), micro-batching into
:class:`~repro.perf.runner.CorpusRunner` dispatches, per-stage circuit
breakers that trip to the degradation ladder, and graceful SIGTERM
drain.  :mod:`repro.serve.http` is the stdlib-asyncio HTTP front-end
(``/health``, ``/ready``, ``/extract``, ``/metrics``);
:mod:`repro.serve.loadgen` the deterministic virtual-clock load
generator behind ``benchmarks/BENCH_serve.json``.

See ``docs/SERVING.md`` for the lifecycle and overload semantics.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.config import BreakerConfig, ServeConfig
from repro.serve.http import ServeHTTP, run_server
from repro.serve.loadgen import (
    BENCH_SERVE_SCHEMA,
    LoadSpec,
    arrival_schedule,
    bench_record,
    load_bench,
    run_http,
    run_virtual,
    write_bench,
)
from repro.serve.service import (
    BatchOutcome,
    ExtractionService,
    ServeRequest,
    ServeResponse,
)

__all__ = [
    "BENCH_SERVE_SCHEMA",
    "BatchOutcome",
    "BreakerConfig",
    "CircuitBreaker",
    "ExtractionService",
    "LoadSpec",
    "ServeConfig",
    "ServeHTTP",
    "ServeRequest",
    "ServeResponse",
    "arrival_schedule",
    "bench_record",
    "load_bench",
    "run_http",
    "run_server",
    "run_virtual",
    "write_bench",
]
