"""The sans-IO extraction service: admission, batching, deadlines.

:class:`ExtractionService` is the server's whole state machine with
the transport and the clock factored out: every method takes an
explicit ``now`` (seconds on whatever clock the caller runs).  The
asyncio HTTP front-end (:mod:`repro.serve.http`) drives it with
``time.monotonic``; the deterministic load generator
(:mod:`repro.serve.loadgen`) drives it with a **virtual clock**, which
is what makes overload behaviour — shedding, deadline expiry, breaker
trips — seeded and byte-for-byte reproducible, independent of worker
count and machine speed.

Request lifecycle (full accounting — every submitted request resolves
as exactly one of these, nothing lost, nothing hung)::

    submit ──▶ admit ──▶ queue ──▶ batch ──▶ resolve ──▶ 200
                 │          │         │          │
                 │ draining │ expired │ fault /  │ completed past
                 │ full     │         │ transient│ deadline, or
                 │ fault    │         ▼ failure  │ attempts exhausted
                 ▼          ▼      re-enqueue    ▼
                429        504    (while budget 504
             Retry-After          and deadline
                                  allow)

The heavy lifting of a batch is one
:class:`repro.perf.runner.CorpusRunner` call — parallel batches run on
the shared :class:`~repro.perf.runner.WarmProcessPool` whose workers
booted the pipeline (embeddings, pattern tables, holdout mining) once
at server start.  While a stage's circuit breaker is open, batches run
serially through a cached degraded pipeline variant instead
(``docs/SERVING.md`` walks through the ladder).
"""

from __future__ import annotations

import copy
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, List, Optional, Tuple

from repro.core.config import VS2Config
from repro.obs.registry import MetricRegistry
from repro.perf.metrics import PipelineMetrics
from repro.perf.runner import CorpusRunner, CorpusRunResult, WarmProcessPool
from repro.resilience import faults as _faults
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.synth import generate_corpus
from repro.trace import NULL_TRACER

#: Schema tag of the drain checkpoint written on graceful shutdown.
CHECKPOINT_SCHEMA = "repro.serve.checkpoint/1"

#: The only statuses a submitted request may resolve to.
STATUS_OK = 200
STATUS_SHED = 429
STATUS_TIMEOUT = 504

#: The two degradable stages (names as recorded on ``Degradation``).
BREAKER_STAGES = ("segment", "select")


@dataclass(frozen=True)
class UncachedPipelineFactory:
    """Builds serve-path pipelines with the transcription cache off.

    A service replays the same warm-corpus documents across many
    requests; with per-process caches, *which* repeat lands on an
    already-warm worker is scheduling, so cache-hit patterns (and the
    ocr/deskew stage counters fed from them) would differ between a
    1-worker and an N-worker server.  Serving uncached keeps every
    deterministic stage counter a pure function of the request
    schedule — the determinism the loadgen harness pins byte-for-byte.
    Picklable (a frozen dataclass) so it travels to pool workers.
    """

    dataset: str
    config: Optional[VS2Config] = None

    def __call__(self):
        from repro.core.pipeline import VS2Pipeline

        return VS2Pipeline(self.dataset, config=self.config, cache=None)


@dataclass
class ServeRequest:
    """One admitted request: a ticket through the queue and batches."""

    request_id: str
    doc: Any  # repro.doc.Document
    doc_index: int
    submitted_at: float
    deadline: float
    attempt: int = 1


@dataclass
class ServeResponse:
    """One resolved request.  ``body`` is JSON-serialisable; dumping it
    with ``sort_keys=True`` (see :meth:`payload`) is the byte-stable
    form the determinism tests compare."""

    request_id: str
    status: int
    body: Dict[str, Any]
    finished_at: float = 0.0
    latency_s: float = 0.0
    retry_after_s: Optional[float] = None

    def payload(self) -> bytes:
        return json.dumps(self.body, sort_keys=True).encode("utf-8")


@dataclass
class BatchOutcome:
    """What one dispatched batch produced: either a corpus-run result
    or a whole-batch injected fault (``serve.batch`` site)."""

    batch_id: str
    result: Optional[CorpusRunResult]
    fault: Optional[str] = None
    open_stages: FrozenSet[str] = frozenset()


class ExtractionService:
    """Admission control, micro-batching and degradation for one server.

    Not thread-safe by itself: the owner serialises calls (the HTTP
    layer funnels everything through one event loop; the load
    generator is single-threaded).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricRegistry] = None,
        tracer=NULL_TRACER,
        fault_plan: Optional["_faults.FaultPlan"] = None,
    ):
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.metrics = PipelineMetrics()
        self.corpus = generate_corpus(
            self.config.dataset, self.config.corpus_n, self.config.corpus_seed
        )
        self.queue: Deque[ServeRequest] = deque()
        self.draining = False
        self.breakers: Dict[str, CircuitBreaker] = {
            stage: CircuitBreaker(stage, self.config.breaker, registry=self.registry)
            for stage in BREAKER_STAGES
        }
        self.accounting: Dict[str, int] = {
            "submitted": 0, "ok": 0, "shed": 0, "timeout": 0,
        }
        self.pool: Optional[WarmProcessPool] = None
        self._runners: Dict[FrozenSet[str], CorpusRunner] = {}
        self._seq = 0
        self._batch_seq = 0
        self._installed_faults = False
        self._booted = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def boot(self) -> "ExtractionService":
        """Pay every warm-up cost now: synthesise nothing further, arm
        the fault plan, and boot the process pool so the first request
        meets already-initialised workers.  Pool boot failure degrades
        to in-process serving instead of failing the server."""
        if self._booted:
            return self
        if self.fault_plan is not None and not _faults.is_installed():
            _faults.install(self.fault_plan, tracer=self.tracer)
            self._installed_faults = True
        if self.config.workers > 1:
            pool = WarmProcessPool(
                self.config.dataset,
                config=self.config.pipeline,
                workers=self.config.workers,
                pipeline_factory=UncachedPipelineFactory(
                    self.config.dataset, self.config.pipeline
                ),
                trace_enabled=self.tracer.enabled,
                fault_plan=self.fault_plan,
            )
            try:
                pool.boot()
                self.pool = pool
            except (OSError, ValueError):
                self.pool = None  # CorpusRunner serves serially
        self._booted = True
        return self

    @property
    def ready(self) -> bool:
        return self._booted and not self.draining

    def shutdown(self) -> None:
        """Release the pool and the ambient fault plan.  Idempotent."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self._installed_faults and _faults.is_installed():
            _faults.uninstall()
            self._installed_faults = False
        self._booted = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        doc_index: int,
        now: float,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Tuple[Optional[ServeRequest], Optional[ServeResponse]]:
        """Try to accept one request at time ``now``.

        Returns ``(ticket, None)`` when admitted — the caller owns the
        ticket until a later :meth:`resolve` (or queue expiry) produces
        its response — or ``(None, response)`` when resolved
        immediately (shed with 429).
        """
        self._seq += 1
        rid = request_id or f"req-{self._seq:06d}"
        self.accounting["submitted"] += 1
        if self.draining:
            return None, self._shed(rid, "draining", now)
        try:
            _faults.fault_site("serve.admit", doc_id=rid, attempt=1)
        except (_faults.TransientFault, _faults.PermanentFault):
            return None, self._shed(rid, "fault", now)
        if len(self.queue) >= self.config.queue_limit:
            return None, self._shed(rid, "queue_full", now)
        ticket = ServeRequest(
            request_id=rid,
            doc=self.corpus[doc_index % len(self.corpus)],
            doc_index=doc_index,
            submitted_at=now,
            deadline=now + (deadline_s if deadline_s is not None else self.config.deadline_s),
        )
        self.queue.append(ticket)
        self.registry.counter("repro.serve.admitted").inc()
        self.registry.gauge("repro.serve.queue_depth").set_max(len(self.queue))
        self.tracer.event(
            "serve.admit", request_id=rid, queue_depth=len(self.queue)
        )
        return ticket, None

    def pending(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def take_batch(self, now: float) -> Tuple[List[ServeRequest], List[ServeResponse]]:
        """Pop the next micro-batch.  Requests whose deadline already
        passed while queued resolve to 504 here — expiry is checked at
        every dequeue, so a request can wait at most one dispatch cycle
        past its deadline and never occupies a batch slot."""
        batch: List[ServeRequest] = []
        expired: List[ServeResponse] = []
        while self.queue and len(batch) < self.config.batch_max:
            ticket = self.queue.popleft()
            if now >= ticket.deadline:
                expired.append(self._timeout(ticket, "queue", now))
            else:
                batch.append(ticket)
        return batch, expired

    def run_batch(self, batch: List[ServeRequest]) -> BatchOutcome:
        """Execute one batch through the pipeline (the blocking part —
        the HTTP layer runs it in an executor).  A ``serve.batch``
        fault fails the whole batch; :meth:`resolve` decides between
        re-enqueue and 504 per ticket."""
        self._batch_seq += 1
        bid = f"batch-{self._batch_seq:05d}"
        open_stages = frozenset(
            stage for stage, breaker in self.breakers.items() if breaker.degrade
        )
        try:
            _faults.fault_site(
                "serve.batch", doc_id=bid, attempt=max(t.attempt for t in batch)
            )
        except (_faults.TransientFault, _faults.PermanentFault) as exc:
            self.registry.counter("repro.serve.batches", outcome="fault").inc()
            return BatchOutcome(bid, None, fault=type(exc).__name__, open_stages=open_stages)
        result = self._runner(open_stages).run([t.doc for t in batch])
        self.metrics.merge(result.metrics)
        self.registry.counter(
            "repro.serve.batches", outcome="degraded" if open_stages else "ok"
        ).inc()
        self.registry.counter("repro.serve.batched_docs").inc(len(batch))
        return BatchOutcome(bid, result, open_stages=open_stages)

    def _runner(self, open_stages: FrozenSet[str]) -> CorpusRunner:
        """The cached runner for this degradation variant.  The healthy
        variant shares the warm pool; degraded variants run serially
        through their own warm in-process pipeline (built lazily once
        per variant, kept for the breaker's open window)."""
        runner = self._runners.get(open_stages)
        if runner is None:
            if open_stages:
                cfg = copy.deepcopy(
                    self.config.pipeline or VS2Config.for_dataset(self.config.dataset)
                )
                if "segment" in open_stages:
                    cfg.segment.use_semantic_merging = False
                if "select" in open_stages:
                    cfg.select.ner_only = True
                runner = CorpusRunner(
                    self.config.dataset,
                    config=cfg,
                    workers=1,
                    pipeline_factory=UncachedPipelineFactory(self.config.dataset, cfg),
                    tracer=self.tracer,
                    fault_plan=self.fault_plan,
                    registry=self.registry,
                )
            else:
                runner = CorpusRunner(
                    self.config.dataset,
                    config=self.config.pipeline,
                    workers=1 if self.pool is None else self.pool.workers,
                    pipeline_factory=UncachedPipelineFactory(
                        self.config.dataset, self.config.pipeline
                    ),
                    tracer=self.tracer,
                    fault_plan=self.fault_plan,
                    registry=self.registry,
                    pool=self.pool,
                )
            self._runners[open_stages] = runner
        return runner

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, batch: List[ServeRequest], outcome: BatchOutcome, now: float
    ) -> List[ServeResponse]:
        """Turn one finished batch into responses at completion time
        ``now``.  Tickets with attempt budget and deadline left after a
        transient failure re-enqueue (front of queue, order preserved)
        and resolve in a later batch."""
        responses: List[ServeResponse] = []
        requeue: List[ServeRequest] = []
        if outcome.result is None:
            for ticket in batch:
                if ticket.attempt < self.config.max_attempts and now < ticket.deadline:
                    requeue.append(ticket)
                else:
                    responses.append(self._timeout(ticket, "batch", now))
        else:
            stage_failed = {stage: 0 for stage in BREAKER_STAGES}
            failures = {f.doc_index: f for f in outcome.result.failures}
            for i, ticket in enumerate(batch):
                result = outcome.result.results[i]
                if result is None:
                    failure = failures.get(i)
                    transient = failure is not None and failure.transient
                    if (
                        transient
                        and ticket.attempt < self.config.max_attempts
                        and now < ticket.deadline
                    ):
                        requeue.append(ticket)
                    else:
                        responses.append(self._timeout(ticket, "result", now))
                    continue
                for degradation in result.degradations:
                    if degradation.stage in stage_failed:
                        stage_failed[degradation.stage] += 1
                if now >= ticket.deadline:
                    responses.append(self._timeout(ticket, "result", now))
                else:
                    responses.append(self._ok(ticket, result, now))
            for stage, breaker in self.breakers.items():
                breaker.record_batch(
                    stage_failed[stage],
                    len(batch),
                    degraded=stage in outcome.open_stages,
                )
        for ticket in reversed(requeue):
            ticket.attempt += 1
            self.queue.appendleft(ticket)
        if requeue:
            self.registry.gauge("repro.serve.queue_depth").set_max(len(self.queue))
        return responses

    def _ok(self, ticket: ServeRequest, result, now: float) -> ServeResponse:
        self.accounting["ok"] += 1
        latency = max(now - ticket.submitted_at, 0.0)
        self.registry.counter("repro.serve.requests", status="200").inc()
        self.registry.histogram("repro.serve.request_latency").observe(latency)
        body = {
            "request_id": ticket.request_id,
            "status": STATUS_OK,
            "doc_id": result.doc_id,
            "doc_index": ticket.doc_index,
            "attempt": ticket.attempt,
            "extractions": result.as_key_values(),
            "degradations": [d.to_dict() for d in result.degradations],
        }
        return ServeResponse(
            ticket.request_id, STATUS_OK, body, finished_at=now, latency_s=latency
        )

    def _shed(self, rid: str, reason: str, now: float) -> ServeResponse:
        self.accounting["shed"] += 1
        retry_after = self.config.retry_after_s
        self.registry.counter("repro.serve.shed", reason=reason).inc()
        self.registry.counter("repro.serve.requests", status="429").inc()
        self.tracer.event("serve.shed", request_id=rid, reason=reason)
        body = {
            "request_id": rid,
            "status": STATUS_SHED,
            "reason": reason,
            "retry_after_s": retry_after,
        }
        return ServeResponse(
            rid, STATUS_SHED, body, finished_at=now, retry_after_s=retry_after
        )

    def _timeout(self, ticket: ServeRequest, where: str, now: float) -> ServeResponse:
        self.accounting["timeout"] += 1
        latency = max(now - ticket.submitted_at, 0.0)
        self.registry.counter("repro.serve.timeouts", where=where).inc()
        self.registry.counter("repro.serve.requests", status="504").inc()
        self.registry.histogram("repro.serve.request_latency").observe(latency)
        self.tracer.event(
            "serve.deadline", request_id=ticket.request_id, where=where
        )
        body = {
            "request_id": ticket.request_id,
            "status": STATUS_TIMEOUT,
            "where": where,
            "attempt": ticket.attempt,
        }
        return ServeResponse(
            ticket.request_id, STATUS_TIMEOUT, body, finished_at=now, latency_s=latency
        )

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self, now: float) -> None:
        """Stop admitting (new requests shed as ``draining``); queued
        and in-flight work keeps resolving until :meth:`pending` is 0."""
        if not self.draining:
            self.draining = True
            self.tracer.event("serve.drain", phase="begin", queued=len(self.queue))

    def finish_drain(self, now: float) -> Dict[str, Any]:
        """Called once the queue is empty and no batch is in flight:
        checkpoint the final accounting and release resources."""
        snapshot = self.accounting_snapshot()
        self.tracer.event("serve.drain", phase="finish", queued=len(self.queue))
        if self.config.checkpoint_path:
            record = {
                "schema": CHECKPOINT_SCHEMA,
                "accounting": snapshot,
                "batches": self._batch_seq,
                "pending": len(self.queue),
            }
            tmp = f"{self.config.checkpoint_path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True, indent=2)
                fh.write("\n")
            os.replace(tmp, self.config.checkpoint_path)
        self.shutdown()
        return snapshot

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def accounting_snapshot(self) -> Dict[str, int]:
        """Every submitted request must be exactly one of ok/shed/
        timeout once the queue is empty; ``unaccounted`` is the
        invariant the chaos-under-load acceptance test pins to zero."""
        out = dict(self.accounting)
        out["pending"] = len(self.queue)
        out["unaccounted"] = (
            out["submitted"] - out["ok"] - out["shed"] - out["timeout"] - out["pending"]
        )
        return out
