"""Per-stage circuit breakers over the degradation ladder.

The pipeline already absorbs stage failures reactively — a semantic
merge that raises falls back to visual-only segmentation *for that
document*, a pattern-match failure to NER (the PR 5 degradation
ladder).  Under sustained failure that still pays the cost of trying
and failing on every document.  A :class:`CircuitBreaker` watches the
per-batch failure rate of one stage and, once it crosses a threshold,
**opens**: subsequent batches run with the degraded configuration up
front (``segment.use_semantic_merging=False`` /
``select.ner_only=True``), skipping the failing path entirely.  After
a cooldown measured in batches it goes **half-open** — one trial batch
runs un-degraded — and either closes (trial clean) or re-opens (still
failing).

State transitions are counted in the
``repro.serve.breaker_transitions`` metric; the ambient decision
inputs (degradation counts per batch) are deterministic, so breaker
behaviour is identical between a 1-worker and an N-worker server.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.obs.registry import MetricRegistry
from repro.serve.config import BreakerConfig

#: The breaker's three states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker for one degradable pipeline stage.

    ``stage`` is the pipeline stage name as recorded on
    :class:`repro.core.pipeline.Degradation` (``"segment"`` or
    ``"select"``).  Call :meth:`record_batch` after every dispatched
    batch with how many of its documents degraded at this stage.
    """

    def __init__(
        self,
        stage: str,
        config: Optional[BreakerConfig] = None,
        registry: Optional[MetricRegistry] = None,
    ):
        self.stage = stage
        self.config = config or BreakerConfig()
        self.registry = registry
        self.state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=max(1, self.config.window))
        self._cooldown = 0

    # ------------------------------------------------------------------
    @property
    def degrade(self) -> bool:
        """Whether the next batch should run this stage degraded.
        Half-open runs the trial un-degraded on purpose."""
        return self.state == OPEN

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.registry is not None:
            self.registry.counter(
                "repro.serve.breaker_transitions", stage=self.stage, state=state
            ).inc()

    # ------------------------------------------------------------------
    def record_batch(self, failed: int, total: int, degraded: bool) -> None:
        """Account one finished batch.

        ``failed`` is how many of its ``total`` documents hit this
        stage's degradation rung; ``degraded`` whether the batch ran
        with the stage proactively degraded (in which case the stage's
        failure path never executed and the batch only advances the
        cooldown).
        """
        if total <= 0:
            return
        if self.state == OPEN:
            if degraded:
                self._cooldown -= 1
                if self._cooldown <= 0:
                    self._transition(HALF_OPEN)
            return
        if self.state == HALF_OPEN:
            if failed > 0:
                self._trip()
            else:
                self._outcomes.clear()
                self._transition(CLOSED)
            return
        # closed: rolling per-document outcome window
        for i in range(total):
            self._outcomes.append(i < failed)
        if len(self._outcomes) >= self.config.window:
            rate = sum(self._outcomes) / len(self._outcomes)
            if rate >= self.config.threshold:
                self._trip()

    def _trip(self) -> None:
        self._outcomes.clear()
        self._cooldown = max(1, self.config.cooldown_batches)
        self._transition(OPEN)
