"""Deterministic load generation and the ``BENCH_serve.json`` snapshot.

Two modes share one seeded arrival schedule
(:func:`arrival_schedule` — exponential inter-arrival gaps plus a
document index per request, both drawn from ``np.random.default_rng``
on the spec's seed):

* :func:`run_virtual` — the deterministic harness.  It drives a
  :class:`~repro.serve.service.ExtractionService` directly on a
  **virtual clock** as a discrete-event simulation: the serving engine
  is busy for ``doc_service_s × len(batch)`` virtual seconds per
  dispatched batch, arrivals that land inside that window join (or are
  shed from) the queue behind it, and deadlines expire in virtual
  time.  Every quantity in the resulting accounting — shed set, 504
  set, breaker trips, extraction payloads — is a pure function of
  ``(spec, serve config, fault plan)``, independent of worker count
  and machine speed, which is what the determinism and
  chaos-under-load tests pin down.

* :func:`run_http` — the same schedule fired at a live server over
  real sockets (stdlib asyncio, bounded concurrency, no threads).
  Used by ``make serve-smoke`` and the end-to-end tests; accounting
  still must close (every request resolves 200/429/504), latencies are
  real.

The virtual service cost is deliberately **capacity-normalised**: a
batch costs the same regardless of pool width, so a 1-worker and an
N-worker server replay identical schedules (the worker count changes
real wall time, which the bench records separately from the
deterministic accounting).
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.service import ExtractionService, ServeResponse

#: Schema tag of the serve benchmark snapshot.
BENCH_SERVE_SCHEMA = "repro.bench.serve/1"


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run: who arrives when, and what it costs."""

    n_requests: int = 64
    #: Offered load, requests per (virtual) second.  Capacity is
    #: ``1 / doc_service_s`` docs/s, so ``rate * doc_service_s`` is the
    #: overload factor (the chaos test runs it at >= 2).
    rate: float = 8.0
    seed: int = 0
    #: Per-request deadline handed to the server.
    deadline_s: float = 4.0
    #: Virtual service cost per document inside a batch.
    doc_service_s: float = 0.25
    #: Socket concurrency in HTTP mode.
    http_concurrency: int = 8

    @property
    def overload_factor(self) -> float:
        return self.rate * self.doc_service_s


def arrival_schedule(spec: LoadSpec) -> List[Tuple[float, int]]:
    """The seeded schedule: ``[(arrival_time, doc_index), ...]`` in
    non-decreasing time order."""
    rng = np.random.default_rng(spec.seed)
    gaps = rng.exponential(1.0 / max(spec.rate, 1e-9), spec.n_requests)
    times = np.cumsum(gaps)
    indices = rng.integers(0, 1 << 20, spec.n_requests)
    return [(float(t), int(i)) for t, i in zip(times, indices)]


# ----------------------------------------------------------------------
# Virtual-clock mode
# ----------------------------------------------------------------------
def run_virtual(
    service: ExtractionService, spec: LoadSpec
) -> Tuple[List[ServeResponse], Dict[str, Any]]:
    """Replay the schedule against ``service`` on a virtual clock and
    drain it; returns every response plus the accounting snapshot.

    The simulation loop: while requests remain, either (a) the queue is
    empty — jump to the next arrival and admit it — or (b) dispatch the
    next micro-batch at ``max(engine_free, now)``, admitting every
    arrival that lands before dispatch and before batch completion at
    its true arrival time.
    """
    service.boot()
    arrivals = arrival_schedule(spec)
    responses: List[ServeResponse] = []
    t_free = 0.0
    now = 0.0
    k = 0

    def admit(at: float, index: int) -> None:
        _, resp = service.admit(index, now=at, deadline_s=spec.deadline_s)
        if resp is not None:
            responses.append(resp)

    while k < len(arrivals) or service.pending():
        if not service.pending():
            at, index = arrivals[k]
            k += 1
            now = max(now, at)
            admit(at, index)
            continue
        dispatch_t = max(t_free, now)
        while k < len(arrivals) and arrivals[k][0] <= dispatch_t:
            admit(*arrivals[k])
            k += 1
        batch, expired = service.take_batch(dispatch_t)
        responses.extend(expired)
        now = dispatch_t
        if not batch:
            continue
        outcome = service.run_batch(batch)
        done_t = dispatch_t + spec.doc_service_s * len(batch)
        while k < len(arrivals) and arrivals[k][0] <= done_t:
            admit(*arrivals[k])
            k += 1
        responses.extend(service.resolve(batch, outcome, done_t))
        t_free = done_t
        now = done_t

    service.begin_drain(now)
    snapshot = service.finish_drain(now)
    return responses, snapshot


def _quantile(sorted_values: List[float], q: float) -> float:
    """Deterministic nearest-rank quantile (no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(np.ceil(q * len(sorted_values))) - 1))
    return sorted_values[rank]


def bench_record(
    service: ExtractionService,
    spec: LoadSpec,
    responses: List[ServeResponse],
    snapshot: Dict[str, int],
    duration_s: float,
    fault_spec: str = "",
) -> Dict[str, Any]:
    """The ``repro.bench.serve/1`` record: deterministic accounting and
    virtual latency quantiles, plus a wall-clock per-stage digest from
    the run's :class:`StageStats` histograms (environment-dependent,
    kept for triage, never compared byte-for-byte)."""
    latencies = sorted(
        r.latency_s for r in responses if r.status in (200, 504)
    )
    submitted = max(snapshot.get("submitted", 0), 1)
    stages: Dict[str, Any] = {}
    for name, stats in sorted(service.metrics.stages.items()):
        stages[name] = {
            "calls": stats.calls,
            "p50_s": stats.quantile_seconds(0.50),
            "p95_s": stats.quantile_seconds(0.95),
        }
    return {
        "schema": BENCH_SERVE_SCHEMA,
        "meta": {
            "dataset": service.config.dataset,
            "workers": service.config.workers,
            "seed": spec.seed,
            "n_requests": spec.n_requests,
            "rate_rps": spec.rate,
            "deadline_s": spec.deadline_s,
            "doc_service_s": spec.doc_service_s,
            "overload_factor": spec.overload_factor,
            "queue_limit": service.config.queue_limit,
            "batch_max": service.config.batch_max,
            "faults": fault_spec,
        },
        "accounting": snapshot,
        "latency": {
            "unit": "virtual_seconds",
            "p50_s": _quantile(latencies, 0.50),
            "p95_s": _quantile(latencies, 0.95),
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "duration_s": duration_s,
        "throughput_docs_per_s": (
            snapshot.get("ok", 0) / duration_s if duration_s > 0 else 0.0
        ),
        "shed_rate": snapshot.get("shed", 0) / submitted,
        "timeout_rate": snapshot.get("timeout", 0) / submitted,
        "stages": stages,
    }


def write_bench(path: str, record: Dict[str, Any]) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("schema") != BENCH_SERVE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SERVE_SCHEMA!r}, got {record.get('schema')!r}"
        )
    return record


# ----------------------------------------------------------------------
# HTTP mode
# ----------------------------------------------------------------------
def run_http(host: str, port: int, spec: LoadSpec) -> Dict[str, int]:
    """Fire the schedule at a live server over real sockets; returns
    the status histogram (``{"200": n, "429": n, "504": n}``)."""
    return asyncio.run(_run_http(host, port, spec))


async def _http_request(
    host: str, port: int, method: str, path: str, body: Optional[bytes] = None
) -> Tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass
    status_line = raw.split(b"\r\n", 1)[0]
    status = int(status_line.split(b" ")[1])
    _, _, resp_body = raw.partition(b"\r\n\r\n")
    return status, resp_body


async def _run_http(host: str, port: int, spec: LoadSpec) -> Dict[str, int]:
    arrivals = arrival_schedule(spec)
    limiter = asyncio.Semaphore(max(1, spec.http_concurrency))
    counts: Dict[str, int] = {}

    async def one(index: int) -> None:
        async with limiter:
            body = json.dumps(
                {"index": index, "deadline_s": spec.deadline_s}
            ).encode("utf-8")
            status, _ = await _http_request(host, port, "POST", "/extract", body)
            counts[str(status)] = counts.get(str(status), 0) + 1

    await asyncio.gather(*(one(index) for _, index in arrivals))
    return dict(sorted(counts.items()))
