"""The asyncio HTTP front-end: transport + clock for the service.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` only (the
repo's zero-dependency rule): request parsing handles exactly what the
endpoints need — a request line, headers, an optional
``Content-Length`` body.  All service state lives in the sans-IO
:class:`~repro.serve.service.ExtractionService`; this module adds the
event loop, the wall clock (``time.monotonic``), the micro-batch
dispatcher, and signal-driven graceful drain.

Endpoints
---------
``GET /health``
    Liveness: always 200 while the process serves, with drain state.
``GET /ready``
    Readiness: 200 once the warm pool is booted and the server is not
    draining; 503 otherwise (load balancers stop routing here first).
``POST /extract``
    Body ``{"index": int, "deadline_s"?: float, "request_id"?: str}``
    — extract from the warm corpus document at ``index``.  Resolves as
    200 (extractions + degradations), 429 + ``Retry-After`` (shed), or
    504 (deadline).
``GET /metrics``
    Prometheus text exposition of the server's metric registry.

Concurrency model: admission, queue and resolution bookkeeping run on
the event loop only; the single dispatcher task runs each blocking
batch in the default thread-pool executor (the metric registry is the
one structure both threads touch, and it locks internally).  The
process pool is booted before the loop starts, so no process pool is
ever created after a thread exists.

Graceful drain: SIGTERM/SIGINT flips the service into draining (new
requests shed with 429), the dispatcher finishes queued and in-flight
batches, the final accounting is checkpointed, the pool workers are
joined, and the process exits 0 — no orphan workers, no lost request.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import to_prometheus
from repro.serve.service import ExtractionService, ServeResponse

#: Extra seconds a handler waits past the request deadline before
#: answering defensively — covers dispatcher scheduling latency.  The
#: service resolves the ticket authoritatively either way.
_HANDLER_GRACE_S = 10.0

_REASONS = {200: "OK", 429: "Too Many Requests", 503: "Service Unavailable", 504: "Gateway Timeout"}


class ServeHTTP:
    """One listening server bound to one :class:`ExtractionService`."""

    def __init__(self, service: ExtractionService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._futures: Dict[str, asyncio.Future] = {}
        self._wake: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def request_drain(self) -> None:
        """Signal-handler entry: stop admitting, let the dispatcher
        finish the queue, then shut down.  Safe to call repeatedly."""
        self.service.begin_drain(time.monotonic())
        if self._wake is not None:
            self._wake.set()

    async def serve_until_drained(self) -> None:
        """Block until a drain request has been fully honoured: queue
        empty, last batch resolved, listener closed."""
        assert self._dispatcher is not None and self._server is not None
        await self._dispatcher
        self._server.close()
        await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        window = self.service.config.batch_window_s
        while True:
            if self.service.pending() == 0:
                if self.service.draining:
                    return
                await self._wait_for_work(window)
                continue
            if self.service.pending() < self.service.config.batch_max:
                # Let the micro-batch fill for one window before
                # dispatching a partial one.
                await asyncio.sleep(window)
            batch, expired = self.service.take_batch(time.monotonic())
            self._publish(expired)
            if not batch:
                continue
            outcome = await loop.run_in_executor(None, self.service.run_batch, batch)
            responses = self.service.resolve(batch, outcome, time.monotonic())
            self._publish(responses)

    async def _wait_for_work(self, window: float) -> None:
        assert self._wake is not None
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=max(window, 0.01))
        except asyncio.TimeoutError:
            return
        self._wake.clear()

    def _publish(self, responses: List[ServeResponse]) -> None:
        for response in responses:
            future = self._futures.pop(response.request_id, None)
            if future is not None and not future.done():
                future.set_result(response)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            status, headers, payload = await self._route(method, path, body)
            await self._write_response(writer, status, headers, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the service accounting is unaffected
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep and name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: Dict[str, str],
        payload: bytes,
    ) -> None:
        reason = _REASONS.get(status, "OK" if status < 400 else "Error")
        lines = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        base.update(headers)
        lines.extend(f"{k}: {v}" for k, v in base.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if method == "GET" and path == "/health":
            return self._json(200, {
                "status": "ok",
                "draining": self.service.draining,
                "pending": self.service.pending(),
            })
        if method == "GET" and path == "/ready":
            if self.service.ready:
                return self._json(200, {"ready": True})
            return self._json(503, {"ready": False, "draining": self.service.draining})
        if method == "GET" and path == "/metrics":
            text = to_prometheus(self.service.registry).encode("utf-8")
            return 200, {"Content-Type": "text/plain; version=0.0.4"}, text
        if method == "POST" and path == "/extract":
            return await self._extract(body)
        return self._json(404, {"error": f"no route for {method} {path}"})

    async def _extract(self, body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
            index = int(request["index"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return self._json(400, {"error": "body must be JSON with an integer 'index'"})
        deadline_s = request.get("deadline_s")
        now = time.monotonic()
        ticket, response = self.service.admit(
            index,
            now=now,
            request_id=request.get("request_id"),
            deadline_s=None if deadline_s is None else float(deadline_s),
        )
        if response is None:
            assert ticket is not None
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            self._futures[ticket.request_id] = future
            assert self._wake is not None
            self._wake.set()
            budget = (ticket.deadline - now) + _HANDLER_GRACE_S
            try:
                response = await asyncio.wait_for(future, timeout=budget)
            except asyncio.TimeoutError:
                # Defensive: the dispatcher answers every ticket, but a
                # slot is never allowed to hang past its budget.  The
                # accounting entry lands when the service resolves the
                # ticket; this socket just stops waiting for it.
                self._futures.pop(ticket.request_id, None)
                return self._json(
                    504, {"request_id": ticket.request_id, "status": 504, "where": "handler"}
                )
        return self._response_to_http(response)

    def _response_to_http(self, response: ServeResponse) -> Tuple[int, Dict[str, str], bytes]:
        headers = {"Content-Type": "application/json"}
        if response.retry_after_s is not None:
            headers["Retry-After"] = f"{response.retry_after_s:g}"
        return response.status, headers, response.payload()

    def _json(self, status: int, body: Dict[str, Any]) -> Tuple[int, Dict[str, str], bytes]:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        return status, {"Content-Type": "application/json"}, payload


# ----------------------------------------------------------------------
# Process entry
# ----------------------------------------------------------------------
def run_server(service: ExtractionService, host: str = "127.0.0.1", port: int = 0) -> int:
    """Boot, serve until drained (SIGTERM/SIGINT), exit 0.

    Boot order matters: the warm process pool is created *before* the
    event loop (and therefore before any thread) starts, and is joined
    by :meth:`ExtractionService.finish_drain` before this returns — a
    clean exit leaves no orphan worker processes.
    """
    service.boot()
    return asyncio.run(_serve_main(service, host, port))


async def _serve_main(service: ExtractionService, host: str, port: int) -> int:
    http = ServeHTTP(service, host, port)
    await http.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, http.request_drain)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            pass
    print(
        f"repro serve: listening on {http.host}:{http.port} "
        f"(dataset={service.config.dataset}, workers={service.config.workers}, "
        f"queue_limit={service.config.queue_limit})",
        flush=True,
    )
    await http.serve_until_drained()
    snapshot = service.finish_drain(time.monotonic())
    print("repro serve: drained " + json.dumps(snapshot, sort_keys=True), flush=True)
    return 0
