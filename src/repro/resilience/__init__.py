"""repro.resilience — deterministic fault injection + supervised execution.

Two halves, importable independently:

* :mod:`repro.resilience.faults` — the seeded fault-injection plan.
  :class:`FaultPlan` decides, per ``(site, doc, attempt)``, whether a
  named fault site raises a typed error, hangs, crashes, charges
  virtual latency or corrupts OCR output — deterministically, from the
  plan seed alone.  Core pipeline code only ever calls the free
  function :func:`fault_site`, which is a no-op unless a plan is
  installed.
* :mod:`repro.resilience.supervisor` — the supervised execution layer
  behind ``CorpusRunner(..., supervision=SupervisionPolicy(...))``:
  per-document timeouts with worker replacement, deterministic retry
  with a virtual backoff budget, quarantine, and JSONL
  checkpoint/resume.

The supervisor half pulls in ``repro.perf``; it is exposed lazily so
that ``repro.core`` modules can import the faults half without
violating the layer rules (LAYER001).
"""

from __future__ import annotations

from repro.resilience.budget import BackoffClock, backoff_seconds
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointLog, run_fingerprint
from repro.resilience.faults import (
    FAULT_SITES,
    ISOLATION_SITES,
    FaultAction,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PermanentFault,
    TransientFault,
    active_plan,
    doc_scope,
    drain_virtual_latency,
    fault_site,
    install,
    is_installed,
    uninstall,
)
from repro.resilience.quarantine import (
    QUARANTINE_SCHEMA,
    AttemptRecord,
    QuarantineEntry,
    QuarantineReport,
)

_SUPERVISOR_EXPORTS = {
    "SupervisionPolicy",
    "SupervisionEvent",
    "SupervisionReport",
    "run_supervised",
}

__all__ = [
    "BackoffClock",
    "backoff_seconds",
    "CHECKPOINT_SCHEMA",
    "CheckpointLog",
    "run_fingerprint",
    "FAULT_SITES",
    "ISOLATION_SITES",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PermanentFault",
    "TransientFault",
    "active_plan",
    "doc_scope",
    "drain_virtual_latency",
    "fault_site",
    "install",
    "is_installed",
    "uninstall",
    "QUARANTINE_SCHEMA",
    "AttemptRecord",
    "QuarantineEntry",
    "QuarantineReport",
    "SupervisionPolicy",
    "SupervisionEvent",
    "SupervisionReport",
    "run_supervised",
]


def __getattr__(name: str):
    if name in _SUPERVISOR_EXPORTS:
        from repro.resilience import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
