"""Deterministic fault injection for the VS2 hot path.

A :class:`FaultPlan` is a seeded schedule of failures: each
:class:`FaultRule` names an **injection site** (one of
:data:`FAULT_SITES`, threaded through the pipeline and the corpus
runner), a fault **kind**, and optional qualifiers (probability,
document filter, attempt window).  Whether a given ``(site, doc,
attempt)`` fires is decided by a private ``np.random.default_rng``
keyed on exactly those coordinates plus the plan seed — never on
process identity, scheduling order or wall clock — so a serial run, a
parallel run and a resumed run all see the *same* faults.

Kinds
-----
``flaky``    raise :class:`TransientFault` (retryable)
``fail``     raise :class:`PermanentFault` (quarantined immediately)
``hang``     block forever inside a supervised worker (the watchdog
             kills it); outside one, simulated as a transient raise
``crash``    ``os._exit`` inside a supervised worker (the parent
             replaces it); outside one, simulated as a transient raise
``slow``     charge virtual latency to the doc (clock-free; shows up
             in the ``fault.injected`` event, never in real time)
``corrupt``  return a :class:`FaultAction` whose
             :meth:`~FaultAction.corrupt_words` garbles OCR output
             deterministically

Plans come from :meth:`FaultPlan.from_spec` (the compact CLI grammar,
e.g. ``"ocr:flaky@0.1,worker:crash@doc=7"``) or a JSON file via
:meth:`FaultPlan.from_file` (``--faults plan.json``); see
``docs/RESILIENCE.md`` for the full grammar.

The ambient state (:func:`install` / :func:`doc_scope` /
:func:`fault_site`) is module-global per process: the corpus runner
installs the plan (in the parent for serial runs, in each worker for
parallel ones) and brackets every document attempt in a
:func:`doc_scope`.  With no plan installed, :func:`fault_site` is a
single ``None`` check — the hot path pays nothing.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import get_registry
from repro.resilience.budget import block_forever
from repro.trace import NULL_TRACER

#: Every named injection site threaded through the hot path.  The site
#: string is part of the fault-decision RNG key, so renaming one
#: reschedules every plan that targets it — treat these as API.
FAULT_SITES = frozenset(
    {
        "ocr.transcribe",
        "segment.cuts",
        "segment.merge",
        "select.match",
        "serve.admit",
        "serve.batch",
        "worker.boot",
        "worker.chunk",
    }
)

#: Spec-grammar shorthands for the full site names.
_SITE_ALIASES = {
    "ocr": "ocr.transcribe",
    "cuts": "segment.cuts",
    "merge": "segment.merge",
    "select": "select.match",
    "worker": "worker.chunk",
    "chunk": "worker.chunk",
    "boot": "worker.boot",
    "admit": "serve.admit",
    "batch": "serve.batch",
}

_KIND_ALIASES = {
    "flaky": "flaky",
    "transient": "flaky",
    "fail": "fail",
    "permanent": "fail",
    "poison": "fail",
    "hang": "hang",
    "crash": "crash",
    "slow": "slow",
    "latency": "slow",
    "corrupt": "corrupt",
}

#: Function qualnames whose broad ``except`` handlers are *registered
#: isolation sites*: places whose whole job is converting arbitrary
#: failures into recorded outcomes (degradations, boot reports).  The
#: RES002 lint rule exempts exactly these.
ISOLATION_SITES = frozenset(
    {
        "repro.core.pipeline.VS2Pipeline.run",
        "repro.resilience.supervisor._supervised_worker_main",
    }
)


def _stable_hash(text: str) -> int:
    """Process-stable 31-bit hash (crc32, like the OCR engine's seed
    derivation) — ``hash()`` is salted per process and would make the
    fault schedule depend on ``PYTHONHASHSEED``."""
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


class InjectedFault(RuntimeError):
    """Base of every typed error a fault plan raises."""

    def __init__(self, site: str, message: str):
        super().__init__(f"{message} [site={site}]")
        self.site = site


class TransientFault(InjectedFault):
    """Retryable: the supervised runner backs off and tries again."""


class PermanentFault(InjectedFault):
    """Not retryable: the supervised runner quarantines the document."""


@dataclass(frozen=True)
class FaultRule:
    """One line of a plan: *at this site, do this, under these filters*.

    ``p`` is the per-(doc, attempt) firing probability; ``doc`` filters
    to one document index; ``attempts`` fires only while the current
    attempt number is ``<=`` it (so ``attempts=1`` models a fault that
    a retry clears); ``latency_s`` / ``severity`` parameterise the
    ``slow`` / ``corrupt`` kinds.
    """

    site: str
    kind: str
    p: float = 1.0
    doc: Optional[int] = None
    attempts: Optional[int] = None
    latency_s: float = 0.25
    severity: float = 0.3

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind, "p": self.p}
        if self.doc is not None:
            out["doc"] = self.doc
        if self.attempts is not None:
            out["attempts"] = self.attempts
        if self.kind == "slow":
            out["latency_s"] = self.latency_s
        if self.kind == "corrupt":
            out["severity"] = self.severity
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultRule":
        site = _SITE_ALIASES.get(str(data["site"]), str(data["site"]))
        kind = _KIND_ALIASES.get(str(data["kind"]))
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {data['site']!r}; one of {sorted(FAULT_SITES)}")
        if kind is None:
            raise ValueError(f"unknown fault kind {data['kind']!r}; one of {sorted(set(_KIND_ALIASES))}")
        return FaultRule(
            site=site,
            kind=kind,
            p=float(data.get("p", 1.0)),
            doc=None if data.get("doc") is None else int(data["doc"]),
            attempts=None if data.get("attempts") is None else int(data["attempts"]),
            latency_s=float(data.get("latency_s", 0.25)),
            severity=float(data.get("severity", 0.3)),
        )


@dataclass(frozen=True)
class FaultAction:
    """A fired rule, bound to its deterministic RNG key."""

    site: str
    kind: str
    rule: FaultRule
    seed: Tuple[int, ...]

    def corrupt_words(self, words: Sequence[Any]) -> List[Any]:
        """Garble OCR words deterministically: each word is replaced by
        ``#`` noise with probability ``rule.severity``.  Works on any
        element exposing ``.text`` / ``.with_text`` (duck-typed so this
        module stays below the doc layer)."""
        rng = np.random.default_rng(self.seed)
        out: List[Any] = []
        for word in words:
            if rng.random() < self.rule.severity:
                garbled = "".join("#" if ch.isalnum() else ch for ch in word.text)
                out.append(word.with_text(garbled))
            else:
                out.append(word)
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, order-independent schedule of injected faults."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact grammar: comma-separated
        ``site:kind[@qualifier]...`` rules.  A bare-float qualifier is
        the probability; ``doc=N`` / ``attempts=N`` / ``latency=S`` /
        ``severity=F`` / ``p=F`` are named."""
        rules: List[FaultRule] = []
        for chunk in (part.strip() for part in spec.split(",")):
            if not chunk:
                continue
            head, *quals = chunk.split("@")
            site_s, sep, kind_s = head.partition(":")
            if not sep:
                raise ValueError(f"fault rule {chunk!r} must look like site:kind[@qualifier]")
            data: Dict[str, Any] = {"site": site_s.strip(), "kind": kind_s.strip()}
            for qual in (q.strip() for q in quals):
                if "=" in qual:
                    key, value = qual.split("=", 1)
                    key = {"latency": "latency_s"}.get(key.strip(), key.strip())
                    if key not in {"doc", "attempts", "latency_s", "severity", "p"}:
                        raise ValueError(f"unknown qualifier {qual!r} in fault rule {chunk!r}")
                    data[key] = value
                else:
                    data["p"] = qual
            rules.append(FaultRule.from_dict(data))
        return cls(seed=seed, rules=tuple(rules))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", [])),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    def spec_key(self) -> str:
        """Canonical serialisation — part of the checkpoint fingerprint,
        so resuming under a different plan is refused."""
        return json.dumps(self.to_dict(), sort_keys=True)

    # ------------------------------------------------------------------
    # The deterministic decision
    # ------------------------------------------------------------------
    def decide(
        self, site: str, doc_id: Optional[str], doc_index: int, attempt: int
    ) -> Optional[FaultAction]:
        """First matching rule that fires wins; the draw is keyed on
        ``(plan seed, rule, doc, attempt)`` only."""
        for i, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.doc is not None and rule.doc != doc_index:
                continue
            if rule.attempts is not None and attempt > rule.attempts:
                continue
            key = (
                self.seed,
                _stable_hash(f"{site}:{rule.kind}:{i}"),
                _stable_hash(doc_id or ""),
                max(int(attempt), 0),
            )
            if rule.p >= 1.0 or np.random.default_rng(key).random() < rule.p:
                return FaultAction(site=site, kind=rule.kind, rule=rule, seed=key + (1,))
        return None


# ----------------------------------------------------------------------
# Ambient per-process injection state
# ----------------------------------------------------------------------
class _FaultState:
    __slots__ = (
        "plan", "tracer", "preemptible",
        "doc_id", "doc_index", "attempt",
        "decided", "charged", "virtual_s",
    )

    def __init__(self):
        self.plan: Optional[FaultPlan] = None
        self.tracer = NULL_TRACER
        self.preemptible = False
        self._reset_doc()
        self.virtual_s = 0.0

    def _reset_doc(self) -> None:
        self.doc_id: Optional[str] = None
        self.doc_index = -1
        self.attempt = 1
        self.decided: Dict[str, Optional[FaultAction]] = {}
        self.charged: set = set()


# conc: ambient - the fault registry is per-process by design: install()
# arms each supervised worker separately, and doc_scope/fault_site mutate
# only this process's copy.
_STATE = _FaultState()


def install(plan: FaultPlan, tracer=NULL_TRACER, preemptible: bool = False) -> None:
    """Arm ``plan`` for this process.  ``preemptible=True`` means the
    process is a supervised worker the parent can kill, so ``hang`` /
    ``crash`` faults execute for real instead of simulating."""
    _STATE.plan = plan
    _STATE.tracer = tracer
    _STATE.preemptible = preemptible
    _STATE._reset_doc()
    _STATE.virtual_s = 0.0


def uninstall() -> None:
    _STATE.plan = None
    _STATE.tracer = NULL_TRACER
    _STATE.preemptible = False
    _STATE._reset_doc()


def is_installed() -> bool:
    return _STATE.plan is not None


def active_plan() -> Optional[FaultPlan]:
    return _STATE.plan


def drain_virtual_latency() -> float:
    """Virtual seconds charged by ``slow`` faults since the last drain."""
    out, _STATE.virtual_s = _STATE.virtual_s, 0.0
    return out


@contextmanager
def doc_scope(doc_id: str, doc_index: int, attempt: int = 1):
    """Bracket one document *attempt*: fault decisions made inside are
    memoised per site (a site hit twice in one attempt behaves
    consistently) and keyed on exactly this ``(doc, attempt)``."""
    state = _STATE
    if state.plan is None:
        yield
        return
    previous = (state.doc_id, state.doc_index, state.attempt, state.decided, state.charged)
    state.doc_id = doc_id
    state.doc_index = doc_index
    state.attempt = attempt
    state.decided = {}
    state.charged = set()
    try:
        yield
    finally:
        state.doc_id, state.doc_index, state.attempt, state.decided, state.charged = previous


def fault_site(
    name: str, doc_id: Optional[str] = None, attempt: Optional[int] = None
) -> Optional[FaultAction]:
    """The hook every injection site calls.

    Returns ``None`` (no fault, or a ``slow`` fault whose latency was
    charged), raises a typed error, blocks, or exits — or returns a
    ``corrupt`` :class:`FaultAction` for the caller to apply.  The
    explicit ``doc_id`` / ``attempt`` overrides exist for sites outside
    any document (``worker.boot``).
    """
    state = _STATE
    plan = state.plan
    if plan is None:
        return None
    override = doc_id is not None or attempt is not None
    if not override and name in state.decided:
        action = state.decided[name]
    else:
        effective_doc = doc_id if doc_id is not None else state.doc_id
        effective_attempt = attempt if attempt is not None else state.attempt
        action = plan.decide(name, effective_doc, state.doc_index, effective_attempt)
        if not override:
            state.decided[name] = action
        if action is not None:
            state.tracer.event(
                "fault.injected",
                site=name,
                kind=action.kind,
                doc_id=effective_doc or "",
                doc_index=state.doc_index,
                attempt=effective_attempt,
                latency_s=action.rule.latency_s if action.kind == "slow" else 0.0,
            )
            # Out-of-document override sites (worker.boot) exist only on
            # the parallel path; keeping them out preserves the counter's
            # serial-vs-parallel parity (repro.obs.names: deterministic).
            if not override:
                get_registry().counter(
                    "repro.faults.injected", site=name, kind=action.kind
                ).inc()
    if action is None:
        return None
    return _apply(name, action, state)


def _apply(name: str, action: FaultAction, state: _FaultState) -> Optional[FaultAction]:
    kind = action.kind
    if kind == "flaky":
        raise TransientFault(name, "injected transient fault")
    if kind == "fail":
        raise PermanentFault(name, "injected permanent fault")
    if kind == "hang":
        if state.preemptible:  # pragma: no cover - killed by the watchdog
            block_forever()
        raise TransientFault(
            name, "injected hang (simulated as a transient fault outside a supervised worker)"
        )
    if kind == "crash":
        if state.preemptible:  # pragma: no cover - exits the worker
            os._exit(86)
        raise TransientFault(
            name, "injected crash (simulated as a transient fault outside a supervised worker)"
        )
    if kind == "slow":
        if name not in state.charged:
            state.charged.add(name)
            state.virtual_s += action.rule.latency_s
        return None
    if kind == "corrupt":
        return action
    raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover - parser rejects
