"""JSONL checkpoint/resume for supervised corpus runs.

Format — one JSON object per line, flushed per record so a killed run
loses at most the line being written:

* line 1, the **header**: ``{"type": "header", "schema":
  "repro.checkpoint/1", "fingerprint": "…"}``.  The fingerprint hashes
  the dataset, the document ids and the fault-plan spec; resuming with
  a different corpus or plan is refused rather than silently mixed.
* ``{"type": "result", "index": i, "doc_id": "…", "payload": "…"}`` —
  one completed document.  The payload is the base64-encoded pickle of
  the full :class:`~repro.core.pipeline.PipelineResult`, so a resumed
  run reproduces the uninterrupted result **byte-identically** (the
  pipeline is deterministic; the stored object *is* the object).
* ``{"type": "quarantine", "index": i, "doc_id": "…", "failure": {…},
  "entry": {…}}`` — one document the run gave up on, carrying enough
  to reconstruct its :class:`~repro.perf.runner.DocumentFailure` and
  quarantine entry exactly.

Loading tolerates exactly one truncated trailing line (the kill
artefact); corruption anywhere else is an error.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

_LOG = logging.getLogger("repro.resilience.checkpoint")

CHECKPOINT_SCHEMA = "repro.checkpoint/1"


def run_fingerprint(
    dataset: str, doc_ids: Sequence[str], plan_key: Optional[str], max_attempts: int
) -> str:
    """Identity of a run for resume purposes: same corpus, same fault
    plan, same retry budget."""
    payload = json.dumps(
        {
            "dataset": dataset,
            "doc_ids": list(doc_ids),
            "plan": plan_key,
            "max_attempts": max_attempts,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def encode_payload(obj: Any) -> str:
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class CheckpointLog:
    """Append-only JSONL log of resolved documents.

    :attr:`completed` maps doc index → deserialised result payload and
    :attr:`quarantined` maps doc index → the raw quarantine record,
    both populated from any pre-existing file at :meth:`open` time.
    """

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[int, Any] = {}
        self.quarantined: Dict[int, Dict[str, Any]] = {}
        self._fh = None
        self._valid_bytes: Optional[int] = None  # set when a kill artefact was found

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, fingerprint: str) -> "CheckpointLog":
        log = cls(path, fingerprint)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            log._load()
            if log._valid_bytes is not None:
                # Trim the half-written final line a kill left behind so
                # the records we append don't fuse with it.
                with open(path, "r+", encoding="utf-8") as fh:
                    fh.truncate(log._valid_bytes)
            else:
                with open(path, "rb") as fh:
                    tail = fh.read()[-1:]
                if tail != b"\n":
                    # Valid final record but the newline itself was lost:
                    # restore it so appended records start on a fresh line.
                    with open(path, "a", encoding="utf-8") as fh:
                        fh.write("\n")
        log._fh = open(path, "a", encoding="utf-8")
        if fresh:
            log._write(
                {"type": "header", "schema": CHECKPOINT_SCHEMA, "fingerprint": fingerprint}
            )
        return log

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            raw = fh.read()
        # Work line-by-line on *bytes*: a crash mid-write can land
        # anywhere, including inside a multi-byte UTF-8 sequence, so
        # decoding the whole file up front would turn the one tolerated
        # kill artefact into a hard UnicodeDecodeError.
        lines = raw.splitlines(keepends=True)
        entries: List[Tuple[int, int, Dict[str, Any]]] = []  # (lineno, offset, record)
        offset = 0
        for lineno, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                offset += len(line)
                continue
            try:
                entries.append((lineno, offset, json.loads(stripped.decode("utf-8"))))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if lineno == len(lines) - 1:
                    # The kill artefact: a half-written final line.
                    # Remember where the valid prefix ends so `open`
                    # can trim it before appending.
                    self._note_kill_artefact(offset, lineno)
                    break
                raise ValueError(
                    f"corrupt checkpoint {self.path}: unparseable line {lineno + 1}"
                )
            offset += len(line)
        records = [record for _, _, record in entries]
        if not records or records[0].get("type") != "header":
            raise ValueError(f"checkpoint {self.path} has no header line")
        header = records[0]
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint {self.path} uses schema {header.get('schema')!r}, "
                f"expected {CHECKPOINT_SCHEMA!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"checkpoint {self.path} was written by a different run "
                "(corpus, fault plan or retry budget changed); "
                "delete it or point --checkpoint elsewhere"
            )
        for pos, (lineno, line_offset, record) in enumerate(entries[1:], start=1):
            kind = record.get("type")
            if kind == "result":
                try:
                    payload = decode_payload(record["payload"])
                except (KeyError, ValueError, EOFError, pickle.UnpicklingError):
                    # binascii.Error is a ValueError subclass; pickle
                    # raises UnpicklingError/EOFError/ValueError on a
                    # truncated stream.  On the *final* record this is
                    # the same crash-mid-write artefact as a torn line
                    # (the JSON framing survived, the payload did not):
                    # drop it and let the run redo that one document.
                    if pos == len(entries) - 1 and self._valid_bytes is None:
                        self._note_kill_artefact(line_offset, lineno)
                        break
                    raise ValueError(
                        f"corrupt checkpoint {self.path}: "
                        f"undecodable result payload on line {lineno + 1}"
                    )
                self.completed[int(record["index"])] = payload
            elif kind == "quarantine":
                self.quarantined[int(record["index"])] = record

    def _note_kill_artefact(self, offset: int, lineno: int) -> None:
        self._valid_bytes = offset
        _LOG.warning(
            "checkpoint %s: dropping truncated final record on line %d "
            "(crash mid-write); the affected document will be re-run",
            self.path, lineno + 1,
        )

    # ------------------------------------------------------------------
    def _write(self, record: Dict[str, Any]) -> None:
        assert self._fh is not None, "checkpoint log is closed"
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def record_result(self, index: int, doc_id: str, result: Any) -> None:
        self._write(
            {"type": "result", "index": index, "doc_id": doc_id, "payload": encode_payload(result)}
        )

    def record_quarantine(
        self, index: int, doc_id: str, failure: Dict[str, Any], entry: Dict[str, Any]
    ) -> None:
        self._write(
            {
                "type": "quarantine",
                "index": index,
                "doc_id": doc_id,
                "failure": failure,
                "entry": entry,
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
