"""The machine-readable quarantine report.

A *quarantined* document is one the supervised runner gave up on:
either a permanent failure, or a transient one that survived the full
retry budget.  Each entry carries the complete attempt history —
enough for ``repro explain`` (or a human with ``jq``) to answer "why
is doc 12 missing from the results" without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Schema tag written into every serialised report.
QUARANTINE_SCHEMA = "repro.quarantine/1"


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt at a document.

    ``kind`` classifies how the attempt ended: ``transient`` /
    ``permanent`` (the pipeline raised), ``timeout`` (the watchdog
    killed the worker), or ``crash`` (the worker process died).
    """

    attempt: int
    kind: str
    error_type: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "AttemptRecord":
        return AttemptRecord(
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
        )


@dataclass(frozen=True)
class QuarantineEntry:
    """One document the run gave up on, with its full attempt history."""

    doc_id: str
    doc_index: int
    error_type: str
    message: str
    attempts: Tuple[AttemptRecord, ...] = ()
    traceback: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "doc_index": self.doc_index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": [a.to_dict() for a in self.attempts],
            "traceback": self.traceback,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "QuarantineEntry":
        return QuarantineEntry(
            doc_id=str(data["doc_id"]),
            doc_index=int(data["doc_index"]),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
            attempts=tuple(AttemptRecord.from_dict(a) for a in data.get("attempts", [])),
            traceback=str(data.get("traceback", "")),
        )


@dataclass
class QuarantineReport:
    """All quarantined documents of one run, in resolution order."""

    entries: List[QuarantineEntry] = field(default_factory=list)

    def doc_ids(self) -> List[str]:
        return [e.doc_id for e in self.entries]

    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(self.entries, key=lambda e: (e.doc_index, e.doc_id))
        return {
            "schema": QUARANTINE_SCHEMA,
            "quarantined": len(ordered),
            "entries": [e.to_dict() for e in ordered],
        }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "QuarantineReport":
        return QuarantineReport(
            entries=[QuarantineEntry.from_dict(e) for e in data.get("entries", [])]
        )
