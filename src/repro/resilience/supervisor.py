"""Supervised corpus execution: watchdog, retries, quarantine, resume.

:func:`run_supervised` is the engine behind ``CorpusRunner(...,
supervision=SupervisionPolicy(...))``.  It upgrades the plain runner's
error isolation into full supervision:

* **per-document timeout** — parallel workers are hand-managed
  ``multiprocessing`` processes (a ``ProcessPoolExecutor`` can neither
  preempt a hung task nor survive a dead worker); the parent watchdog
  kills any worker past its per-document deadline and replaces it, so
  the pool stays alive;
* **crash containment** — a worker that dies mid-document (an injected
  ``crash``, a segfault) is detected via its pipe's EOF, the document
  is re-queued or quarantined, and a replacement worker boots;
* **deterministic retry** — transient :class:`DocumentFailure`\\ s are
  retried up to :attr:`SupervisionPolicy.max_attempts` with capped
  exponential backoff charged to a virtual
  :class:`~repro.resilience.budget.BackoffClock` (no sleeping);
* **quarantine** — documents that exhaust the budget (or fail
  permanently) land in a machine-readable
  :class:`~repro.resilience.quarantine.QuarantineReport`;
* **checkpoint/resume** — with a
  :attr:`~SupervisionPolicy.checkpoint_path`, every resolved document
  is appended to a JSONL log and a rerun skips completed documents,
  reproducing the uninterrupted result byte-identically.

Every supervision decision emits a registered trace event
(``runner.retry`` / ``runner.timeout`` / ``runner.quarantine`` /
``runner.worker_replace`` / ``runner.resume`` / ``runner.degrade``),
counts into ``PipelineMetrics`` under the ``resilience.*`` stages and
into the run's :class:`repro.obs.registry.MetricRegistry` as
``repro.resilience.*`` counters (the metric mirror of the ledger), and
is recorded as a :class:`SupervisionEvent` whose canonical
:meth:`~SupervisionReport.ledger` is byte-identical between serial and
parallel runs of the same plan seed.
"""

from __future__ import annotations

import logging
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.instrument import PipelineMetrics
from repro.obs.registry import (
    MetricRegistry,
    get_registry,
    ingest_pipeline_metrics,
)
from repro.obs.resources import sample_resources
from repro.perf.runner import (
    CorpusRunResult,
    DocumentFailure,
    _cache_counts,
    _default_factory,
    _emit_cache_counters,
    _run_one,
)
from repro.resilience import faults as _faults
from repro.resilience.budget import BackoffClock, backoff_seconds
from repro.resilience.checkpoint import CheckpointLog, run_fingerprint
from repro.resilience.quarantine import AttemptRecord, QuarantineEntry, QuarantineReport
from repro.trace import NULL_TRACER, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.doc import Document
    from repro.perf.runner import CorpusRunner

_LOG = logging.getLogger("repro.resilience.supervisor")


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervised execution layer.

    ``timeout_s`` is the per-document wall-clock budget enforced by the
    parallel watchdog (``None`` disables it; the serial path cannot
    preempt and ignores it).  ``max_attempts`` bounds tries per
    document; backoff between attempt *k* and *k+1* is
    ``min(cap, base * 2**(k-1))`` virtual seconds.
    ``max_worker_replacements`` caps how many replacement workers one
    run may boot before degrading to supervised-serial execution.
    """

    timeout_s: Optional[float] = 60.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    boot_timeout_s: float = 60.0
    max_worker_replacements: int = 8
    checkpoint_path: Optional[str] = None
    quarantine_report_path: Optional[str] = None


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision, in machine-readable form."""

    kind: str  # retry | timeout | quarantine | worker_replace | resume | degrade_serial
    doc_index: int
    doc_id: str
    attempt: int
    error_type: str = ""
    message: str = ""
    backoff_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "doc_index": self.doc_index,
            "doc_id": self.doc_id,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "backoff_s": self.backoff_s,
        }


@dataclass
class SupervisionReport:
    """Everything the supervisor decided during one run."""

    events: List[SupervisionEvent] = field(default_factory=list)
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    attempts: Dict[str, int] = field(default_factory=dict)
    worker_replacements: int = 0
    resumed_docs: int = 0
    backoff_s: float = 0.0
    degrade_reason: Optional[str] = None

    def ledger(self) -> List[Dict[str, Any]]:
        """Canonical per-document decision ledger: deterministic order,
        no timestamps, no process identity — the serial-vs-parallel
        parity surface.  ``worker_replace`` events are excluded (worker
        scheduling is inherently parallel-only)."""
        rows = [
            e.to_dict()
            for e in self.events
            if e.kind not in {"worker_replace", "degrade_serial"}
        ]
        rows.sort(key=lambda r: (r["doc_index"], r["attempt"], r["kind"], r["doc_id"]))
        return rows


def _synthetic_failure(
    doc: "Document", index: int, error_type: str, message: str
) -> DocumentFailure:
    """A failure the *supervisor* observed (timeout, crash) rather than
    one the pipeline raised — always transient: the next attempt may
    land on a healthy worker."""
    return DocumentFailure(
        doc_id=doc.doc_id,
        error_type=error_type,
        message=message,
        traceback="",
        doc_index=index,
        transient=True,
    )


def _failure_to_dict(failure: DocumentFailure) -> Dict[str, Any]:
    return {
        "doc_id": failure.doc_id,
        "error_type": failure.error_type,
        "message": failure.message,
        "traceback": failure.traceback,
        "doc_index": failure.doc_index,
        "span_path": failure.span_path,
        "ocr_seed": failure.ocr_seed,
        "transient": failure.transient,
    }


def _failure_from_dict(data: Dict[str, Any]) -> DocumentFailure:
    return DocumentFailure(
        doc_id=str(data["doc_id"]),
        error_type=str(data["error_type"]),
        message=str(data.get("message", "")),
        traceback=str(data.get("traceback", "")),
        doc_index=int(data.get("doc_index", -1)),
        span_path=str(data.get("span_path", "")),
        ocr_seed=data.get("ocr_seed"),
        transient=bool(data.get("transient", False)),
    )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _supervised_worker_main(
    wid: int, conn, dataset, config, factory, trace_enabled: bool, plan
) -> None:
    """Entry point of one supervised worker process.

    Protocol (over the duplex pipe): sends ``("ready", wid)`` after a
    successful boot or ``("boot_failed", wid, type, msg)``; then for
    every ``(index, doc, attempt)`` task received, replies ``("done",
    wid, index, attempt, result, failure, metrics, spans, registry)``
    where ``registry`` is the drained metric-registry dump for that
    task.  ``None`` means shut down.
    """
    tracer = Tracer() if trace_enabled else NULL_TRACER
    get_registry().drain()  # fork-inherited ambient samples belong to the parent
    if plan is not None:
        _faults.install(plan, tracer=tracer, preemptible=True)
    try:
        _faults.fault_site("worker.boot", doc_id=f"worker:{wid}", attempt=1)
        pipeline = (
            factory() if factory is not None else _default_factory(dataset, config, tracer=tracer)
        )
        pipeline.metrics.drain()
    except BaseException as exc:  # noqa: EXC102 - boot failures are reported over the pipe, not raised
        try:
            conn.send(("boot_failed", wid, type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", wid))
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        if task is None:
            break
        index, doc, attempt = task
        cache_before = _cache_counts(pipeline)
        index, result, failure = _run_one(pipeline, index, doc, tracer, attempt=attempt)
        _emit_cache_counters(pipeline, cache_before)
        sample_resources(get_registry(), worker=f"pid{os.getpid()}")
        spans = [span.to_dict() for span in tracer.drain()]
        metrics = pipeline.metrics.drain().to_dict()
        registry_dump = get_registry().drain().to_dict()
        try:
            conn.send(
                ("done", wid, index, attempt, result, failure, metrics, spans, registry_dump)
            )
        except (OSError, ValueError):  # pragma: no cover - parent died mid-send
            break
    conn.close()


class _WorkerHandle:
    __slots__ = ("wid", "proc", "conn", "ready", "task", "deadline")

    def __init__(self, wid, proc, conn, deadline):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.ready = False
        self.task: Optional[Tuple[int, int]] = None  # (doc index, attempt)
        self.deadline: Optional[float] = deadline


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
def run_supervised(
    runner: "CorpusRunner",
    docs: Sequence["Document"],
    clock: Optional[BackoffClock] = None,
) -> CorpusRunResult:
    """Run ``docs`` through ``runner``'s pipeline under its
    :class:`SupervisionPolicy`; never raises for per-document errors."""
    return _Supervisor(runner, runner.supervision, clock=clock).run(list(docs))


class _Supervisor:
    def __init__(
        self,
        runner: "CorpusRunner",
        policy: SupervisionPolicy,
        clock: Optional[BackoffClock] = None,
    ):
        self.runner = runner
        self.policy = policy
        self.tracer = runner.tracer
        self.clock = clock if clock is not None else BackoffClock()
        self.metrics = PipelineMetrics()
        self.registry: MetricRegistry = runner.registry
        self.report = SupervisionReport()
        self.docs: List["Document"] = []
        self.slots: List[Optional[Any]] = []
        self.failures: List[DocumentFailure] = []
        self.attempt_log: Dict[int, List[AttemptRecord]] = {}
        self.pending: "deque[Tuple[int, int]]" = deque()
        self.open_docs: set = set()
        self.adopted: List[Span] = []
        self.checkpoint: Optional[CheckpointLog] = None
        self._boot_seq = 0
        self._replacements = 0

    # ------------------------------------------------------------------
    def run(self, docs: List["Document"]) -> CorpusRunResult:
        self.docs = docs
        self.slots = [None] * len(docs)
        todo = self._open_checkpoint_and_resume(docs)
        with self.metrics.stage("corpus") as t, self.tracer.span(
            "corpus", dataset=self.runner.dataset, docs=len(docs)
        ):
            t.items = len(docs)
            tasks = [(index, 1) for index in todo]
            if tasks:
                if self.runner.workers <= 1 or len(tasks) <= 1:
                    self._run_serial(tasks)
                else:
                    self._run_parallel(tasks)
            self._adopt_spans()
        self.report.backoff_s = self.clock.total_s
        if self.report.backoff_s:
            self.registry.counter("repro.resilience.backoff_seconds").inc(
                self.report.backoff_s
            )
        if self.checkpoint is not None:
            self.checkpoint.close()
        if self.policy.quarantine_report_path:
            self.report.quarantine.write(self.policy.quarantine_report_path)
        self.failures.sort(key=lambda f: (f.doc_index, f.doc_id))
        # Serial supervised attempts emit into the parent's ambient
        # registry; parallel attempts arrived as per-task dumps.  Fold
        # both plus stage accounting and parent resource marks here.
        self.registry.merge(get_registry().drain())
        ingest_pipeline_metrics(self.metrics, self.registry)
        sample_resources(self.registry, worker="main")
        return CorpusRunResult(
            results=self.slots,
            failures=self.failures,
            metrics=self.metrics,
            degrade_reason=self.report.degrade_reason,
            supervision=self.report,
            registry=self.registry,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _open_checkpoint_and_resume(self, docs: List["Document"]) -> List[int]:
        todo = list(range(len(docs)))
        if not self.policy.checkpoint_path:
            return todo
        plan = self.runner.fault_plan
        fingerprint = run_fingerprint(
            self.runner.dataset,
            [d.doc_id for d in docs],
            plan.spec_key() if plan is not None else None,
            self.policy.max_attempts,
        )
        self.checkpoint = CheckpointLog.open(self.policy.checkpoint_path, fingerprint)
        remaining = []
        for index in todo:
            doc = docs[index]
            if index in self.checkpoint.completed:
                self.slots[index] = self.checkpoint.completed[index]
                self._note_resume(index, doc.doc_id)
            elif index in self.checkpoint.quarantined:
                record = self.checkpoint.quarantined[index]
                failure = _failure_from_dict(record["failure"])
                self.failures.append(failure)
                self.report.quarantine.entries.append(
                    QuarantineEntry.from_dict(record["entry"])
                )
                self._note_resume(index, doc.doc_id)
            else:
                remaining.append(index)
        return remaining

    def _note_resume(self, index: int, doc_id: str) -> None:
        self.report.resumed_docs += 1
        self.report.events.append(SupervisionEvent("resume", index, doc_id, 0))
        self.metrics.count("resilience.resume")
        self.registry.counter("repro.resilience.resumes").inc()
        self.tracer.event("runner.resume", doc_id=doc_id, doc_index=index)

    # ------------------------------------------------------------------
    # Attempt resolution (shared by the serial and parallel paths)
    # ------------------------------------------------------------------
    def _resolve_success(self, index: int, attempt: int, result) -> None:
        doc = self.docs[index]
        self.slots[index] = result
        self.report.attempts[doc.doc_id] = attempt
        self.open_docs.discard(index)
        if self.checkpoint is not None:
            self.checkpoint.record_result(index, doc.doc_id, result)

    def _resolve_failure(
        self, index: int, attempt: int, failure: DocumentFailure, kind: str = "fault"
    ) -> bool:
        """Record one failed attempt; returns ``True`` when the doc
        should be retried (caller re-queues it at ``attempt + 1``)."""
        doc = self.docs[index]
        record_kind = kind if kind != "fault" else (
            "transient" if failure.transient else "permanent"
        )
        self.attempt_log.setdefault(index, []).append(
            AttemptRecord(attempt, record_kind, failure.error_type, failure.message)
        )
        if failure.transient and attempt < self.policy.max_attempts:
            backoff = backoff_seconds(
                attempt, self.policy.backoff_base_s, self.policy.backoff_cap_s
            )
            self.clock.charge(backoff)
            self.report.events.append(
                SupervisionEvent(
                    "retry", index, doc.doc_id, attempt,
                    failure.error_type, failure.message, backoff,
                )
            )
            self.metrics.count("resilience.retry")
            self.metrics.record("resilience.backoff", backoff, calls=0)
            self.registry.counter(
                "repro.resilience.retries", error_type=failure.error_type
            ).inc()
            self.tracer.event(
                "runner.retry",
                doc_id=doc.doc_id,
                doc_index=index,
                attempt=attempt,
                error_type=failure.error_type,
                backoff_s=backoff,
            )
            return True
        self._quarantine(index, attempt, failure)
        return False

    def _quarantine(self, index: int, attempt: int, failure: DocumentFailure) -> None:
        doc = self.docs[index]
        entry = QuarantineEntry(
            doc_id=doc.doc_id,
            doc_index=index,
            error_type=failure.error_type,
            message=failure.message,
            attempts=tuple(self.attempt_log.get(index, [])),
            traceback=failure.traceback,
        )
        self.report.quarantine.entries.append(entry)
        self.failures.append(failure)
        self.report.attempts[doc.doc_id] = attempt
        self.report.events.append(
            SupervisionEvent(
                "quarantine", index, doc.doc_id, attempt,
                failure.error_type, failure.message,
            )
        )
        self.open_docs.discard(index)
        self.metrics.count("resilience.quarantine")
        self.registry.counter(
            "repro.resilience.quarantines", error_type=failure.error_type
        ).inc()
        self.tracer.event(
            "runner.quarantine",
            doc_id=doc.doc_id,
            doc_index=index,
            attempts=attempt,
            error_type=failure.error_type,
        )
        if self.checkpoint is not None:
            self.checkpoint.record_quarantine(
                index, doc.doc_id, _failure_to_dict(failure), entry.to_dict()
            )

    # ------------------------------------------------------------------
    # Serial supervised execution
    # ------------------------------------------------------------------
    def _run_serial(self, tasks: List[Tuple[int, int]]) -> None:
        """In-process supervision: same retry/quarantine semantics, but
        no preemption — ``hang``/``crash`` faults simulate as transient
        raises (see :mod:`repro.resilience.faults`)."""
        runner = self.runner
        pipeline = runner._serial()
        pipeline.metrics.drain()
        installed = False
        if runner.fault_plan is not None and not _faults.is_installed():
            _faults.install(runner.fault_plan, tracer=self.tracer)
            installed = True
        try:
            for index, first_attempt in tasks:
                doc = self.docs[index]
                self.open_docs.add(index)
                attempt = first_attempt
                while True:
                    _, result, failure = _run_one(
                        pipeline, index, doc, self.tracer, attempt=attempt
                    )
                    if failure is None:
                        self._resolve_success(index, attempt, result)
                        break
                    if self._resolve_failure(index, attempt, failure):
                        attempt += 1
                        continue
                    break
        finally:
            if installed:
                _faults.uninstall()
        self.metrics.merge(pipeline.metrics.drain())

    # ------------------------------------------------------------------
    # Parallel supervised execution
    # ------------------------------------------------------------------
    def _run_parallel(self, tasks: List[Tuple[int, int]]) -> None:
        try:
            ctx = get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            ctx = get_context()
        self.pending = deque(tasks)
        self.open_docs = {index for index, _ in tasks}
        workers: Dict[int, _WorkerHandle] = {}
        try:
            for _ in range(min(self.runner.workers, max(1, len(tasks)))):
                self._spawn(workers, ctx)
        except (OSError, ValueError) as exc:  # no process support: degrade, don't die
            self._shutdown(workers)
            self._degrade_to_serial(f"{type(exc).__name__}: {exc}")
            return
        try:
            while self.open_docs:
                if not workers:
                    self._degrade_to_serial("worker pool exhausted (replacement cap reached)")
                    return
                self._dispatch(workers)
                self._poll(workers, ctx)
                self._watchdog(workers, ctx)
        finally:
            self._shutdown(workers)

    def _degrade_to_serial(self, reason: str) -> None:
        _LOG.warning("supervised parallel run degraded to serial: %s", reason)
        self.report.degrade_reason = reason
        self.report.events.append(SupervisionEvent("degrade_serial", -1, "", 0, message=reason))
        self.tracer.event("runner.degrade", reason=reason, to="serial")
        remaining = sorted(self.pending)
        self.pending = deque()
        self._run_serial(remaining)

    def _spawn(self, workers: Dict[int, _WorkerHandle], ctx) -> None:
        self._boot_seq += 1
        wid = self._boot_seq
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_supervised_worker_main,
            args=(
                wid,
                child_conn,
                self.runner.dataset,
                self.runner.config,
                self.runner.pipeline_factory,
                self.tracer.enabled,
                self.runner.fault_plan,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        workers[wid] = _WorkerHandle(
            wid, proc, parent_conn, time.monotonic() + self.policy.boot_timeout_s
        )

    def _dispatch(self, workers: Dict[int, _WorkerHandle]) -> None:
        for handle in list(workers.values()):
            if not self.pending:
                break
            if not handle.ready or handle.task is not None:
                continue
            index, attempt = self.pending.popleft()
            handle.conn.send((index, self.docs[index], attempt))
            handle.task = (index, attempt)
            handle.deadline = (
                time.monotonic() + self.policy.timeout_s
                if self.policy.timeout_s is not None
                else None
            )

    def _poll(self, workers: Dict[int, _WorkerHandle], ctx) -> None:
        by_conn = {handle.conn: handle for handle in workers.values()}
        if not by_conn:
            return
        for conn in _conn_wait(list(by_conn), timeout=0.05):
            handle = by_conn[conn]
            if handle.wid not in workers:
                continue  # already reaped this round
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._on_worker_death(workers, ctx, handle)
                continue
            self._on_message(workers, ctx, handle, message)

    def _watchdog(self, workers: Dict[int, _WorkerHandle], ctx) -> None:
        now = time.monotonic()
        for handle in list(workers.values()):
            if handle.deadline is None or now <= handle.deadline:
                continue
            self._kill(handle)
            task = handle.task
            self._remove(workers, handle)
            if task is None:
                self._replace(workers, ctx, "worker boot timed out")
                continue
            index, attempt = task
            doc = self.docs[index]
            self.metrics.count("resilience.timeout")
            self.registry.counter("repro.resilience.timeouts").inc()
            self.tracer.event(
                "runner.timeout",
                doc_id=doc.doc_id,
                doc_index=index,
                attempt=attempt,
                timeout_s=self.policy.timeout_s,
            )
            failure = _synthetic_failure(
                doc, index, "DocumentTimeout",
                f"document exceeded the {self.policy.timeout_s}s supervision "
                f"timeout (attempt {attempt})",
            )
            if self._resolve_failure(index, attempt, failure, kind="timeout"):
                self.pending.append((index, attempt + 1))
            self._replace(workers, ctx, "worker killed after document timeout")

    def _on_message(self, workers, ctx, handle: _WorkerHandle, message) -> None:
        tag = message[0]
        if tag == "ready":
            handle.ready = True
            handle.deadline = None
        elif tag == "boot_failed":
            _, _wid, error_type, text = message
            self._remove(workers, handle)
            self._replace(workers, ctx, f"worker boot failed: {error_type}: {text}")
        elif tag == "done":
            (_, _wid, index, attempt, result, failure,
             metrics_dict, span_dicts, registry_dump) = message
            handle.task = None
            handle.deadline = None
            self.metrics.merge(PipelineMetrics.from_dict(metrics_dict))
            self.registry.merge(MetricRegistry.from_dict(registry_dump))
            self.adopted.extend(Span.from_dict(s) for s in span_dicts)
            if failure is None:
                self._resolve_success(index, attempt, result)
            elif self._resolve_failure(index, attempt, failure):
                self.pending.append((index, attempt + 1))

    def _on_worker_death(self, workers, ctx, handle: _WorkerHandle) -> None:
        task = handle.task
        booted = handle.ready
        self._remove(workers, handle)
        if task is not None:
            index, attempt = task
            doc = self.docs[index]
            failure = _synthetic_failure(
                doc, index, "WorkerCrash",
                f"worker process died while running the document (attempt {attempt})",
            )
            if self._resolve_failure(index, attempt, failure, kind="crash"):
                self.pending.append((index, attempt + 1))
            self._replace(workers, ctx, "worker crashed mid-document")
        else:
            self._replace(
                workers, ctx,
                "worker exited while idle" if booted else "worker died during boot",
            )

    def _replace(self, workers: Dict[int, _WorkerHandle], ctx, reason: str) -> None:
        if not self.open_docs:
            return
        if self._replacements >= self.policy.max_worker_replacements:
            return  # the main loop degrades to serial once the pool empties
        self._replacements += 1
        self.report.worker_replacements += 1
        self.report.events.append(SupervisionEvent("worker_replace", -1, "", 0, message=reason))
        self.metrics.count("resilience.worker_replace")
        self.registry.counter("repro.resilience.worker_replacements").inc()
        self.tracer.event("runner.worker_replace", reason=reason)
        self._spawn(workers, ctx)

    def _kill(self, handle: _WorkerHandle) -> None:
        if handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(timeout=2)
            if handle.proc.is_alive():  # pragma: no cover - SIGTERM ignored
                handle.proc.kill()
                handle.proc.join(timeout=2)

    def _remove(self, workers: Dict[int, _WorkerHandle], handle: _WorkerHandle) -> None:
        workers.pop(handle.wid, None)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if not handle.proc.is_alive():
            handle.proc.join(timeout=1)

    def _shutdown(self, workers: Dict[int, _WorkerHandle]) -> None:
        for handle in list(workers.values()):
            try:
                handle.conn.send(None)
            except (OSError, ValueError):  # pragma: no cover - worker already gone
                pass
        for handle in list(workers.values()):
            handle.proc.join(timeout=2)
            if handle.proc.is_alive():  # pragma: no cover - stuck worker
                handle.proc.terminate()
                handle.proc.join(timeout=2)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        workers.clear()

    def _adopt_spans(self) -> None:
        self.adopted.sort(
            key=lambda s: (
                s.attrs.get("index", -1), s.attrs.get("attempt", 1), s.name,
            )
        )
        for span in self.adopted:
            self.tracer.adopt(span)
        self.adopted = []
