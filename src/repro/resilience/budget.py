"""The injectable time budget: virtual backoff accounting, one blocker.

This module is the **only** place in ``repro.core`` / ``repro.resilience``
allowed to touch ``time.sleep`` — the RES001 lint rule enforces it.
Everything else expresses waiting as *virtual seconds* charged to a
:class:`BackoffClock`, so a supervised run's retry schedule is exact,
deterministic and free: tests never sleep, and the accounted budget
still rolls up into the supervision report.

``block_forever`` is the one sanctioned real blocker — it exists solely
so an injected ``hang`` fault inside a supervised worker really does
hang (and gets killed by the parent watchdog) instead of simulating.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


def backoff_seconds(attempt: int, base_s: float, cap_s: float) -> float:
    """Capped exponential backoff before retry ``attempt + 1``.

    Attempt numbering is 1-based: after the first failed attempt the
    wait is ``base_s``, doubling per subsequent attempt up to ``cap_s``.
    Pure arithmetic — no jitter, no clock — so serial and parallel
    supervised runs charge byte-identical budgets.
    """
    if attempt < 1:
        attempt = 1
    return min(cap_s, base_s * (2.0 ** (attempt - 1)))


class BackoffClock:
    """Accounts waiting without performing it.

    :meth:`charge` adds virtual seconds to :attr:`total_s`.  A caller
    that genuinely wants wall-clock pacing (none of the shipped code
    paths do) can inject a ``sleeper`` callable; the default is pure
    accounting, which keeps the chaos suite instant and the retry
    ledger deterministic.
    """

    __slots__ = ("total_s", "_sleeper")

    def __init__(self, sleeper: Optional[Callable[[float], None]] = None):
        self.total_s = 0.0
        self._sleeper = sleeper

    def charge(self, seconds: float) -> None:
        if seconds <= 0.0:
            return
        self.total_s += seconds
        if self._sleeper is not None:
            self._sleeper(seconds)


def block_forever(poll_s: float = 0.05) -> None:  # pragma: no cover - killed externally
    """Hang the calling process until it is killed.

    Used exclusively by an injected ``hang`` fault inside a supervised
    worker; the parent's watchdog is what ends it.
    """
    while True:
        time.sleep(poll_s)
