"""Span-derived aggregations: collapsed flamegraph stacks, critical path.

The PR 3 tracer already records where the time went — every span
carries ``t0``/``t1`` — but a span forest is hard to eyeball at corpus
scale.  Two standard aggregations fix that:

* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack format
  (``corpus;doc[0];segment;segment.cuts 8123``): one line per unique
  span *path*, value = summed **self time** in integer microseconds
  (children's time excluded, so a flamegraph renderer reconstructs the
  hierarchy exactly).  ``repro extract/bench --flame out.txt`` writes
  this; feed it to ``flamegraph.pl`` or speedscope.
* :func:`critical_path` — the chain of slowest children from the root
  down: the sequence of spans an infinitely parallel machine would
  still have to wait for.  ``repro report`` prints it when given a
  trace.

Both are pure functions of the span forest; values are wall-clock and
therefore environment data (never part of the determinism surface).
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Tuple, Union

from repro.trace import Span


def _self_seconds(span: Span) -> float:
    """Span duration minus the time covered by its children (clamped
    at zero — overlapping child spans cannot drive self time negative)."""
    child_time = sum(c.duration for c in span.children)
    return max(span.duration - child_time, 0.0)


def collapsed_stacks(roots: List[Span]) -> Dict[str, float]:
    """``path -> self seconds`` over the whole forest, paths joined
    with ``;`` from each root down."""
    totals: Dict[str, float] = {}

    def walk(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.label()}" if prefix else span.label()
        totals[path] = totals.get(path, 0.0) + _self_seconds(span)
        for child in span.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    return totals


def flamegraph_lines(roots: List[Span]) -> List[str]:
    """Collapsed-stack lines (``path value_us``), sorted by path —
    byte-stable for a given span forest."""
    totals = collapsed_stacks(roots)
    return [
        f"{path} {int(round(seconds * 1e6))}"
        for path, seconds in sorted(totals.items())
    ]


def write_flamegraph(path: Union[str, pathlib.Path], roots: List[Span]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = flamegraph_lines(roots)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def critical_path(roots: List[Span]) -> List[Tuple[str, float]]:
    """The slowest-child chain from the slowest root down, as
    ``(path, duration seconds)`` pairs.

    Ties break toward the earlier-starting span (then by label) so the
    result is deterministic even for equal durations.
    """
    if not roots:
        return []
    out: List[Tuple[str, float]] = []
    span = max(roots, key=lambda s: (s.duration, -s.t0, s.label()))
    prefix = ""
    while span is not None:
        path = f"{prefix};{span.label()}" if prefix else span.label()
        out.append((path, span.duration))
        prefix = path
        if not span.children:
            break
        span = max(span.children, key=lambda s: (s.duration, -s.t0, s.label()))
    return out


def critical_path_lines(roots: List[Span]) -> List[str]:
    """The critical path rendered as indented report lines."""
    chain = critical_path(roots)
    lines = []
    for depth, (path, seconds) in enumerate(chain):
        label = path.rsplit(";", 1)[-1]
        lines.append(f"{'  ' * depth}{label:<24s} {seconds * 1000.0:9.2f} ms")
    return lines
