"""Resource accounting: RSS high-water, CPU time, tracemalloc peaks.

One :func:`sample_resources` call reads the process's cumulative
resource usage (``resource.getrusage``) and, when ``tracemalloc`` is
tracing, its peak traced allocation, and records them as **high-water
gauges** labeled by ``worker``.  Gauges merge by maximum, so sampling
is idempotent: the parallel runner samples once per completed chunk
and the repeated cumulative readings collapse to the latest/largest —
no double counting, no ordering sensitivity.

``ru_maxrss`` units differ by platform (kilobytes on Linux, bytes on
macOS); :func:`rss_bytes` normalises to bytes.  All resource metrics
are declared non-deterministic in :mod:`repro.obs.names`, so they
never participate in the serial-vs-parallel parity dump.

Per-**stage** CPU accounting lives one layer down: when enabled,
:class:`repro.instrument.StageTimer` charges getrusage deltas to
``StageStats.cpu_seconds``, which
:func:`repro.obs.registry.ingest_pipeline_metrics` folds into the
``repro.stage.cpu_seconds`` counter.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - windows
    _resource = None  # type: ignore[assignment]

from repro.obs.registry import MetricRegistry


def rss_bytes(ru_maxrss: int) -> int:
    """``ru_maxrss`` normalised to bytes (Linux reports KiB, macOS bytes)."""
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def sample_resources(
    registry: MetricRegistry, worker: str = "main"
) -> Optional[dict]:
    """Record this process's resource usage into ``registry``.

    Returns the raw readings as a dict (for tests and reports), or
    ``None`` on platforms without ``resource``.  Safe to call any
    number of times — every metric is a max-merged gauge.
    """
    if _resource is None:  # pragma: no cover - windows
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    rss = rss_bytes(usage.ru_maxrss)
    registry.gauge("repro.process.rss_max_bytes", worker=worker).set_max(rss)
    registry.gauge("repro.process.cpu_user_seconds", worker=worker).set_max(usage.ru_utime)
    registry.gauge("repro.process.cpu_sys_seconds", worker=worker).set_max(usage.ru_stime)
    readings = {
        "rss_max_bytes": rss,
        "cpu_user_seconds": usage.ru_utime,
        "cpu_sys_seconds": usage.ru_stime,
    }
    if tracemalloc.is_tracing():
        peak = tracemalloc.get_traced_memory()[1]
        registry.gauge(
            "repro.process.tracemalloc_peak_bytes", worker=worker
        ).set_max(peak)
        readings["tracemalloc_peak_bytes"] = peak
    return readings
