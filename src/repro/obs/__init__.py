"""Unified metrics & run-health: the ``repro.obs`` subsystem.

Where :mod:`repro.instrument` times pipeline stages and
:mod:`repro.trace` records per-document decisions, ``repro.obs`` is
the layer that makes a whole *run* observable and judgeable:

* :mod:`repro.obs.registry` — a process-wide
  :class:`~repro.obs.registry.MetricRegistry` of labeled counters,
  gauges and log2 histograms, with merge semantics chosen so worker
  registries fold into the parent's and a serial run's normalized dump
  is byte-identical to a ``--workers N`` run's;
* :mod:`repro.obs.names` — the closed metric vocabulary
  (:data:`~repro.obs.names.METRIC_NAMES`), statically enforced by lint
  rule ``OBS002``;
* :mod:`repro.obs.export` — Prometheus text exposition and JSONL
  exporters (plus the round-trip parser that validates them);
* :mod:`repro.obs.resources` — RSS / CPU / tracemalloc high-water
  gauges per worker process;
* :mod:`repro.obs.flame` — collapsed-stack flamegraph and
  critical-path aggregation over :class:`repro.trace.Span` forests;
* :mod:`repro.obs.health` — the ``BENCH_history.jsonl`` log and the
  declarative SLO rules behind ``repro report``.

Layering: ``repro.obs`` imports only the base layers
(:mod:`repro.instrument`, :mod:`repro.trace`); the perf runner, the
resilience supervisor and the CLI import *it*, never the reverse.
See ``docs/OBSERVABILITY.md`` for the which-tool-when map.
"""

from repro.obs.export import (
    JSONL_SCHEMA,
    exposition_samples,
    parse_prometheus,
    prometheus_name,
    read_metrics_jsonl,
    to_prometheus,
    validate_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.flame import (
    collapsed_stacks,
    critical_path,
    critical_path_lines,
    flamegraph_lines,
    write_flamegraph,
)
from repro.obs.health import (
    DEFAULT_SLOS,
    HISTORY_PATH,
    HISTORY_SCHEMA,
    SERVE_SLOS,
    HealthVerdict,
    SLORule,
    VerdictRow,
    append_history,
    evaluate,
    evaluate_serve,
    format_verdict,
    history_record,
    load_history,
)
from repro.obs.names import KINDS, METRIC_NAMES, MetricDecl, declared
from repro.obs.registry import (
    SCHEMA,
    HistogramValue,
    MetricRegistry,
    get_registry,
    ingest_pipeline_metrics,
    label_key,
)
from repro.obs.resources import rss_bytes, sample_resources

__all__ = [
    "DEFAULT_SLOS",
    "HISTORY_PATH",
    "HISTORY_SCHEMA",
    "HealthVerdict",
    "HistogramValue",
    "JSONL_SCHEMA",
    "KINDS",
    "METRIC_NAMES",
    "MetricDecl",
    "MetricRegistry",
    "SCHEMA",
    "SERVE_SLOS",
    "SLORule",
    "VerdictRow",
    "append_history",
    "collapsed_stacks",
    "critical_path",
    "critical_path_lines",
    "declared",
    "evaluate",
    "evaluate_serve",
    "exposition_samples",
    "flamegraph_lines",
    "format_verdict",
    "get_registry",
    "history_record",
    "ingest_pipeline_metrics",
    "label_key",
    "load_history",
    "parse_prometheus",
    "prometheus_name",
    "read_metrics_jsonl",
    "rss_bytes",
    "sample_resources",
    "to_prometheus",
    "validate_prometheus",
    "write_flamegraph",
    "write_metrics_jsonl",
    "write_prometheus",
]
