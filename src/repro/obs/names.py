"""The metric-name registry: every metric ``repro.obs`` may emit.

Mirrors the trace-event schema (:data:`repro.trace.tracer.EVENT_NAMES`)
for the metrics layer: downstream consumers — the Prometheus
exposition, ``repro report`` SLO rules, dashboards built on the JSONL
dump — key on these strings, so the set is closed.  ``repro check``
verifies statically that every ``registry.counter("…")`` /
``.gauge("…")`` / ``.histogram("…")`` call site in a ``repro.*``
module uses a declared name (rule ``OBS002``); at runtime a strict
:class:`~repro.obs.registry.MetricRegistry` rejects undeclared names
with a :class:`KeyError`.  Register new metrics here first.

Each declaration records the metric's **kind** (``counter`` — merge by
sum; ``gauge`` — merge by max, the high-water convention; ``histogram``
— merge bucket-wise) and whether it is **deterministic**: a pure
function of the run's inputs, identical between a serial and a
``--workers N`` run.  Wall-clock timings, resource readings and
worker-scheduling counts are *environment* metrics
(``deterministic=False``); :meth:`MetricRegistry.normalized_dump`
excludes them, which is what makes the serial-vs-parallel registry
byte-identity testable.

The ``METRIC_NAMES`` assignment below must stay a **dict literal with
string-literal keys** — the static-analysis index reads the keys
syntactically, exactly as it reads ``EVENT_NAMES``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: The metric kinds a declaration may carry.
KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricDecl:
    """One declared metric: kind, label vocabulary, determinism, help."""

    kind: str
    labels: Tuple[str, ...] = ()
    deterministic: bool = True
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r} (expected one of {KINDS})")


def _decl(kind: str, labels: Tuple[str, ...] = (), deterministic: bool = True, help: str = "") -> MetricDecl:
    return MetricDecl(kind=kind, labels=labels, deterministic=deterministic, help=help)


#: name -> declaration.  Keys are the closed metric vocabulary (OBS002).
METRIC_NAMES: Dict[str, MetricDecl] = {
    # -- corpus execution ------------------------------------------------
    "repro.docs.processed": _decl(
        "counter", ("corpus", "status"),
        help="documents run through the pipeline, by outcome (ok|failed)",
    ),
    "repro.doc.failures": _decl(
        "counter", ("corpus", "error_type"),
        help="per-document pipeline failures by exception type",
    ),
    "repro.doc.degradations": _decl(
        "counter", ("corpus", "stage"),
        help="per-stage degradation-ladder activations (merge->visual, select->ner)",
    ),
    # -- stage accounting (ingested from PipelineMetrics) ----------------
    "repro.stage.calls": _decl(
        "counter", ("stage",),
        help="recorded calls per pipeline stage",
    ),
    "repro.stage.items": _decl(
        "counter", ("stage",),
        help="work items (blocks, words, extractions) per pipeline stage",
    ),
    "repro.stage.seconds": _decl(
        "counter", ("stage",), deterministic=False,
        help="wall-clock seconds per pipeline stage",
    ),
    "repro.stage.cpu_seconds": _decl(
        "counter", ("stage",), deterministic=False,
        help="CPU (user+sys) seconds per pipeline stage, from getrusage deltas",
    ),
    "repro.stage.latency": _decl(
        "histogram", ("stage",), deterministic=False,
        help="per-call latency histogram (log2 buckets) per pipeline stage",
    ),
    # -- resilience (the SupervisionReport ledger, as metrics) -----------
    "repro.resilience.retries": _decl(
        "counter", ("error_type",),
        help="supervised retry decisions by failing exception type",
    ),
    "repro.resilience.quarantines": _decl(
        "counter", ("error_type",),
        help="documents quarantined after exhausting the attempt budget",
    ),
    "repro.resilience.timeouts": _decl(
        "counter", (), deterministic=False,
        help="watchdog document timeouts (parallel supervision only)",
    ),
    "repro.resilience.worker_replacements": _decl(
        "counter", (), deterministic=False,
        help="supervised workers killed and replaced (scheduling-dependent)",
    ),
    "repro.resilience.resumes": _decl(
        "counter", (),
        help="documents restored from a checkpoint instead of re-run",
    ),
    "repro.resilience.backoff_seconds": _decl(
        "counter", (),
        help="virtual backoff charged between retry attempts",
    ),
    "repro.faults.injected": _decl(
        "counter", ("site", "kind"),
        help="deterministic fault injections by site and fault kind",
    ),
    # -- ocr cache (serial shares one cache, workers each own one) -------
    "repro.ocr.cache": _decl(
        "counter", ("outcome",), deterministic=False,
        help="transcription-cache lookups by outcome (hit|miss)",
    ),
    # -- serving (repro.serve admission / batching / overload) -----------
    "repro.serve.requests": _decl(
        "counter", ("status",),
        help="requests resolved by final status (200|429|504)",
    ),
    "repro.serve.admitted": _decl(
        "counter", (),
        help="requests accepted into the admission queue",
    ),
    "repro.serve.shed": _decl(
        "counter", ("reason",),
        help="requests shed with 429 by reason (queue_full|draining|fault)",
    ),
    "repro.serve.timeouts": _decl(
        "counter", ("where",),
        help="request deadline expiries (504) by where they were caught (queue|batch|result)",
    ),
    "repro.serve.queue_depth": _decl(
        "gauge", (), deterministic=False,
        help="admission-queue depth high-water mark",
    ),
    "repro.serve.batches": _decl(
        "counter", ("outcome",),
        help="micro-batches dispatched by outcome (ok|degraded|fault)",
    ),
    "repro.serve.batched_docs": _decl(
        "counter", (),
        help="documents dispatched to the pipeline inside micro-batches",
    ),
    "repro.serve.request_latency": _decl(
        "histogram", (), deterministic=False,
        help="admission-to-resolution request latency histogram (log2 buckets)",
    ),
    "repro.serve.breaker_transitions": _decl(
        "counter", ("stage", "state"),
        help="circuit-breaker state transitions per pipeline stage (open|half_open|closed)",
    ),
    # -- resource accounting (per worker process) ------------------------
    "repro.process.rss_max_bytes": _decl(
        "gauge", ("worker",), deterministic=False,
        help="resident-set high-water mark per process (getrusage ru_maxrss)",
    ),
    "repro.process.cpu_user_seconds": _decl(
        "gauge", ("worker",), deterministic=False,
        help="cumulative user CPU seconds per process (high-water gauge)",
    ),
    "repro.process.cpu_sys_seconds": _decl(
        "gauge", ("worker",), deterministic=False,
        help="cumulative system CPU seconds per process (high-water gauge)",
    ),
    "repro.process.tracemalloc_peak_bytes": _decl(
        "gauge", ("worker",), deterministic=False,
        help="tracemalloc peak traced allocation per process (when tracing)",
    ),
}

#: Labels :meth:`MetricRegistry.normalized_dump` folds away before the
#: serial-vs-parallel comparison (worker identity is scheduling, not
#: pipeline behaviour).
NORMALIZED_DROPPED_LABELS = frozenset({"worker"})


def declared(name: str) -> MetricDecl:
    """The declaration for ``name``; raises ``KeyError`` when the name
    was never registered (the runtime half of OBS002)."""
    try:
        return METRIC_NAMES[name]
    except KeyError:
        raise KeyError(
            f"metric {name!r} is not declared in repro.obs.names.METRIC_NAMES; "
            "register it there first (lint rule OBS002)"
        ) from None
