"""Run-health engine: bench history + declarative SLO rules.

``repro bench`` appends one JSON line per run to
``benchmarks/results/BENCH_history.jsonl`` — dataset, worker count, a
per-stage latency digest (p50/p95/total) and run totals (throughput,
failure and quarantine rates).  ``repro report`` then judges the most
recent run against that history with a small set of **declarative SLO
rules**:

* ``p95_ceiling`` — each top-level stage's p95 latency must stay
  within ``threshold ×`` the median of its historical p95s;
* ``throughput_floor`` — docs/second must stay above ``threshold ×``
  the historical median;
* ``failure_rate_cap`` / ``quarantine_rate_cap`` — absolute caps, no
  baseline needed.

The verdict is a table plus a boolean; ``repro report`` exits non-zero
when any rule fails, which is what lets ``make bench-smoke`` /
``metrics-smoke`` gate a PR on an injected p95 regression.  Rules are
evaluated against history entries for the *same dataset* only; a rule
with fewer than :data:`MIN_BASELINE_RUNS` baseline points reports
``no baseline`` and passes (a fresh repo must not fail its first run).

Unlike ``BENCH_pipeline.json`` snapshots, history lines keep real
wall-clock numbers — the file is an append-only log, not a byte-stable
artefact, so committed entries simply record the machines they ran on.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.instrument import PipelineMetrics

#: Schema tag carried by every history line.
HISTORY_SCHEMA = "repro.bench.history/1"

#: Default committed location of the history log.
HISTORY_PATH = "benchmarks/results/BENCH_history.jsonl"

#: Baseline points a ratio rule needs before it can fail a run.
MIN_BASELINE_RUNS = 2

#: Below this many seconds a stage p95 is timer noise, not signal —
#: ratio rules pass outright rather than flag a 3x blip on 0.2ms.
NOISE_FLOOR_SECONDS = 0.002


# ----------------------------------------------------------------------
# History records
# ----------------------------------------------------------------------
def history_record(
    metrics: PipelineMetrics,
    *,
    dataset: str,
    n_docs: int,
    workers: int,
    seed: int,
    failures: int = 0,
    quarantines: int = 0,
    wall_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """One history line for a finished run.

    ``wall_seconds`` defaults to the ``corpus`` stage's wall time (the
    runner wraps every run in it), falling back to summed top-level
    stage time; pass the measured wall clock to override.
    """
    stages: Dict[str, Dict[str, float]] = {}
    top_seconds = 0.0
    for name in sorted(metrics.stages):
        stats = metrics.stages[name]
        p50 = stats.quantile_seconds(0.50)
        p95 = stats.quantile_seconds(0.95)
        stages[name] = {
            "calls": stats.calls,
            "seconds": round(stats.seconds, 6),
            "p50_seconds": round(p50, 6) if p50 is not None else None,
            "p95_seconds": round(p95, 6) if p95 is not None else None,
        }
        if "." not in name:
            top_seconds += stats.seconds
    if wall_seconds is None:
        corpus_stats = metrics.stages.get("corpus")
        wall_seconds = corpus_stats.seconds if corpus_stats is not None else top_seconds
    docs = max(n_docs, 0)
    return {
        "schema": HISTORY_SCHEMA,
        "meta": {
            "dataset": dataset,
            "n_docs": n_docs,
            "workers": workers,
            "seed": seed,
        },
        "stages": stages,
        "totals": {
            "wall_seconds": round(wall_seconds, 6),
            "docs": docs,
            "docs_per_second": round(docs / wall_seconds, 6) if wall_seconds > 0 else 0.0,
            "failures": failures,
            "failure_rate": round(failures / docs, 6) if docs else 0.0,
            "quarantines": quarantines,
            "quarantine_rate": round(quarantines / docs, 6) if docs else 0.0,
        },
    }


def append_history(
    path: Union[str, pathlib.Path], record: Dict[str, object]
) -> pathlib.Path:
    """Append one record as a JSON line (creates the file and parents)."""
    if record.get("schema") != HISTORY_SCHEMA:
        raise ValueError(f"refusing to append foreign record schema {record.get('schema')!r}")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: Union[str, pathlib.Path]) -> List[Dict[str, object]]:
    """All history records, in file order; raises ``ValueError`` on a
    foreign schema line (the log is all ours or corrupt)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    records: List[Dict[str, object]] = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not raw.strip():
            continue
        record = json.loads(raw)
        if record.get("schema") != HISTORY_SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: unknown history schema {record.get('schema')!r}"
            )
        records.append(record)
    return records


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# SLO rules
# ----------------------------------------------------------------------
#: Rule kinds :func:`evaluate` understands, plus the serve-level kinds
#: :func:`evaluate_serve` applies to a ``BENCH_serve.json`` record.
RULE_KINDS = (
    "p95_ceiling",
    "throughput_floor",
    "failure_rate_cap",
    "quarantine_rate_cap",
    "serve_p95_ceiling",
    "serve_shed_rate_cap",
    "serve_unaccounted_cap",
)


@dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective.

    ``threshold`` is a *ratio vs the history median* for the two
    baseline-relative kinds and an *absolute rate* for the caps.
    """

    rule_id: str
    kind: str
    threshold: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} (expected one of {RULE_KINDS})")


#: The shipped rule set ``repro report`` applies by default.
DEFAULT_SLOS: Tuple[SLORule, ...] = (
    SLORule("SLO-P95", "p95_ceiling", 3.0,
            "per-stage p95 latency <= 3x the history median"),
    SLORule("SLO-THROUGHPUT", "throughput_floor", 0.33,
            "docs/second >= 1/3 of the history median"),
    SLORule("SLO-FAILRATE", "failure_rate_cap", 0.25,
            "per-run document failure rate <= 25%"),
    SLORule("SLO-QUARANTINE", "quarantine_rate_cap", 0.25,
            "per-run quarantine rate <= 25%"),
)

#: Serve-level objectives ``repro report --serve`` applies to the
#: ``repro.bench.serve/1`` snapshot.  These judge the *robustness
#: envelope*, not machine speed, so they are absolute (no history
#: baseline): latencies in the snapshot are virtual-clock seconds and
#: the accounting is deterministic.
SERVE_SLOS: Tuple[SLORule, ...] = (
    SLORule("SLO-SERVE-P95", "serve_p95_ceiling", 1.5,
            "request p95 latency <= 1.5x the request deadline"),
    SLORule("SLO-SERVE-SHED", "serve_shed_rate_cap", 0.75,
            "shed (429) fraction of submitted requests <= 75%"),
    SLORule("SLO-SERVE-ACCT", "serve_unaccounted_cap", 0.0,
            "every submitted request resolved as 200/429/504 (0 unaccounted)"),
)


@dataclass(frozen=True)
class VerdictRow:
    """One evaluated (rule, subject) pair in the verdict table."""

    rule_id: str
    subject: str
    ok: bool
    current: Optional[float]
    baseline: Optional[float]
    limit: Optional[float]
    note: str = ""


@dataclass(frozen=True)
class HealthVerdict:
    """The full verdict: every row plus the aggregate pass/fail."""

    rows: Tuple[VerdictRow, ...]
    ok: bool
    baseline_runs: int


def _stage_p95(record: Dict[str, object], stage: str) -> Optional[float]:
    stages = record.get("stages", {})
    entry = stages.get(stage) if isinstance(stages, dict) else None
    if not isinstance(entry, dict):
        return None
    value = entry.get("p95_seconds")
    return float(value) if value is not None else None


def _total(record: Dict[str, object], key: str) -> float:
    totals = record.get("totals", {})
    value = totals.get(key, 0.0) if isinstance(totals, dict) else 0.0
    return float(value or 0.0)


def evaluate(
    current: Dict[str, object],
    history: Sequence[Dict[str, object]],
    rules: Sequence[SLORule] = DEFAULT_SLOS,
) -> HealthVerdict:
    """Judge ``current`` against ``history`` (prior runs only — the
    caller must not include ``current`` in ``history``).

    Baselines come from history entries for the same dataset; ratio
    rules with fewer than :data:`MIN_BASELINE_RUNS` baseline points
    pass with a ``no baseline`` note.
    """
    dataset = current.get("meta", {}).get("dataset")  # type: ignore[union-attr]
    baseline = [
        r for r in history
        if isinstance(r.get("meta"), dict) and r["meta"].get("dataset") == dataset  # type: ignore[index]
    ]
    rows: List[VerdictRow] = []
    for rule in rules:
        if rule.kind == "p95_ceiling":
            rows.extend(_eval_p95(rule, current, baseline))
        elif rule.kind == "throughput_floor":
            rows.append(_eval_throughput(rule, current, baseline))
        elif rule.kind == "failure_rate_cap":
            rows.append(_eval_cap(rule, current, "failure_rate"))
        elif rule.kind == "quarantine_rate_cap":
            rows.append(_eval_cap(rule, current, "quarantine_rate"))
    return HealthVerdict(
        rows=tuple(rows),
        ok=all(row.ok for row in rows),
        baseline_runs=len(baseline),
    )


def _eval_p95(
    rule: SLORule, current: Dict[str, object], baseline: List[Dict[str, object]]
) -> List[VerdictRow]:
    rows: List[VerdictRow] = []
    stages = current.get("stages", {})
    top_level = sorted(n for n in stages if "." not in n) if isinstance(stages, dict) else []
    for stage in top_level:
        now = _stage_p95(current, stage)
        if now is None:
            continue
        points = [p for p in (_stage_p95(r, stage) for r in baseline) if p is not None]
        if len(points) < MIN_BASELINE_RUNS:
            rows.append(VerdictRow(rule.rule_id, stage, True, now, None, None,
                                   note="no baseline"))
            continue
        med = _median(points)
        limit = max(med * rule.threshold, NOISE_FLOOR_SECONDS)
        ok = now <= limit
        note = "" if ok else f"p95 {now * 1000:.2f}ms > {limit * 1000:.2f}ms"
        rows.append(VerdictRow(rule.rule_id, stage, ok, now, med, limit, note))
    if not rows:
        rows.append(VerdictRow(rule.rule_id, "(no stages)", True, None, None, None,
                               note="no p95 data"))
    return rows


def _eval_throughput(
    rule: SLORule, current: Dict[str, object], baseline: List[Dict[str, object]]
) -> VerdictRow:
    now = _total(current, "docs_per_second")
    points = [
        _total(r, "docs_per_second") for r in baseline
        if _total(r, "docs_per_second") > 0
    ]
    if len(points) < MIN_BASELINE_RUNS:
        return VerdictRow(rule.rule_id, "run", True, now, None, None, note="no baseline")
    med = _median(points)
    floor = med * rule.threshold
    ok = now >= floor
    note = "" if ok else f"{now:.2f} docs/s < floor {floor:.2f}"
    return VerdictRow(rule.rule_id, "run", ok, now, med, floor, note)


def _eval_cap(rule: SLORule, current: Dict[str, object], key: str) -> VerdictRow:
    now = _total(current, key)
    ok = now <= rule.threshold
    note = "" if ok else f"{key} {now:.1%} > cap {rule.threshold:.1%}"
    return VerdictRow(rule.rule_id, "run", ok, now, None, rule.threshold, note)


def evaluate_serve(
    bench: Dict[str, object],
    rules: Sequence[SLORule] = SERVE_SLOS,
) -> HealthVerdict:
    """Judge a ``repro.bench.serve/1`` record (``BENCH_serve.json``)
    against the serve objectives.

    Serve rules are absolute — the snapshot's latencies are virtual
    seconds and the accounting is deterministic, so there is no history
    baseline and ``baseline_runs`` is reported as 0.  Non-serve rule
    kinds in ``rules`` are rejected.
    """
    meta = bench.get("meta", {})
    latency = bench.get("latency", {})
    accounting = bench.get("accounting", {})
    deadline = float(meta.get("deadline_s", 0.0)) if isinstance(meta, dict) else 0.0
    rows: List[VerdictRow] = []
    for rule in rules:
        if rule.kind == "serve_p95_ceiling":
            p95 = latency.get("p95_s") if isinstance(latency, dict) else None
            if p95 is None:
                rows.append(VerdictRow(rule.rule_id, "latency", True, None, None, None,
                                       note="no completed requests"))
                continue
            limit = deadline * rule.threshold
            ok = deadline > 0 and float(p95) <= limit
            note = "" if ok else (
                f"p95 {float(p95):.3f}s > {limit:.3f}s" if deadline > 0
                else "no deadline in bench meta"
            )
            rows.append(VerdictRow(rule.rule_id, "latency", ok, float(p95),
                                   deadline, limit, note))
        elif rule.kind == "serve_shed_rate_cap":
            rate = float(bench.get("shed_rate", 0.0) or 0.0)
            ok = rate <= rule.threshold
            note = "" if ok else f"shed rate {rate:.1%} > cap {rule.threshold:.1%}"
            rows.append(VerdictRow(rule.rule_id, "run", ok, rate, None,
                                   rule.threshold, note))
        elif rule.kind == "serve_unaccounted_cap":
            lost = (float(accounting.get("unaccounted", 0) or 0)
                    if isinstance(accounting, dict) else 0.0)
            ok = abs(lost) <= rule.threshold
            note = "" if ok else f"{lost:g} request(s) neither 200, 429 nor 504"
            rows.append(VerdictRow(rule.rule_id, "accounting", ok, lost, None,
                                   rule.threshold, note))
        else:
            raise ValueError(
                f"rule {rule.rule_id} ({rule.kind}) is not a serve rule"
            )
    return HealthVerdict(rows=tuple(rows), ok=all(r.ok for r in rows), baseline_runs=0)


def format_verdict(verdict: HealthVerdict) -> str:
    """The verdict as a fixed-width table ending in PASS/FAIL."""
    lines = [
        f"{'rule':16s} {'subject':14s} {'current':>12s} {'baseline':>12s} "
        f"{'limit':>12s}  verdict",
        "-" * 78,
    ]

    def cell(value: Optional[float]) -> str:
        return f"{value:12.4f}" if value is not None else f"{'-':>12s}"

    for row in verdict.rows:
        status = "ok" if row.ok else "FAIL"
        tail = f"  {status}" + (f" ({row.note})" if row.note else "")
        lines.append(
            f"{row.rule_id:16s} {row.subject:14s} {cell(row.current)} "
            f"{cell(row.baseline)} {cell(row.limit)}{tail}"
        )
    lines.append("-" * 78)
    lines.append(
        f"run health: {'PASS' if verdict.ok else 'FAIL'} "
        f"({len([r for r in verdict.rows if r.ok])}/{len(verdict.rows)} rules ok, "
        f"{verdict.baseline_runs} baseline run(s))"
    )
    return "\n".join(lines)
