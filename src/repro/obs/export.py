"""Metric exporters: Prometheus text exposition and JSONL.

The exposition follows the Prometheus text format 0.0.4 — ``# HELP`` /
``# TYPE`` headers, one ``name{label="value"} value`` sample per line,
histograms as cumulative ``_bucket{le="…"}`` series plus ``_sum`` and
``_count``.  Dotted repro metric names (``repro.docs.processed``) are
sanitised to the Prometheus charset (``repro_docs_processed``); the
mapping is mechanical (``.`` → ``_``) and total, so the parser-side
round-trip test compares against :func:`exposition_samples`, the same
flattening the writer uses.

:func:`parse_prometheus` is a deliberately small parser for exactly
what :func:`to_prometheus` emits — it exists so the exposition is
validated by a round trip in the test suite and in ``make
metrics-smoke``, not so the repo can scrape other people's endpoints.

Output is byte-stable for a given registry (names, label sets and
buckets all sort), matching the repo's committed-artefact convention.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, List, Tuple, Union

from repro.instrument import bucket_upper_seconds
from repro.obs.names import METRIC_NAMES
from repro.obs.registry import SCHEMA, HistogramValue, MetricRegistry

#: JSONL dump schema tag (one record per series).
JSONL_SCHEMA = "repro.obs.metrics/1"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
#: ``name{labels} value`` — the only sample shape the writer emits.
_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prometheus_name(name: str) -> str:
    """Sanitise a dotted repro metric name to the Prometheus charset."""
    return _NAME_OK.sub("_", name)


def _fmt(value: float) -> str:
    """Canonical number rendering: integers without a fraction, floats
    via ``repr`` (shortest round-trippable form)."""
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Label-value escaping per exposition format 0.0.4: backslash,
    double quote and newline — in that order, so the backslashes the
    other two introduce are not themselves re-escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    """Inverse of :func:`_escape_label_value`: a single left-to-right
    scan, so ``\\\\n`` stays a literal backslash + ``n`` instead of
    turning into a newline (which chained ``str.replace`` would do)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def exposition_samples(registry: MetricRegistry) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
    """The flat ``(sanitised name, sorted labels, value)`` samples the
    exposition carries — histograms expanded into cumulative buckets,
    ``_sum`` and ``_count``.  This is the round-trip comparison surface."""
    samples: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
    for name in registry.names():
        kind = registry.kind_of(name) or "counter"
        flat = prometheus_name(name)
        for labels, value in registry.samples(name):
            key = tuple(sorted(labels.items()))
            if kind != "histogram":
                samples.append((flat, key, float(value)))
                continue
            assert isinstance(value, HistogramValue)
            cumulative = 0
            for bucket, count in enumerate(value.buckets):
                if not count:
                    continue
                cumulative += count
                le = ("+Inf" if bucket == len(value.buckets) - 1
                      else _fmt_le(bucket_upper_seconds(bucket)))
                samples.append(
                    (flat + "_bucket", tuple(sorted(key + (("le", le),))), float(cumulative))
                )
            samples.append(
                (flat + "_bucket", tuple(sorted(key + (("le", "+Inf"),))), float(value.count))
            )
            samples.append((flat + "_sum", key, float(value.sum)))
            samples.append((flat + "_count", key, float(value.count)))
    # Deduplicate the +Inf bucket when the last bucket emitted it already.
    seen = set()
    unique = []
    for sample in samples:
        ident = (sample[0], sample[1])
        if ident in seen:
            continue
        seen.add(ident)
        unique.append(sample)
    return sorted(unique)


def _fmt_le(upper: float) -> str:
    return repr(float(upper))


def to_prometheus(registry: MetricRegistry) -> str:
    """The registry as Prometheus text exposition (byte-stable)."""
    lines: List[str] = []
    by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], float]]] = {}
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for name in registry.names():
        flat = prometheus_name(name)
        kinds[flat] = registry.kind_of(name) or "counter"
        decl = METRIC_NAMES.get(name)
        if decl is not None and decl.help:
            helps[flat] = decl.help
    for flat_name, labels, value in exposition_samples(registry):
        base = flat_name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in kinds:
                base = base[: -len(suffix)]
                break
        by_name.setdefault(base, []).append((flat_name, labels, value))  # type: ignore[arg-type]
    for base in sorted(by_name):
        if base in helps:
            lines.append(f"# HELP {base} {helps[base]}")
        lines.append(f"# TYPE {base} {kinds.get(base, 'untyped')}")
        for flat_name, labels, value in sorted(by_name[base]):  # type: ignore[misc]
            lines.append(f"{flat_name}{_labels_text(dict(labels))} {_fmt(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: Union[str, pathlib.Path], registry: MetricRegistry) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(registry), encoding="utf-8")
    return path


def parse_prometheus(text: str) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
    """Parse an exposition produced by :func:`to_prometheus` back into
    its flat samples (sorted) — the inverse used by the round-trip
    test.  Raises ``ValueError`` on a line it cannot understand."""
    samples: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, labels_text, value_text = match.groups()
        labels: List[Tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for found in _LABEL.finditer(labels_text):
                labels.append((found.group(1), _unescape_label_value(found.group(2))))
                consumed = found.end()
            rest = labels_text[consumed:].strip(", ")
            if rest:
                raise ValueError(f"unparseable label text: {labels_text!r}")
        samples.append((name, tuple(sorted(labels)), float(value_text)))
    return sorted(samples)


def validate_prometheus(path: Union[str, pathlib.Path]) -> int:
    """Parse an exposition file; returns the sample count (``make
    metrics-smoke`` calls this)."""
    return len(parse_prometheus(pathlib.Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_metric_lines(registry: MetricRegistry) -> List[str]:
    """One JSON record per series: ``{"schema": …, "name": …, "kind":
    …, "labels": {…}, "value"|"hist": …}`` — sorted, byte-stable."""
    lines: List[str] = []
    for name in registry.names():
        kind = registry.kind_of(name) or "counter"
        for labels, value in registry.samples(name):
            record: Dict[str, Any] = {
                "schema": JSONL_SCHEMA,
                "name": name,
                "kind": kind,
                "labels": labels,
            }
            if isinstance(value, HistogramValue):
                record["hist"] = value.to_dict()
            else:
                record["value"] = value
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_metrics_jsonl(path: Union[str, pathlib.Path], registry: MetricRegistry) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = jsonl_metric_lines(registry)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def read_metrics_jsonl(path: Union[str, pathlib.Path]) -> MetricRegistry:
    """Rebuild a registry from a JSONL dump (foreign-schema records are
    rejected, not skipped — a dump is all ours or not ours)."""
    registry = MetricRegistry(strict=False)
    for raw in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        if not raw.strip():
            continue
        record = json.loads(raw)
        if record.get("schema") != JSONL_SCHEMA:
            raise ValueError(f"unknown metrics record schema {record.get('schema')!r}")
        name = str(record["name"])
        kind = str(record.get("kind", "counter"))
        registry._declare(name, kind)
        from repro.obs.registry import label_key

        key = label_key(dict(record.get("labels", {})))
        series = registry._series.setdefault(name, {})
        if kind == "histogram":
            series[key] = HistogramValue.from_dict(dict(record.get("hist", {})))
        else:
            series[key] = float(record.get("value", 0.0))
    return registry
