"""The labeled metric registry: counters, gauges, log2 histograms.

:class:`MetricRegistry` generalises the per-stage accumulator
(:class:`repro.instrument.PipelineMetrics`) into a process-wide store
of **named, labeled** series::

    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("repro.docs.processed", corpus="D2", status="ok").inc()
    reg.gauge("repro.process.rss_max_bytes", worker="main").set_max(rss)
    reg.histogram("repro.stage.latency", stage="segment").observe(0.021)

Names are a closed vocabulary (:mod:`repro.obs.names`): a strict
registry rejects undeclared names at runtime and lint rule ``OBS002``
rejects them statically.  Labels are free-form string pairs; series
are keyed by the sorted label set, so emission order never matters.

**Merge semantics** follow the declaration kind — counters add, gauges
take the maximum (the high-water convention that makes RSS/CPU
readings order-independent), histograms add bucket-wise (widening to
the longer bucket array, never raising).  Merge is associative and
commutative, which is what lets the parallel
:class:`~repro.perf.runner.CorpusRunner` fold per-worker registries
back into one in any completion order; the hypothesis property test in
``tests/test_obs.py`` locks this in.

**Cross-process travel** uses the same plain-dict wire format as
:class:`PipelineMetrics` and the tracer's spans: workers
:meth:`drain` their process registry per chunk, the dump rides the
existing chunk-return path, and the parent merges.  After
:meth:`normalized_dump` — deterministic metrics only, ``worker``
labels folded away — a serial and a ``--workers N`` run of the same
corpus are **byte-identical**.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.instrument import HIST_BUCKETS, hist_bucket
from repro.obs.names import METRIC_NAMES, NORMALIZED_DROPPED_LABELS, declared

#: Bumped when the serialised registry layout changes incompatibly.
SCHEMA = "repro.obs.registry/1"

#: Canonical series key: labels as a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class HistogramValue:
    """One histogram series: log2 buckets + count/sum/max.

    Buckets reuse the :data:`repro.instrument.HIST_BUCKETS` shape
    (bucket 0 ≤ 1 µs, then doubling, last bucket open-ended) so stage
    histograms ingest losslessly.  ``merge_from`` widens to the longer
    bucket array instead of raising on mismatched widths.
    """

    __slots__ = ("buckets", "count", "sum", "max")

    def __init__(self, buckets: Optional[List[int]] = None, count: int = 0,
                 sum_: float = 0.0, max_: float = 0.0):
        self.buckets: List[int] = list(buckets) if buckets is not None else [0] * HIST_BUCKETS
        self.count = count
        self.sum = sum_
        self.max = max_

    def observe(self, value: float) -> None:
        bucket = hist_bucket(value)
        if bucket >= len(self.buckets):
            self.buckets.extend([0] * (bucket + 1 - len(self.buckets)))
        self.buckets[bucket] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def merge_from(self, other: "HistogramValue") -> None:
        if len(other.buckets) > len(self.buckets):
            self.buckets.extend([0] * (len(other.buckets) - len(self.buckets)))
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def copy(self) -> "HistogramValue":
        return HistogramValue(self.buckets, self.count, self.sum, self.max)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"count": self.count, "sum": self.sum}
        sparse = {str(i): n for i, n in enumerate(self.buckets) if n}
        if sparse:
            out["buckets"] = sparse
        if self.max:
            out["max"] = self.max
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HistogramValue":
        hist = HistogramValue(
            count=int(data.get("count", 0)),
            sum_=float(data.get("sum", 0.0)),
            max_=float(data.get("max", 0.0)),
        )
        for key, n in dict(data.get("buckets", {})).items():
            bucket = int(key)
            if bucket >= len(hist.buckets):
                hist.buckets.extend([0] * (bucket + 1 - len(hist.buckets)))
            hist.buckets[bucket] = int(n)
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramValue):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistogramValue(count={self.count}, sum={self.sum:.6f})"


class _Handle:
    """Base of the bound series handles ``counter()``/``gauge()``/
    ``histogram()`` return: (registry, name, label key)."""

    __slots__ = ("_registry", "_name", "_key")

    def __init__(self, registry: "MetricRegistry", name: str, key: LabelKey):
        self._registry = registry
        self._name = name
        self._key = key


class Counter(_Handle):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        self._registry._add(self._name, self._key, amount)

    @property
    def value(self) -> float:
        return float(self._registry._get_scalar(self._name, self._key))


class Gauge(_Handle):
    __slots__ = ()

    def set(self, value: float) -> None:
        self._registry._set(self._name, self._key, value)

    def set_max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``
        (the merge rule, applied locally)."""
        self._registry._set_max(self._name, self._key, value)

    @property
    def value(self) -> float:
        return float(self._registry._get_scalar(self._name, self._key))


class Histogram(_Handle):
    __slots__ = ()

    def observe(self, value: float) -> None:
        self._registry._observe(self._name, self._key, value)

    @property
    def value(self) -> HistogramValue:
        return self._registry._get_histogram(self._name, self._key)


class MetricRegistry:
    """Process-wide store of labeled metric series.

    ``strict=True`` (the default) accepts only names declared in
    :data:`repro.obs.names.METRIC_NAMES` and enforces the declared
    kind; tests exploring the serialisation layer may pass
    ``strict=False`` and invent names, whose kind is then inferred from
    the first emission.  Thread-safe: one lock guards the series maps
    (emission is two dict lookups plus an add — contention is not a
    concern at pipeline rates).
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._lock = threading.Lock()
        #: name -> kind ("counter" | "gauge" | "histogram")
        self._kinds: Dict[str, str] = {}
        #: name -> label key -> float | HistogramValue
        self._series: Dict[str, Dict[LabelKey, Any]] = {}

    # ------------------------------------------------------------------
    # Emission handles
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        self._declare(name, "counter")
        return Counter(self, name, label_key(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        self._declare(name, "gauge")
        return Gauge(self, name, label_key(labels))

    def histogram(self, name: str, **labels: Any) -> Histogram:
        self._declare(name, "histogram")
        return Histogram(self, name, label_key(labels))

    def _declare(self, name: str, kind: str) -> None:
        if self.strict:
            decl = declared(name)
            if decl.kind != kind:
                raise TypeError(
                    f"metric {name!r} is declared as a {decl.kind}, not a {kind}"
                )
        with self._lock:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
            elif known != kind:
                raise TypeError(f"metric {name!r} already used as a {known}, not a {kind}")

    # ------------------------------------------------------------------
    # Storage primitives (called by the handles)
    # ------------------------------------------------------------------
    def _add(self, name: str, key: LabelKey, amount: float) -> None:
        with self._lock:
            series = self._series.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def _set(self, name: str, key: LabelKey, value: float) -> None:
        with self._lock:
            self._series.setdefault(name, {})[key] = float(value)

    def _set_max(self, name: str, key: LabelKey, value: float) -> None:
        with self._lock:
            series = self._series.setdefault(name, {})
            if float(value) > series.get(key, float("-inf")):
                series[key] = float(value)

    def _observe(self, name: str, key: LabelKey, value: float) -> None:
        with self._lock:
            series = self._series.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = HistogramValue()
            hist.observe(value)

    def _get_scalar(self, name: str, key: LabelKey) -> float:
        with self._lock:
            return float(self._series.get(name, {}).get(key, 0.0))

    def _get_histogram(self, name: str, key: LabelKey) -> HistogramValue:
        with self._lock:
            hist = self._series.get(name, {}).get(key)
            return hist.copy() if hist is not None else HistogramValue()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def kind_of(self, name: str) -> Optional[str]:
        with self._lock:
            if name in self._kinds:
                return self._kinds[name]
        decl = METRIC_NAMES.get(name)
        return decl.kind if decl is not None else None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def samples(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, value)`` pairs of one metric, sorted by label key;
        histogram values are copies."""
        with self._lock:
            series = dict(self._series.get(name, {}))
        out = []
        for key in sorted(series):
            value = series[key]
            out.append((dict(key), value.copy() if isinstance(value, HistogramValue) else value))
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._series.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold ``other`` into this registry (in place) under the
        per-kind merge rules.  Associative and commutative."""
        with other._lock:
            kinds = dict(other._kinds)
            series = {
                name: dict(per_name) for name, per_name in other._series.items()
            }
        for name, per_name in series.items():
            kind = kinds.get(name, "counter")
            self._declare(name, kind)
            for key, value in per_name.items():
                if kind == "gauge":
                    self._set_max(name, key, value)
                elif kind == "histogram":
                    with self._lock:
                        mine = self._series.setdefault(name, {})
                        hist = mine.get(key)
                        if hist is None:
                            mine[key] = value.copy()
                        else:
                            hist.merge_from(value)
                else:
                    self._add(name, key, value)
        return self

    def drain(self) -> "MetricRegistry":
        """Snapshot the current series into a new registry and reset
        this one — the per-chunk handoff of the parallel runner."""
        snapshot = MetricRegistry(strict=self.strict)
        with self._lock:
            snapshot._kinds = dict(self._kinds)
            snapshot._series = self._series
            self._series = {}
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._series = {}

    # ------------------------------------------------------------------
    # Serialisation (lossless round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            names = sorted(self._series)
            metrics: Dict[str, Any] = {}
            for name in names:
                kind = self._kinds.get(name, "counter")
                rows = []
                for key in sorted(self._series[name]):
                    value = self._series[name][key]
                    row: Dict[str, Any] = {"labels": dict(key)}
                    if isinstance(value, HistogramValue):
                        row["hist"] = value.to_dict()
                    else:
                        row["value"] = value
                    rows.append(row)
                metrics[name] = {"kind": kind, "series": rows}
        return {"schema": SCHEMA, "metrics": metrics}

    @staticmethod
    def from_dict(data: Dict[str, Any], strict: bool = True) -> "MetricRegistry":
        if data.get("schema") != SCHEMA:
            raise ValueError(f"unknown registry schema {data.get('schema')!r}")
        registry = MetricRegistry(strict=strict)
        for name, payload in data.get("metrics", {}).items():
            kind = str(payload.get("kind", "counter"))
            registry._declare(name, kind)
            series = registry._series.setdefault(name, {})
            for row in payload.get("series", []):
                key = label_key(dict(row.get("labels", {})))
                if kind == "histogram":
                    series[key] = HistogramValue.from_dict(dict(row.get("hist", {})))
                else:
                    series[key] = float(row.get("value", 0.0))
        return registry

    # ------------------------------------------------------------------
    # Normalisation (the determinism surface)
    # ------------------------------------------------------------------
    def normalized(self) -> "MetricRegistry":
        """A new registry holding only the **deterministic** declared
        metrics, with scheduling labels (``worker``) folded away under
        the per-kind merge rule — the serial-vs-parallel parity view."""
        out = MetricRegistry(strict=True)
        with self._lock:
            names = sorted(self._series)
            series = {name: dict(self._series[name]) for name in names}
        for name in names:
            decl = METRIC_NAMES.get(name)
            if decl is None or not decl.deterministic:
                continue
            out._declare(name, decl.kind)
            for key, value in series[name].items():
                folded = tuple(
                    (k, v) for k, v in key if k not in NORMALIZED_DROPPED_LABELS
                )
                if decl.kind == "gauge":
                    out._set_max(name, folded, value)
                elif decl.kind == "histogram":
                    mine = out._series.setdefault(name, {})
                    hist = mine.get(folded)
                    if hist is None:
                        mine[folded] = value.copy()
                    else:
                        hist.merge_from(value)
                else:
                    out._add(name, folded, value)
        return out

    def normalized_dump(self) -> str:
        """Canonical JSON of :meth:`normalized` — byte-identical
        between a serial and a parallel run of the same corpus."""
        return json.dumps(self.normalized().to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Ingesting the per-stage accumulator
# ----------------------------------------------------------------------
def ingest_pipeline_metrics(metrics, registry: "MetricRegistry") -> "MetricRegistry":
    """Fold a :class:`repro.instrument.PipelineMetrics` into metric
    series, one label set per stage.

    Call counts and item counts are deterministic (they mirror the
    pipeline's decisions); wall seconds, CPU seconds and the latency
    histogram are environment metrics.  Histogram ``sum`` carries the
    stage's total seconds (aggregate records included), so
    ``_sum/_count`` in the exposition stays meaningful even for stages
    that only ever recorded aggregates.
    """
    for name in metrics.ordered_names():
        stats = metrics.stages[name]
        if stats.calls:
            registry.counter("repro.stage.calls", stage=name).inc(stats.calls)
        if stats.items:
            registry.counter("repro.stage.items", stage=name).inc(stats.items)
        if stats.seconds:
            registry.counter("repro.stage.seconds", stage=name).inc(stats.seconds)
        cpu = getattr(stats, "cpu_seconds", 0.0)
        if cpu:
            registry.counter("repro.stage.cpu_seconds", stage=name).inc(cpu)
        sampled = sum(stats.hist)
        if sampled:
            hist = HistogramValue(
                buckets=stats.hist, count=sampled,
                sum_=stats.seconds, max_=stats.max_seconds,
            )
            handle = registry.histogram("repro.stage.latency", stage=name)
            with registry._lock:
                series = registry._series.setdefault("repro.stage.latency", {})
                mine = series.get(handle._key)
                if mine is None:
                    series[handle._key] = hist
                else:
                    mine.merge_from(hist)
    return registry


# ----------------------------------------------------------------------
# The process-default registry
# ----------------------------------------------------------------------
_DEFAULT = MetricRegistry()  # conc: ambient - per-process accumulator; workers drain theirs per chunk


def get_registry() -> MetricRegistry:
    """The process-wide default registry.

    Worker processes each see their own copy (they are separate
    processes); the parallel runner drains it per chunk and merges the
    dumps parent-side, so the parent's run registry ends up covering
    the whole corpus either way.
    """
    return _DEFAULT
