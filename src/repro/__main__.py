"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``extract``   run the VS2 pipeline over a synthetic corpus and print
              the extracted key-value pairs per document
              (``--workers N`` parallelises, ``--profile`` prints the
              per-stage timing table, ``--trace out.json`` writes a
              Chrome/Perfetto trace, ``--faults``/``--supervise``/
              ``--checkpoint`` enable fault injection and supervised
              execution; see docs/PROFILING.md, docs/TRACING.md and
              docs/RESILIENCE.md)
``explain``   run one document with tracing on and print the decision
              report — the cut ledger, merge ledger, Pareto table and
              final extractions (docs/TRACING.md)
``table``     regenerate one of the paper's tables (2, 5, 6, 7, 8, 9)
``figure``    regenerate Fig. 3 or Figs. 4/6
``render``    rasterise a synthetic document to a PPM image
``bench``     run a corpus through the instrumented parallel runner,
              write a ``BENCH_pipeline.json`` timing snapshot and
              append a run record to ``BENCH_history.jsonl``
``report``    judge the latest bench record against the committed
              history with the declarative SLO rules and print the
              pass/fail verdict table (non-zero exit on failure;
              docs/OBSERVABILITY.md); ``--serve BENCH_serve.json``
              judges a serve benchmark against the serve SLOs instead
``serve``     run the long-lived extraction service: warm worker
              pool, bounded admission queue with 429 shedding,
              per-request deadlines, per-stage circuit breakers and
              graceful SIGTERM drain (docs/SERVING.md)
``loadgen``   replay a seeded arrival schedule against the service —
              deterministic virtual-clock mode writes
              ``BENCH_serve.json``; ``--host/--port`` fires the same
              schedule at a live server over HTTP
``check``     run the repo's static-analysis rules (determinism,
              layering, coordinate-frame hygiene) over source trees;
              see docs/STATIC_ANALYSIS.md

``extract`` and ``bench`` also take ``--metrics OUT.prom`` /
``--metrics-jsonl OUT.jsonl`` (labeled metric-registry exports) and
``--flame OUT.txt`` (collapsed-stack flamegraph of the run's trace).
"""

from __future__ import annotations

import argparse
import json
import sys


def _build_tracer(args: argparse.Namespace):
    """The tracer for a CLI run: real when any --trace/--flame flag was
    given, the shared no-op otherwise."""
    from repro.trace import NULL_TRACER, Tracer

    wants = (
        getattr(args, "trace", None)
        or getattr(args, "trace_jsonl", None)
        or getattr(args, "flame", None)
    )
    return Tracer() if wants else NULL_TRACER


def _export_trace(tracer, args: argparse.Namespace) -> None:
    from repro.trace import write_chrome_trace, write_jsonl

    roots = tracer.drain()
    if not roots:
        return
    if getattr(args, "trace", None):
        path = write_chrome_trace(args.trace, roots)
        print(f"wrote {path} (Chrome trace_event; open in Perfetto)")
    if getattr(args, "trace_jsonl", None):
        path = write_jsonl(args.trace_jsonl, roots)
        print(f"wrote {path} (JSONL event log)")
    if getattr(args, "flame", None):
        from repro.obs import critical_path_lines, write_flamegraph

        path = write_flamegraph(args.flame, roots)
        print(f"wrote {path} (collapsed stacks; feed to flamegraph.pl/speedscope)")
        lines = critical_path_lines(roots)
        if lines:
            print("critical path:")
            for line in lines:
                print(f"  {line}")


def _export_metrics(registry, args: argparse.Namespace) -> None:
    """Write the run registry wherever --metrics/--metrics-jsonl point."""
    from repro.obs import write_metrics_jsonl, write_prometheus

    if getattr(args, "metrics", None):
        path = write_prometheus(args.metrics, registry)
        print(f"wrote {path} (Prometheus text exposition)")
    if getattr(args, "metrics_jsonl", None):
        path = write_metrics_jsonl(args.metrics_jsonl, registry)
        print(f"wrote {path} (metric-registry JSONL dump)")


def _build_fault_plan(args: argparse.Namespace):
    """``--faults`` accepts either a JSON plan file or the compact
    ``site:kind[@qualifier]`` spec grammar (docs/RESILIENCE.md)."""
    import os

    from repro.resilience import FaultPlan

    spec = getattr(args, "faults", None)
    if not spec:
        return None
    if spec.endswith(".json") and os.path.exists(spec):
        return FaultPlan.from_file(spec)
    return FaultPlan.from_spec(spec, seed=args.seed)


def _build_supervision(args: argparse.Namespace):
    """A :class:`SupervisionPolicy` when any resilience flag was given."""
    from repro.resilience import SupervisionPolicy

    wants = (
        getattr(args, "supervise", False)
        or getattr(args, "faults", None)
        or getattr(args, "checkpoint", None)
        or getattr(args, "quarantine_report", None)
    )
    if not wants:
        return None
    return SupervisionPolicy(
        timeout_s=args.timeout,
        max_attempts=args.max_attempts,
        checkpoint_path=args.checkpoint,
        quarantine_report_path=args.quarantine_report,
    )


def _naive_cuts_config(args: argparse.Namespace):
    """``VS2Config`` with the prefix-sum cut fast path disabled, or
    ``None`` when ``--naive-cuts`` was not given (keep defaults)."""
    if not getattr(args, "naive_cuts", False):
        return None
    from repro.core.config import VS2Config

    config = VS2Config()
    config.segment.fast_cuts = False
    return config


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.perf import CorpusRunner
    from repro.synth import generate_corpus

    tracer = _build_tracer(args)
    corpus = generate_corpus(args.dataset, n=args.n, seed=args.seed)
    runner = CorpusRunner(
        args.dataset,
        workers=args.workers,
        tracer=tracer,
        config=_naive_cuts_config(args),
        fault_plan=_build_fault_plan(args),
        supervision=_build_supervision(args),
    )
    outcome = runner.run(list(corpus))
    for doc, result in zip(corpus, outcome.results):
        print(f"== {doc.doc_id} ({doc.source}) ==")
        if result is None:
            continue  # failed; reported below
        for key, value in sorted(result.as_key_values().items()):
            print(f"  {key:22s} {value[:70]!r}")
        for degradation in getattr(result, "degradations", []):
            print(
                f"  ~~ degraded: {degradation.stage} -> {degradation.fallback} "
                f"({degradation.error_type})"
            )
    for failure in outcome.failures:
        print(f"!! {failure}", file=sys.stderr)
    if outcome.degrade_reason:
        print(f"!! run degraded to serial: {outcome.degrade_reason}", file=sys.stderr)
    supervision = outcome.supervision
    if supervision is not None:
        retries = sum(1 for e in supervision.events if e.kind == "retry")
        print(
            f"supervision: {retries} retries, "
            f"{len(supervision.quarantine.entries)} quarantined, "
            f"{supervision.worker_replacements} workers replaced, "
            f"{supervision.resumed_docs} resumed, "
            f"{supervision.backoff_s:.2f}s virtual backoff"
        )
    if args.profile:
        print()
        print(outcome.metrics.format_table())
    _export_metrics(outcome.registry, args)
    _export_trace(tracer, args)
    return 1 if len(outcome.failures) == len(corpus) and len(corpus) else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Trace one document end to end and print its decision report."""
    from repro.core.pipeline import VS2Pipeline
    from repro.synth import generate_corpus
    from repro.trace import Tracer, explain_report

    tracer = Tracer()
    corpus = generate_corpus(args.dataset, n=args.doc + 1, seed=args.seed)
    doc = corpus[args.doc]
    pipeline = VS2Pipeline(args.dataset, config=_naive_cuts_config(args), tracer=tracer)
    with tracer.span("doc", index=args.doc, doc_id=doc.doc_id):
        result = pipeline.run(doc)
    rows = [
        {
            "entity": e.entity_type,
            "text": e.text[:48],
            "score": round(e.score, 3),
            "bbox": f"({e.bbox.x:.0f},{e.bbox.y:.0f},{e.bbox.w:.0f},{e.bbox.h:.0f})",
        }
        for e in result.extractions
    ]
    roots = tracer.drain()
    print(
        explain_report(
            roots,
            extraction_rows=rows,
            title=f"Decision report — {doc.doc_id} ({args.dataset}, seed {args.seed})",
        )
    )
    _export_trace(_Preloaded(roots), args)
    return 0


class _Preloaded:
    """Adapter so :func:`_export_trace` can reuse already-drained roots."""

    def __init__(self, roots):
        self._roots = roots

    def drain(self):
        return self._roots


def _cmd_bench(args: argparse.Namespace) -> int:
    import pathlib

    from repro.analysis.contracts import contracts_mode
    from repro.harness import ExperimentContext, timing_table
    from repro.perf.snapshot import delta_line, load_snapshot, write_snapshot

    tracer = _build_tracer(args)
    mode = contracts_mode()
    context = ExperimentContext({args.dataset: args.n}, seed=args.seed)
    outcome = context.run_pipeline(
        args.dataset, workers=args.workers, tracer=tracer,
        config=_naive_cuts_config(args),
    )
    print(timing_table(outcome.metrics, title="Pipeline per-stage timing").format())
    # One-line drift vs the committed snapshot (read before ``--out``
    # possibly overwrites the same file).
    baseline_path = pathlib.Path("benchmarks/results/BENCH_pipeline.json")
    try:
        baseline = load_snapshot(baseline_path)
    except (OSError, ValueError):
        baseline = None
    if baseline is not None:
        print(delta_line(baseline, outcome.metrics, mode=mode))
    for failure in outcome.failures:
        print(f"!! {failure}", file=sys.stderr)
    path = write_snapshot(
        args.out,
        outcome.metrics,
        contracts=mode,
        dataset=args.dataset,
        n_docs=args.n,
        workers=args.workers,
        seed=args.seed,
        failures=len(outcome.failures),
    )
    print(f"wrote {path}")
    if args.history:
        from repro.obs import append_history, history_record

        record = history_record(
            outcome.metrics,
            dataset=args.dataset,
            n_docs=args.n,
            workers=args.workers,
            seed=args.seed,
            failures=len(outcome.failures),
        )
        history_path = append_history(args.history, record)
        print(f"appended run record to {history_path}")
    _export_metrics(outcome.registry, args)
    _export_trace(tracer, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the extraction service and serve until drained."""
    from repro.serve import ExtractionService, ServeConfig, run_server
    from repro.serve.config import BreakerConfig

    config = ServeConfig(
        dataset=args.dataset,
        workers=args.workers,
        corpus_n=args.corpus_n,
        corpus_seed=args.seed,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        max_attempts=args.max_attempts,
        breaker=BreakerConfig(),
        checkpoint_path=args.checkpoint,
    )
    service = ExtractionService(
        config,
        tracer=_build_tracer(args),
        fault_plan=_build_fault_plan(args),
    )
    code = run_server(service, host=args.host, port=args.port)
    _export_metrics(service.registry, args)
    _export_trace(service.tracer, args)
    return code


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay a seeded load schedule; virtual mode writes the bench."""
    import time

    from repro.serve import (
        ExtractionService,
        LoadSpec,
        ServeConfig,
        bench_record,
        run_http,
        run_virtual,
        write_bench,
    )

    spec = LoadSpec(
        n_requests=args.n,
        rate=args.rate,
        seed=args.seed,
        deadline_s=args.deadline,
        doc_service_s=args.doc_service_s,
        http_concurrency=args.http_concurrency,
    )
    if args.host:
        counts = run_http(args.host, args.port, spec)
        print(f"loadgen (http {args.host}:{args.port}): "
              + ", ".join(f"{k}={v}" for k, v in counts.items()))
        unknown = [k for k in counts if k not in ("200", "429", "504")]
        return 1 if unknown else 0
    config = ServeConfig(
        dataset=args.dataset,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        max_attempts=args.max_attempts,
    )
    service = ExtractionService(config, fault_plan=_build_fault_plan(args))
    started = time.monotonic()
    responses, snapshot = run_virtual(service, spec)
    duration = time.monotonic() - started
    record = bench_record(
        service, spec, responses, snapshot, duration_s=duration,
        fault_spec=args.faults or "",
    )
    write_bench(args.out, record)
    print(
        f"loadgen (virtual, {spec.overload_factor:.1f}x offered load): "
        + ", ".join(f"{k}={v}" for k, v in sorted(snapshot.items()))
    )
    print(f"wrote {args.out}")
    _export_metrics(service.registry, args)
    return 0 if snapshot.get("unaccounted") == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Judge the newest bench history record against the rest."""
    from repro.obs import evaluate, evaluate_serve, format_verdict, load_history

    if getattr(args, "serve", None):
        from repro.serve import load_bench

        try:
            bench = load_bench(args.serve)
        except (OSError, ValueError) as exc:
            print(f"!! {exc}", file=sys.stderr)
            return 2
        meta = bench.get("meta", {})
        print(
            f"serve health report — {meta.get('dataset', '?')} "
            f"n={meta.get('n_requests', '?')} "
            f"offered={meta.get('overload_factor', '?')}x capacity "
            f"({args.serve})"
        )
        verdict = evaluate_serve(bench)
        print(format_verdict(verdict))
        return 0 if verdict.ok else 1

    try:
        records = load_history(args.history)
    except ValueError as exc:
        print(f"!! {exc}", file=sys.stderr)
        return 2
    if args.dataset:
        records = [
            r for r in records
            if r.get("meta", {}).get("dataset") == args.dataset
        ]
    if not records:
        print(f"no bench history records in {args.history}; run `repro bench` first",
              file=sys.stderr)
        return 2
    current, history = records[-1], records[:-1]
    if args.window and args.window > 0:
        history = history[-args.window:]
    meta = current.get("meta", {})
    print(
        f"run health report — {meta.get('dataset', '?')} "
        f"n={meta.get('n_docs', '?')} workers={meta.get('workers', '?')} "
        f"(latest of {len(records)} record(s) in {args.history})"
    )
    verdict = evaluate(current, history)
    print(format_verdict(verdict))
    return 0 if verdict.ok else 1


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.harness import (
        ExperimentContext,
        table2,
        table5,
        table6,
        table7,
        table8,
        table9,
    )

    runners = {"2": table2, "5": table5, "6": table6, "7": table7, "8": table8, "9": table9}
    runner = runners[args.number]
    if args.number == "2":
        print(runner(seed=args.seed).format())
        return 0
    context = ExperimentContext(
        {"D1": args.n_d1, "D2": args.n_d2, "D3": args.n_d3}, seed=args.seed
    )
    print(runner(context).format())
    if args.profile:
        from repro.harness import timing_table

        print()
        print(timing_table(context.metrics, title="Context per-stage timing").format())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:  # exc: boundary - CLI surface; injected faults print as tracebacks
    from repro.harness import ExperimentContext, figure3, figure4_and_6

    context = ExperimentContext({"D2": max(args.doc_index + 1, 4)}, seed=args.seed)
    fig = figure3(context, args.doc_index) if args.number == "3" else figure4_and_6(
        context, args.doc_index
    )
    print(fig.format())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.doc.render import rasterize, save_ppm
    from repro.synth import generate_corpus

    doc = generate_corpus(args.dataset, n=args.index + 1, seed=args.seed)[args.index]
    canvas = rasterize(doc, scale=args.scale)
    save_ppm(canvas, args.output)
    print(f"wrote {args.output} ({canvas.shape[1]}x{canvas.shape[0]})")
    return 0


def _explain_rule(rule_id: str) -> int:
    """Print the catalogue entry (doc, example, fix) for one rule."""
    from repro.analysis.lint import ALL_RULES
    from repro.analysis.passes import load_catalogue
    from repro.analysis.runner import PARSE_RULE

    rule_id = rule_id.upper()
    sections = None
    if rule_id in ALL_RULES:
        rule = ALL_RULES[rule_id]
        doc = (rule.__doc__ or "").strip()
        sections = (rule.summary, doc, rule.example, rule.fix)
    else:
        for pass_obj in load_catalogue().values():
            if rule_id in pass_obj.rules:
                entry = pass_obj.rules[rule_id]
                sections = (entry.summary, entry.doc, entry.example, entry.fix)
                break
    if sections is None and rule_id == PARSE_RULE:
        sections = (
            "every linted file must parse",
            "Emitted when a file cannot be parsed as Python; the rest of "
            "the analysis skips the file, so fix the syntax error first.",
            "def broken(:",
            "fix the syntax error",
        )
    if sections is None:
        print(f"unknown rule {rule_id!r}; see repro check --list-rules", file=sys.stderr)
        return 2
    summary, doc, example, fix = sections
    print(f"{rule_id} — {summary}")
    if doc:
        print(f"\n{doc}")
    if example:
        print("\nExample:")
        for line in example.splitlines():
            print(f"  {line}")
    if fix:
        print(f"\nFix: {fix}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import (
        ALL_RULES,
        format_human,
        format_json,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.lint.engine import apply_baseline, rekey_baseline
    from repro.analysis.passes import load_catalogue
    from repro.analysis.runner import check_project

    if args.list_rules:
        for rule_id, rule in sorted(ALL_RULES.items()):
            print(f"{rule_id}  {rule.summary}")
        for pass_id, pass_obj in sorted(load_catalogue().items()):
            for rule_id, entry in sorted(pass_obj.rules.items()):
                print(f"{rule_id}  {entry.summary}  [{pass_id} pass]")
        return 0
    if args.explain:
        return _explain_rule(args.explain)

    baseline_path = Path(args.baseline)
    if args.rekey:
        renames = {}
        for spec in args.rekey:
            old, sep, new = spec.partition("=")
            if not sep or not old or not new:
                print(f"--rekey expects OLD=NEW, got {spec!r}", file=sys.stderr)
                return 2
            renames[old] = new
        changed = rekey_baseline(baseline_path, renames)
        print(f"rewrote {changed} fingerprint(s) in {baseline_path}")
        return 0

    cache_path = None
    if args.cache and not args.no_cache:
        cache_path = Path(args.cache)
    result = check_project(
        [Path(p) for p in args.paths],
        rule_ids=args.rules or None,
        jobs=args.jobs,
        cache_path=cache_path,
    )
    if args.graph:
        if args.graph == "dot":
            print(result.index.to_dot())
        else:
            print(json.dumps(result.index.to_json(), indent=2, sort_keys=True))
        return 0
    violations = result.violations
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(f"wrote {len(violations)} fingerprint(s) to {baseline_path}")
        return 0
    violations = apply_baseline(violations, load_baseline(baseline_path))
    if args.stats:
        s = result.stats
        print(
            f"repro check stats: {s['files']} file(s), {s['parsed']} parsed, "
            f"{s['cached']} from cache, {s.get('cfgs', 0)} CFG(s) built, "
            f"{s.get('value_summaries', 0)} value summaries built "
            f"({s.get('values_cached', 0)} from cache)",
            file=sys.stderr,
        )
    if args.timings:
        print(result.metrics.format_table(title="repro check timings"), file=sys.stderr)
    print(format_json(violations) if args.format == "json" else format_human(violations))
    exit_code = 1 if violations else 0
    if args.proofs or args.write_proofs:
        from repro.analysis.proofs import build_ledger, ledger_to_json

        ledger_path = Path(args.proofs or args.write_proofs)
        rendered = ledger_to_json(build_ledger(result.index, Path.cwd()))
        n_sites = len(json.loads(rendered)["sites"])
        if args.write_proofs:
            ledger_path.write_text(rendered, encoding="utf-8")
            print(f"wrote proof ledger ({n_sites} site(s)) to {ledger_path}")
        else:
            # Drift gate: the committed ledger must match a regeneration
            # from the current source, byte for byte.
            try:
                committed = ledger_path.read_text(encoding="utf-8")
            except OSError:
                committed = None
            if committed == rendered:
                print(f"proof ledger {ledger_path}: up to date ({n_sites} site(s))")
            else:
                print(
                    f"proof ledger {ledger_path} is "
                    f"{'missing' if committed is None else 'stale'} — "
                    f"regenerate with: repro check {' '.join(args.paths)} "
                    f"--write-proofs {ledger_path}",
                    file=sys.stderr,
                )
                exit_code = max(exit_code, 3)
    return exit_code


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="write a Chrome trace_event file of the run (Perfetto-loadable)",
    )
    p.add_argument(
        "--trace-jsonl", metavar="OUT.jsonl", default=None,
        help="write the JSONL span/decision event log of the run",
    )


def _add_metrics_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics", metavar="OUT.prom", default=None,
        help="write the run's metric registry as Prometheus text exposition",
    )
    p.add_argument(
        "--metrics-jsonl", metavar="OUT.jsonl", default=None,
        help="write the run's metric registry as a JSONL dump",
    )
    p.add_argument(
        "--flame", metavar="OUT.txt", default=None,
        help="write a collapsed-stack flamegraph of the run's trace and "
             "print its critical path (implies tracing)",
    )


def _dataset_arg(p: argparse.ArgumentParser, default: str = "D2") -> None:
    p.add_argument(
        "--dataset", choices=["D1", "D2", "D3"], default=default,
        type=lambda s: s.upper(),
        help="which dataset wiring to run (case-insensitive)",
    )


def _naive_cuts_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--naive-cuts", action="store_true",
        help="disable the prefix-sum cut fast path and rescan the grid "
             "per candidate slope — the A/B reference; decisions are "
             "byte-identical either way (docs/PERFORMANCE.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the module CLI."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("extract", help="run VS2 over a synthetic corpus")
    _dataset_arg(p)
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=1,
        help="process count for the corpus runner (1 = serial)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print the per-stage timing table after the run",
    )
    p.add_argument(
        "--faults", metavar="SPEC_OR_JSON", default=None,
        help="deterministic fault plan: a JSON plan file or the compact "
             "spec grammar, e.g. 'ocr:flaky@0.1,worker:crash@doc=7' "
             "(docs/RESILIENCE.md); implies supervised execution",
    )
    p.add_argument(
        "--supervise", action="store_true",
        help="run under the supervised layer (timeouts, retries, "
             "quarantine) even without a fault plan",
    )
    p.add_argument(
        "--checkpoint", metavar="RUN.jsonl", default=None,
        help="JSONL checkpoint log; rerunning with the same corpus "
             "resumes, skipping completed documents",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-document wall-clock budget in seconds (parallel "
             "supervised runs; default 60)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per document before quarantine (default 3)",
    )
    p.add_argument(
        "--quarantine-report", metavar="OUT.json", default=None,
        help="write the machine-readable quarantine report here",
    )
    _naive_cuts_arg(p)
    _add_trace_flags(p)
    _add_metrics_flags(p)
    p.set_defaults(fn=_cmd_extract)

    p = sub.add_parser(
        "explain",
        help="trace one document and print its decision report",
    )
    _dataset_arg(p)
    p.add_argument("--doc", type=int, default=0, help="document index in the corpus")
    p.add_argument("--seed", type=int, default=0)
    _naive_cuts_arg(p)
    _add_trace_flags(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", choices=["2", "5", "6", "7", "8", "9"])
    p.add_argument("--n-d1", type=int, default=24)
    p.add_argument("--n-d2", type=int, default=16)
    p.add_argument("--n-d3", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--profile", action="store_true",
        help="print the context's per-stage timing table after the table",
    )
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser(
        "bench",
        help="instrumented corpus run + BENCH_pipeline.json timing snapshot",
    )
    _dataset_arg(p)
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--out", default="benchmarks/results/BENCH_pipeline.json")
    p.add_argument(
        "--history", default="benchmarks/results/BENCH_history.jsonl",
        help="JSONL run-history log this bench appends to "
             "(empty string disables the append)",
    )
    _naive_cuts_arg(p)
    _add_trace_flags(p)
    _add_metrics_flags(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "report",
        help="SLO verdict of the latest bench record vs the committed history",
    )
    p.add_argument(
        "--history", default="benchmarks/results/BENCH_history.jsonl",
        help="JSONL run-history log to judge (written by `repro bench`)",
    )
    p.add_argument(
        "--dataset", default=None, type=lambda s: s.upper(),
        help="restrict the report to one dataset's records",
    )
    p.add_argument(
        "--window", type=int, default=0,
        help="use only the newest N baseline records (0 = all)",
    )
    p.add_argument(
        "--serve", metavar="BENCH_serve.json", default=None,
        help="judge a serve benchmark (written by `repro loadgen`) "
             "against the serve SLOs instead of the bench history",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the long-lived extraction service (docs/SERVING.md)",
    )
    _dataset_arg(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral; the chosen port is printed)")
    p.add_argument("--workers", type=int, default=2,
                   help="warm pool width (1 = in-process serving)")
    p.add_argument("--corpus-n", type=int, default=32,
                   help="warm corpus size; /extract references documents by index")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus seed (also seeds a --faults spec plan)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="admission-queue bound; beyond it requests shed with 429")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline in seconds (504 on expiry)")
    p.add_argument("--batch-max", type=int, default=4,
                   help="max requests coalesced into one pipeline dispatch")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="seconds the dispatcher waits for a micro-batch to fill")
    p.add_argument("--max-attempts", type=int, default=2,
                   help="attempts per request across batch retries")
    p.add_argument("--faults", metavar="SPEC_OR_JSON", default=None,
                   help="deterministic fault plan (sites serve.admit / "
                        "serve.batch plus the pipeline sites; docs/RESILIENCE.md)")
    p.add_argument("--checkpoint", metavar="OUT.json", default=None,
                   help="write the final accounting snapshot here on drain")
    _add_trace_flags(p)
    _add_metrics_flags(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="seeded load generator; virtual mode writes BENCH_serve.json",
    )
    _dataset_arg(p)
    p.add_argument("--n", type=int, default=64, help="requests in the schedule")
    p.add_argument("--rate", type=float, default=8.0,
                   help="offered load in requests per virtual second")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--deadline", type=float, default=4.0,
                   help="per-request deadline handed to the server")
    p.add_argument("--doc-service-s", type=float, default=0.25,
                   help="virtual service cost per document (capacity = 1/this)")
    p.add_argument("--workers", type=int, default=1,
                   help="service worker count in virtual mode (accounting "
                        "is identical for any value; docs/SERVING.md)")
    p.add_argument("--queue-limit", type=int, default=16)
    p.add_argument("--batch-max", type=int, default=4)
    p.add_argument("--max-attempts", type=int, default=2)
    p.add_argument("--faults", metavar="SPEC_OR_JSON", default=None,
                   help="deterministic fault plan active during the run")
    p.add_argument("--out", default="benchmarks/BENCH_serve.json",
                   help="where the repro.bench.serve/1 snapshot goes")
    p.add_argument("--host", default=None,
                   help="fire the schedule at a live server instead "
                        "(requires --port; no bench is written)")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--http-concurrency", type=int, default=8,
                   help="socket concurrency in HTTP mode")
    p.add_argument("--metrics", metavar="OUT.prom", default=None,
                   help="write the run's metric registry as Prometheus exposition")
    p.add_argument("--metrics-jsonl", metavar="OUT.jsonl", default=None,
                   help="write the run's metric registry as a JSONL dump")
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", choices=["3", "4"])
    p.add_argument("--doc-index", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("check", help="run the repo's static-analysis rules")
    p.add_argument("paths", nargs="*", default=["src", "tests"],
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--format", choices=["human", "json"], default="human")
    p.add_argument("--rules", nargs="*", metavar="RULE",
                   help="restrict the run to these rule IDs")
    p.add_argument("--baseline", default="lint_baseline.json",
                   help="JSON baseline of accepted legacy violations")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current violations as the new baseline and exit")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue (module rules + passes) and exit")
    p.add_argument("--explain", metavar="RULEID",
                   help="print one rule's documentation, example and fix, then exit")
    p.add_argument("--jobs", type=int, default=1,
                   help="process count for the per-file stage (1 = serial)")
    p.add_argument("--cache", metavar="PATH", default=None,
                   help="content-hash result cache file (off unless given)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore --cache (force a cold run)")
    p.add_argument("--graph", choices=["dot", "json"],
                   help="dump the import/call graph instead of findings")
    p.add_argument("--rekey", action="append", metavar="OLD=NEW",
                   help="rewrite baseline fingerprints after a file rename "
                        "(repeatable), then exit")
    p.add_argument("--stats", action="store_true",
                   help="print file/parse/cache/CFG counters to stderr")
    p.add_argument("--timings", action="store_true",
                   help="print per-stage and per-pass wall time to stderr")
    p.add_argument("--proofs", nargs="?", const="proof_ledger.json",
                   metavar="PATH",
                   help="verify the committed proof ledger matches a "
                        "regeneration from current source (exit 3 on drift)")
    p.add_argument("--write-proofs", nargs="?", const="proof_ledger.json",
                   metavar="PATH",
                   help="regenerate and write the proof ledger")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("render", help="rasterise a synthetic document to PPM")
    _dataset_arg(p)
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--output", default="document.ppm")
    p.set_defaults(fn=_cmd_render)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
