"""Runtime contracts: executable invariants on the pipeline's claims.

The segmentation and selection stages make geometric promises the unit
tests can only sample — every cut lies in whitespace, accepted
separators clear the content they separate, layout trees nest and
partition their atoms, Pareto fronts are truly non-dominated.  This
module turns those promises into *post-conditions* checked on every
call, on real documents, whenever contracts are enabled:

* ``REPRO_CONTRACTS=1 pytest`` (or any entry point) enables them from
  the environment;
* :func:`enable_contracts` / the :func:`contracts` context manager
  toggle them at runtime (how the contract tests run under plain
  pytest).

When disabled — the default — a ``@checked`` wrapper costs a single
boolean test per call and the check functions are never invoked.

**Proof-ledger skipping.**  ``repro check --proofs`` classifies every
contract site's post-conditions statically (see
:mod:`repro.analysis.proofs`) and commits the result as a ledger.
Pointing ``REPRO_PROOF_LEDGER`` at that file (or calling
:func:`use_proof_ledger`) lets ``@checked`` skip sites whose
obligations are all PROVED or ASSUMED **and** whose source file still
matches the ledger's SHA-256 fingerprint — proved contracts run
check-free while everything unproven stays armed.  The ledger is
consulted only when explicitly requested, so ``REPRO_CONTRACTS=1``
alone always means full checking (what the contracts CI job runs).
:data:`CONTRACT_STATS` counts checked vs skipped calls and
:func:`contracts_mode` names the active mode for bench labelling.

Checks are *independent re-implementations*, not calls back into the
code under test: :func:`check_cut_sets_in_whitespace` re-walks the
sheared cut lines cell by cell in scalar Python precisely because the
production path (:func:`repro.geometry.cuts.sheared_cut_rows`) is
vectorised — agreement between the two is the point.

This module deliberately imports nothing from ``repro`` above
:mod:`repro.geometry`, so any layer may adopt a contract without
creating an import cycle.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.geometry import BBox


class ContractViolation(AssertionError):
    """A runtime invariant did not hold.

    Subclasses ``AssertionError`` so contract failures read as broken
    promises, not environmental errors, and so ``pytest.raises`` in the
    contract tests stays idiomatic.
    """


_ENV_FLAG = "REPRO_CONTRACTS"
_enabled = os.environ.get(_ENV_FLAG, "").strip().lower() not in ("", "0", "false", "no")


def contracts_enabled() -> bool:
    """Whether post-conditions run (seeded from ``REPRO_CONTRACTS``)."""
    return _enabled


def enable_contracts(on: bool = True) -> None:
    """Turn contract checking on/off for the current process."""
    global _enabled
    _enabled = bool(on)


@contextmanager
def contracts(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) contracts, restoring on exit."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    try:
        yield
    finally:
        _enabled = previous


# ----------------------------------------------------------------------
# Proof-ledger skipping
# ----------------------------------------------------------------------

#: Schema of the ledger ``repro check --proofs`` emits.  Kept as a
#: literal (not imported from repro.analysis.proofs) to preserve this
#: module's layering rule: nothing above repro.geometry is imported.
_PROOF_SCHEMA = "repro.analysis.proofs/1"
_LEDGER_ENV = "REPRO_PROOF_LEDGER"
#: Obligation statuses that leave a site skippable.
_DISCHARGED = ("PROVED", "ASSUMED")

#: Calls whose post-condition ran vs. was skipped via the ledger.
CONTRACT_STATS: Dict[str, int] = {"checked": 0, "skipped": 0}

_ledger_sites: Optional[Dict[str, object]] = None
#: Bumped on every ledger (re)load; wrappers memoise per epoch.
_ledger_epoch = 0


def _load_ledger_file(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != _PROOF_SCHEMA:
        return None
    sites = data.get("sites")
    return sites if isinstance(sites, dict) else None


def use_proof_ledger(path: Optional[str]) -> bool:
    """Arm (or with ``None`` disarm) proof-ledger skipping.

    Returns True when a valid ledger was loaded.  A missing or
    malformed file disarms skipping — the safe direction: every
    contract runs."""
    global _ledger_sites, _ledger_epoch
    _ledger_epoch += 1
    _ledger_sites = _load_ledger_file(path) if path else None
    return _ledger_sites is not None


_env_ledger = os.environ.get(_LEDGER_ENV, "").strip()
if _env_ledger:
    use_proof_ledger(_env_ledger)


def contracts_mode() -> str:
    """``"off"``, ``"checked"`` or ``"ledger-skip"`` — the label bench
    snapshots record so runs are only compared like for like."""
    if not _enabled:
        return "off"
    return "ledger-skip" if _ledger_sites is not None else "checked"


def _site_skippable(fn, post) -> bool:
    """Whether the ledger discharges this wrapper's contract for the
    source that is actually running."""
    if _ledger_sites is None:
        return False
    key = f"{fn.__module__}::{fn.__qualname__}"
    entry = _ledger_sites.get(key)
    if not isinstance(entry, dict):
        return False
    obligations = entry.get("obligations")
    if not isinstance(obligations, dict) or not obligations:
        return False
    for ob in obligations.values():
        if not isinstance(ob, dict) or ob.get("status") not in _DISCHARGED:
            return False
    # The proof holds for the fingerprinted source only.
    try:
        with open(fn.__code__.co_filename, "rb") as fh:
            sha = hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return False
    if sha != entry.get("source_sha256"):
        return False
    # The post-condition must not reference checks the ledger never
    # classified (a lambda edited after the ledger was cut).
    checks = entry.get("checks")
    if not isinstance(checks, list):
        return False
    referenced = {
        name for name in post.__code__.co_names if name.startswith("check_")
    }
    return referenced <= set(checks)


def checked(post: Callable[..., None]):
    """Decorate a function with a post-condition.

    ``post`` receives ``(result, *args, **kwargs)`` — the return value
    followed by the original call arguments — and raises
    :class:`ContractViolation` on a broken invariant.  With contracts
    disabled the wrapper is a single boolean test.  With a proof
    ledger armed (:func:`use_proof_ledger`), a site whose obligations
    are all statically discharged for the running source skips the
    check entirely.
    """

    def decorate(fn):
        # (epoch, decision) memo — the skip test hashes the source
        # file, so it runs once per ledger load, not once per call.
        memo = {"epoch": -1, "skip": False}

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            result = fn(*args, **kwargs)
            if _enabled:
                if _ledger_sites is not None:
                    if memo["epoch"] != _ledger_epoch:
                        memo["epoch"] = _ledger_epoch
                        memo["skip"] = _site_skippable(fn, post)
                    if memo["skip"]:
                        CONTRACT_STATS["skipped"] += 1
                        return result
                CONTRACT_STATS["checked"] += 1
                post(result, *args, **kwargs)
            return result

        wrapper.__contract__ = post
        return wrapper

    return decorate


def _fail(message: str) -> None:
    raise ContractViolation(message)


# ----------------------------------------------------------------------
# Segmentation contracts
# ----------------------------------------------------------------------


def check_cut_sets_in_whitespace(grid, cut_sets) -> None:
    """Every cut line of every cut set runs through whitespace.

    Scalar re-walk of the sheared-line semantics of
    :func:`repro.geometry.cuts.sheared_cut_rows`: a horizontal cut
    originating at row ``r`` visits ``(r + round(slope·c), c)`` for
    every column ``c``; off-page cells count as whitespace.  Vertical
    cuts are the transpose.
    """
    occupied = grid.occupied
    n_rows, n_cols = occupied.shape
    for cut_set in cut_sets:
        for index in range(cut_set.start_index, cut_set.start_index + cut_set.size):
            if cut_set.orientation == "horizontal":
                for col in range(n_cols):
                    row = index + round(cut_set.slope * col)
                    if 0 <= row < n_rows and occupied[row, col]:
                        _fail(
                            f"horizontal cut at row {index} (slope {cut_set.slope}) "
                            f"passes through occupied cell ({row}, {col})"
                        )
            else:
                for row in range(n_rows):
                    col = index + round(cut_set.slope * row)
                    if 0 <= col < n_cols and occupied[row, col]:
                        _fail(
                            f"vertical cut at column {index} (slope {cut_set.slope}) "
                            f"passes through occupied cell ({row}, {col})"
                        )


def check_separators_clear_of_boxes(separators, boxes: Sequence[BBox]) -> None:
    """Accepted separator centre lines do not run through content.

    The centre line of each separator, evaluated over a box's crossing
    extent, must not pass through the box's interior.  One grid cell of
    tolerance on each side absorbs the discretisation: a box edge that
    partially covers a cell still marks the whole cell occupied.
    """
    for sep in separators:
        tolerance = sep.cell
        for box in boxes:
            if sep.orientation == "horizontal":
                lo, hi = box.x, box.x2
                inner_low, inner_high = box.y + tolerance, box.y2 - tolerance
            else:
                lo, hi = box.y, box.y2
                inner_low, inner_high = box.x + tolerance, box.x2 - tolerance
            if inner_high <= inner_low:
                continue  # box thinner than the tolerance band
            v1, v2 = sep.line_value_at(lo), sep.line_value_at(hi)
            if min(v1, v2) < inner_high and max(v1, v2) > inner_low:
                _fail(
                    f"{sep.orientation} separator (mid {sep.mid_units:.1f}, "
                    f"slope {sep.slope}) runs through content box {box}"
                )


def check_layout_tree(tree) -> None:
    """Structural invariants of a converged layout tree.

    * **Nesting** — every child's area is enclosed by its parent's
      (``LayoutTree.validate_nesting`` tolerance applies);
    * **Partition** — each node's children partition its atoms: no
      atom lost, none duplicated between siblings;
    * **Leaf coverage** — the leaves jointly hold exactly the root's
      atoms (no content silently dropped by the recursion);
    * **Disjoint cut siblings** — see
      :func:`check_cut_siblings_disjoint`.
    """
    try:
        tree.validate_nesting()
    except ValueError as exc:
        _fail(f"layout tree nesting broken: {exc}")
    for node in tree.walk():
        if node.is_leaf:
            continue
        check_cut_siblings_disjoint(node)
        child_ids: List[int] = []
        for child in node.children:
            child_ids.extend(id(a) for a in child.atoms)
        if len(child_ids) != len(set(child_ids)):
            _fail(f"node {node.node_id}: an atom appears in two sibling areas")
        if set(child_ids) != {id(a) for a in node.atoms}:
            _fail(
                f"node {node.node_id}: children hold {len(child_ids)} atoms, "
                f"parent holds {len(node.atoms)} — split dropped or invented content"
            )
    leaf_ids = [id(a) for leaf in tree.leaves() for a in leaf.atoms]
    if sorted(leaf_ids) != sorted(id(a) for a in tree.root.atoms):
        _fail("layout tree leaves do not partition the document's atoms")


def check_cut_siblings_disjoint(node) -> None:
    """Siblings produced by an explicit delimiter split occupy disjoint
    bands: their *atom boxes* may touch the separator, but one sibling's
    atoms must not reach past another sibling's far side."""
    if not node.children or any(c.kind != "cut" for c in node.children):
        return
    boxes = [c.bbox for c in node.children]
    for i, a in enumerate(boxes):
        for b in boxes[i + 1 :]:
            inter = a.intersection(b)
            if inter is None:
                continue
            smaller = min(a.area, b.area)
            if smaller > 0 and inter.area / smaller > 0.5:
                _fail(
                    f"cut siblings of node {node.node_id} overlap by "
                    f"{inter.area / smaller:.0%} of the smaller area: {a} vs {b}"
                )


# ----------------------------------------------------------------------
# Selection contracts
# ----------------------------------------------------------------------


def check_pareto_front(points: Sequence[Sequence[float]], front: Sequence[int]) -> None:
    """The returned front is exactly the non-dominated set.

    Brute-force O(n²·d) re-derivation under the maximise-everything
    convention: a front member must not be strictly dominated; a
    non-member must be.
    """
    n = len(points)
    front_set = set(front)
    for i in range(n):
        dominated_by: Optional[int] = None
        for j in range(n):
            if i == j:
                continue
            a, b = points[j], points[i]
            if all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b)):
                dominated_by = j
                break
        if i in front_set and dominated_by is not None:
            _fail(
                f"front member {i} ({tuple(points[i])}) is dominated by "
                f"{dominated_by} ({tuple(points[dominated_by])})"
            )
        if i not in front_set and dominated_by is None:
            _fail(f"non-dominated point {i} ({tuple(points[i])}) missing from front")


def check_extraction_spans(extractions) -> None:
    """Every extraction's matched-word span lies within its block box.

    ``span_bbox`` is the tight enclosure of matched words, which are
    atoms of the block — a span escaping the block means the selector
    mixed up blocks (or frames)."""
    for e in extractions:
        if not e.bbox.expand(1.0).contains_bbox(e.span_bbox):
            _fail(
                f"extraction {e.entity_type!r}: span {e.span_bbox} "
                f"escapes block {e.bbox}"
            )


__all__ = [
    "CONTRACT_STATS",
    "ContractViolation",
    "checked",
    "contracts",
    "contracts_enabled",
    "contracts_mode",
    "enable_contracts",
    "use_proof_ledger",
    "check_cut_sets_in_whitespace",
    "check_cut_siblings_disjoint",
    "check_extraction_spans",
    "check_layout_tree",
    "check_pareto_front",
    "check_separators_clear_of_boxes",
]
