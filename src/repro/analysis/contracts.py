"""Runtime contracts: executable invariants on the pipeline's claims.

The segmentation and selection stages make geometric promises the unit
tests can only sample — every cut lies in whitespace, accepted
separators clear the content they separate, layout trees nest and
partition their atoms, Pareto fronts are truly non-dominated.  This
module turns those promises into *post-conditions* checked on every
call, on real documents, whenever contracts are enabled:

* ``REPRO_CONTRACTS=1 pytest`` (or any entry point) enables them from
  the environment;
* :func:`enable_contracts` / the :func:`contracts` context manager
  toggle them at runtime (how the contract tests run under plain
  pytest).

When disabled — the default — a ``@checked`` wrapper costs a single
boolean test per call and the check functions are never invoked.

Checks are *independent re-implementations*, not calls back into the
code under test: :func:`check_cut_sets_in_whitespace` re-walks the
sheared cut lines cell by cell in scalar Python precisely because the
production path (:func:`repro.geometry.cuts.sheared_cut_rows`) is
vectorised — agreement between the two is the point.

This module deliberately imports nothing from ``repro`` above
:mod:`repro.geometry`, so any layer may adopt a contract without
creating an import cycle.
"""

from __future__ import annotations

import functools
import os
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry import BBox


class ContractViolation(AssertionError):
    """A runtime invariant did not hold.

    Subclasses ``AssertionError`` so contract failures read as broken
    promises, not environmental errors, and so ``pytest.raises`` in the
    contract tests stays idiomatic.
    """


_ENV_FLAG = "REPRO_CONTRACTS"
_enabled = os.environ.get(_ENV_FLAG, "").strip().lower() not in ("", "0", "false", "no")


def contracts_enabled() -> bool:
    """Whether post-conditions run (seeded from ``REPRO_CONTRACTS``)."""
    return _enabled


def enable_contracts(on: bool = True) -> None:
    """Turn contract checking on/off for the current process."""
    global _enabled
    _enabled = bool(on)


@contextmanager
def contracts(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) contracts, restoring on exit."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    try:
        yield
    finally:
        _enabled = previous


def checked(post: Callable[..., None]):
    """Decorate a function with a post-condition.

    ``post`` receives ``(result, *args, **kwargs)`` — the return value
    followed by the original call arguments — and raises
    :class:`ContractViolation` on a broken invariant.  With contracts
    disabled the wrapper is a single boolean test.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            result = fn(*args, **kwargs)
            if _enabled:
                post(result, *args, **kwargs)
            return result

        wrapper.__contract__ = post
        return wrapper

    return decorate


def _fail(message: str) -> None:
    raise ContractViolation(message)


# ----------------------------------------------------------------------
# Segmentation contracts
# ----------------------------------------------------------------------


def check_cut_sets_in_whitespace(grid, cut_sets) -> None:
    """Every cut line of every cut set runs through whitespace.

    Scalar re-walk of the sheared-line semantics of
    :func:`repro.geometry.cuts.sheared_cut_rows`: a horizontal cut
    originating at row ``r`` visits ``(r + round(slope·c), c)`` for
    every column ``c``; off-page cells count as whitespace.  Vertical
    cuts are the transpose.
    """
    occupied = grid.occupied
    n_rows, n_cols = occupied.shape
    for cut_set in cut_sets:
        for index in range(cut_set.start_index, cut_set.start_index + cut_set.size):
            if cut_set.orientation == "horizontal":
                for col in range(n_cols):
                    row = index + round(cut_set.slope * col)
                    if 0 <= row < n_rows and occupied[row, col]:
                        _fail(
                            f"horizontal cut at row {index} (slope {cut_set.slope}) "
                            f"passes through occupied cell ({row}, {col})"
                        )
            else:
                for row in range(n_rows):
                    col = index + round(cut_set.slope * row)
                    if 0 <= col < n_cols and occupied[row, col]:
                        _fail(
                            f"vertical cut at column {index} (slope {cut_set.slope}) "
                            f"passes through occupied cell ({row}, {col})"
                        )


def check_separators_clear_of_boxes(separators, boxes: Sequence[BBox]) -> None:
    """Accepted separator centre lines do not run through content.

    The centre line of each separator, evaluated over a box's crossing
    extent, must not pass through the box's interior.  One grid cell of
    tolerance on each side absorbs the discretisation: a box edge that
    partially covers a cell still marks the whole cell occupied.
    """
    for sep in separators:
        tolerance = sep.cell
        for box in boxes:
            if sep.orientation == "horizontal":
                lo, hi = box.x, box.x2
                inner_low, inner_high = box.y + tolerance, box.y2 - tolerance
            else:
                lo, hi = box.y, box.y2
                inner_low, inner_high = box.x + tolerance, box.x2 - tolerance
            if inner_high <= inner_low:
                continue  # box thinner than the tolerance band
            v1, v2 = sep.line_value_at(lo), sep.line_value_at(hi)
            if min(v1, v2) < inner_high and max(v1, v2) > inner_low:
                _fail(
                    f"{sep.orientation} separator (mid {sep.mid_units:.1f}, "
                    f"slope {sep.slope}) runs through content box {box}"
                )


def check_layout_tree(tree) -> None:
    """Structural invariants of a converged layout tree.

    * **Nesting** — every child's area is enclosed by its parent's
      (``LayoutTree.validate_nesting`` tolerance applies);
    * **Partition** — each node's children partition its atoms: no
      atom lost, none duplicated between siblings;
    * **Leaf coverage** — the leaves jointly hold exactly the root's
      atoms (no content silently dropped by the recursion);
    * **Disjoint cut siblings** — see
      :func:`check_cut_siblings_disjoint`.
    """
    try:
        tree.validate_nesting()
    except ValueError as exc:
        _fail(f"layout tree nesting broken: {exc}")
    for node in tree.walk():
        if node.is_leaf:
            continue
        check_cut_siblings_disjoint(node)
        child_ids: List[int] = []
        for child in node.children:
            child_ids.extend(id(a) for a in child.atoms)
        if len(child_ids) != len(set(child_ids)):
            _fail(f"node {node.node_id}: an atom appears in two sibling areas")
        if set(child_ids) != {id(a) for a in node.atoms}:
            _fail(
                f"node {node.node_id}: children hold {len(child_ids)} atoms, "
                f"parent holds {len(node.atoms)} — split dropped or invented content"
            )
    leaf_ids = [id(a) for leaf in tree.leaves() for a in leaf.atoms]
    if sorted(leaf_ids) != sorted(id(a) for a in tree.root.atoms):
        _fail("layout tree leaves do not partition the document's atoms")


def check_cut_siblings_disjoint(node) -> None:
    """Siblings produced by an explicit delimiter split occupy disjoint
    bands: their *atom boxes* may touch the separator, but one sibling's
    atoms must not reach past another sibling's far side."""
    if not node.children or any(c.kind != "cut" for c in node.children):
        return
    boxes = [c.bbox for c in node.children]
    for i, a in enumerate(boxes):
        for b in boxes[i + 1 :]:
            inter = a.intersection(b)
            if inter is None:
                continue
            smaller = min(a.area, b.area)
            if smaller > 0 and inter.area / smaller > 0.5:
                _fail(
                    f"cut siblings of node {node.node_id} overlap by "
                    f"{inter.area / smaller:.0%} of the smaller area: {a} vs {b}"
                )


# ----------------------------------------------------------------------
# Selection contracts
# ----------------------------------------------------------------------


def check_pareto_front(points: Sequence[Sequence[float]], front: Sequence[int]) -> None:
    """The returned front is exactly the non-dominated set.

    Brute-force O(n²·d) re-derivation under the maximise-everything
    convention: a front member must not be strictly dominated; a
    non-member must be.
    """
    n = len(points)
    front_set = set(front)
    for i in range(n):
        dominated_by: Optional[int] = None
        for j in range(n):
            if i == j:
                continue
            a, b = points[j], points[i]
            if all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b)):
                dominated_by = j
                break
        if i in front_set and dominated_by is not None:
            _fail(
                f"front member {i} ({tuple(points[i])}) is dominated by "
                f"{dominated_by} ({tuple(points[dominated_by])})"
            )
        if i not in front_set and dominated_by is None:
            _fail(f"non-dominated point {i} ({tuple(points[i])}) missing from front")


def check_extraction_spans(extractions) -> None:
    """Every extraction's matched-word span lies within its block box.

    ``span_bbox`` is the tight enclosure of matched words, which are
    atoms of the block — a span escaping the block means the selector
    mixed up blocks (or frames)."""
    for e in extractions:
        if not e.bbox.expand(1.0).contains_bbox(e.span_bbox):
            _fail(
                f"extraction {e.entity_type!r}: span {e.span_bbox} "
                f"escapes block {e.bbox}"
            )


__all__ = [
    "ContractViolation",
    "checked",
    "contracts",
    "contracts_enabled",
    "enable_contracts",
    "check_cut_sets_in_whitespace",
    "check_cut_siblings_disjoint",
    "check_extraction_spans",
    "check_layout_tree",
    "check_pareto_front",
    "check_separators_clear_of_boxes",
]
