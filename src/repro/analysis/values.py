"""Abstract-interpretation value analysis over the per-function CFGs.

The flow engine (:mod:`repro.analysis.flow`) answers *reachability*
questions — which calls, raises and releases can happen.  This module
answers *value* questions: what ranges can an integer take, how long
can an array be, can this index ever leave its array.  It runs the
same worklist solver (:mod:`repro.analysis.dataflow`) over the same
CFGs, with an interval + shape domain instead of fact sets:

* **numbers** carry an interval whose bounds are either constants or
  symbolic ``len(param) + k`` expressions (so ``i in range(len(xs))``
  proves ``0 <= i <= len(xs) - 1`` without knowing ``len(xs)``);
* **sequences** carry a length interval, an element interval, and
  qualitative facts (``monotone-inc`` for ``np.arange`` /
  ``np.flatnonzero`` output, ``interior-pairs`` for run lists whose
  comprehension filter proves strict interiority);
* **BBox** construction records the relational ordering fact
  ``x0 <= x1, y0 <= y1`` (``bbox-ordered``) whenever both extents are
  provably non-negative — the constructor raises otherwise, so a
  provably *negative* extent is a definite hazard, not a maybe.

Loops are tamed by widening (:class:`ValueLattice.widen` jumps moving
bounds to ±∞ after a few updates), so the fixpoint always terminates
within the solver's iteration budget.

Two things come out of a run, condensed into a cached
:class:`ValueSummary`:

* **facts** about the function's return value (``nonneg-return``,
  ``index-return:<param>``, ``interior-pairs-return``, …) that the
  proof layer (:mod:`repro.analysis.proofs`) uses as lemmas when
  discharging contract post-conditions — including *counter-facts*
  (``!fact``) when the analysis can prove the property definitely
  broken, which is what turns a contract VIOLATED;
* **hazards** — definite (not "maybe") out-of-bounds subscripts
  (``BND101``), provably wrong ``np.add.reduceat`` offsets
  (``BND102``) and provably negative array extents (``BND103``).
  Only *definite* violations are reported: every bound must be known
  well enough to show the bad case happens on **all** executions the
  abstraction admits, so the analysis stays silent on correct code
  instead of drowning it in maybes.

The analysis is intraprocedural; interprocedural propagation happens
in the proof layer over the PR 4 call graph, using these summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import Lattice, solve

#: Value summaries built by this process (mirrors ``cfg.BUILD_COUNT``;
#: ``repro check --stats`` reports the delta and a warm cache run must
#: report 0).
BUILD_COUNT = 0

_INF = float("inf")


# ----------------------------------------------------------------------
# Bounds: constants and ``len(param) + k``
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Bound:
    """One interval endpoint: ``off`` when ``sym`` is ``None``, else
    ``len(<sym param>) + off``.  Every symbol denotes a length, hence a
    non-negative integer — the comparison rules below lean on that."""

    sym: Optional[str]
    off: float

    def add(self, c: float) -> "Bound":
        if self.off in (_INF, -_INF):
            return self
        return Bound(self.sym, self.off + c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.sym is None:
            return f"{self.off:g}"
        return f"len({self.sym}){self.off:+g}" if self.off else f"len({self.sym})"


NEG_INF = Bound(None, -_INF)
POS_INF = Bound(None, _INF)


def bound_le(a: Bound, b: Bound) -> bool:
    """``a <= b`` on **every** concrete instantiation of the symbols."""
    if a.off == -_INF or b.off == _INF:
        return True
    if a.off == _INF or b.off == -_INF:
        return False
    if a.sym == b.sym:
        return a.off <= b.off
    if a.sym is None:
        # a.off <= len(x) + b.off holds for every len(x) >= 0.
        return a.off <= b.off
    return False


def bound_lt(a: Bound, b: Bound) -> bool:
    """``a < b`` on every concrete instantiation."""
    if a.off == -_INF and b.off != -_INF:
        return True
    if b.off == _INF and a.off != _INF:
        return True
    if a.off in (_INF, -_INF) or b.off in (_INF, -_INF):
        return False
    if a.sym == b.sym:
        return a.off < b.off
    if a.sym is None:
        return a.off < b.off
    return False


def _bound_add(a: Bound, b: Bound, toward: float) -> Bound:
    """Sum of two bounds; unrepresentable (two symbols) falls to ±∞."""
    if a.off in (_INF, -_INF):
        return a
    if b.off in (_INF, -_INF):
        return b
    if a.sym is None:
        return Bound(b.sym, a.off + b.off)
    if b.sym is None:
        return Bound(a.sym, a.off + b.off)
    return POS_INF if toward > 0 else NEG_INF


def _bound_neg(a: Bound, toward: float) -> Bound:
    if a.off == _INF:
        return NEG_INF
    if a.off == -_INF:
        return POS_INF
    if a.sym is None:
        return Bound(None, -a.off)
    return POS_INF if toward > 0 else NEG_INF


# ----------------------------------------------------------------------
# Intervals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """Closed interval; ``lo > hi`` (under :func:`bound_lt`) is empty —
    the bottom used for "no elements seen yet"."""

    lo: Bound = NEG_INF
    hi: Bound = POS_INF

    @staticmethod
    def const(v: float) -> "Interval":
        return Interval(Bound(None, v), Bound(None, v))

    @staticmethod
    def of(lo: float, hi: float) -> "Interval":
        return Interval(Bound(None, lo), Bound(None, hi))

    @property
    def is_empty(self) -> bool:
        return bound_lt(self.hi, self.lo)

    @property
    def is_top(self) -> bool:
        return self.lo.off == -_INF and self.hi.off == _INF

    def contains_value(self, v: float) -> bool:
        """Whether ``v`` may lie in the interval (symbolic bounds can
        always admit it unless the constant part rules it out)."""
        return not (bound_lt(Bound(None, v), self.lo) or bound_lt(self.hi, Bound(None, v)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo!r}, {self.hi!r}]"


TOP_IVAL = Interval()
EMPTY_IVAL = Interval(POS_INF, NEG_INF)


def _join_lo(a: Bound, b: Bound) -> Bound:
    if bound_le(a, b):
        return a
    if bound_le(b, a):
        return b
    return NEG_INF


def _join_hi(a: Bound, b: Bound) -> Bound:
    if bound_le(a, b):
        return b
    if bound_le(b, a):
        return a
    return POS_INF


def join_interval(a: Interval, b: Interval) -> Interval:
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    return Interval(_join_lo(a.lo, b.lo), _join_hi(a.hi, b.hi))


def widen_interval(old: Interval, new: Interval) -> Interval:
    """Standard interval widening: a bound still moving after the join
    threshold jumps straight to ±∞ so loops converge."""
    if old.is_empty:
        return new
    if new.is_empty:
        return old
    lo = old.lo if bound_le(old.lo, new.lo) else NEG_INF
    hi = old.hi if bound_le(new.hi, old.hi) else POS_INF
    return Interval(lo, hi)


def _arith(a: Interval, b: Interval, op) -> Interval:
    """Corner arithmetic for *, // — constants only, else TOP."""
    corners: List[float] = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if x.sym is not None or y.sym is not None:
                return TOP_IVAL
            if x.off in (_INF, -_INF) or y.off in (_INF, -_INF):
                return TOP_IVAL
            try:
                corners.append(op(x.off, y.off))
            except (ZeroDivisionError, OverflowError):
                return TOP_IVAL
    return Interval.of(min(corners), max(corners))


def interval_add(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY_IVAL
    return Interval(_bound_add(a.lo, b.lo, -1), _bound_add(a.hi, b.hi, +1))


def interval_sub(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY_IVAL
    return Interval(
        _bound_add(a.lo, _bound_neg(b.hi, -1), -1),
        _bound_add(a.hi, _bound_neg(b.lo, +1), +1),
    )


def interval_mul(a: Interval, b: Interval) -> Interval:
    return _arith(a, b, lambda x, y: x * y)


def interval_floordiv(a: Interval, b: Interval) -> Interval:
    # Divisor interval touching zero -> unknown (and possibly raising).
    if b.contains_value(0.0):
        return TOP_IVAL
    return _arith(a, b, lambda x, y: float(x // y))


def interval_min(a: Interval, b: Interval) -> Interval:
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    lo = _join_lo(a.lo, b.lo)  # min(a, b) >= min of the lows, when comparable
    if bound_le(a.hi, b.hi):
        hi = a.hi
    elif bound_le(b.hi, a.hi):
        hi = b.hi
    else:
        # Incomparable: either side's hi still upper-bounds the min.
        hi = a.hi if a.hi.off != _INF else b.hi
    return Interval(lo, hi)


def interval_max(a: Interval, b: Interval) -> Interval:
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    hi = _join_hi(a.hi, b.hi)
    if bound_le(b.lo, a.lo):
        lo = a.lo
    elif bound_le(a.lo, b.lo):
        lo = b.lo
    else:
        lo = a.lo if a.lo.off != -_INF else b.lo
    return Interval(lo, hi)


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------

#: Qualitative sequence/box facts tracked through the dataflow.
#: ``monotone-inc`` is *strictly* increasing (``np.arange``,
#: ``np.flatnonzero``); ``monotone-dec`` strictly decreasing (its
#: reversal); ``monotone-nondec`` merely sorted; ``interior-pairs``
#: marks run lists whose comprehension filter proved
#: ``start > 0 and start + size < extent``; ``bbox-ordered`` marks a
#: BBox whose extents were provably non-negative at construction
#: (hence ``x0 <= x1 and y0 <= y1``).


@dataclass(frozen=True)
class AbsVal:
    """One variable's abstraction: a kind tag plus the lattice data the
    kind uses (the rest stays at its TOP)."""

    kind: str = "any"  # "num" | "seq" | "bbox" | "any"
    ival: Interval = TOP_IVAL
    length: Interval = TOP_IVAL
    elem: Interval = TOP_IVAL
    facts: frozenset = frozenset()


TOP_VAL = AbsVal()


def num(ival: Interval) -> AbsVal:
    return AbsVal(kind="num", ival=ival)


def seq(length: Interval, elem: Interval = TOP_IVAL, facts: frozenset = frozenset()) -> AbsVal:
    return AbsVal(kind="seq", length=length, elem=elem, facts=facts)


def join_val(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind != b.kind:
        return TOP_VAL
    return AbsVal(
        kind=a.kind,
        ival=join_interval(a.ival, b.ival),
        length=join_interval(a.length, b.length),
        elem=join_interval(a.elem, b.elem),
        facts=a.facts & b.facts,
    )


def widen_val(old: AbsVal, new: AbsVal) -> AbsVal:
    if old.kind != new.kind:
        return TOP_VAL
    return AbsVal(
        kind=old.kind,
        ival=widen_interval(old.ival, new.ival),
        length=widen_interval(old.length, new.length),
        elem=widen_interval(old.elem, new.elem),
        facts=old.facts & new.facts,
    )


class ValueLattice(Lattice):
    """Pointwise map lattice over :class:`AbsVal`.

    A key present on one side only is kept: any *use* of the variable
    is dominated by some binding, so the one-sided value is its value
    whenever the read can happen at all.  Missing keys evaluate to
    :data:`TOP_VAL`, which keeps premature transfers (the solver seeds
    every reachable node) conservative.
    """

    def bottom(self) -> Dict[str, AbsVal]:
        return {}

    def join(self, a: Dict[str, AbsVal], b: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
        out = dict(a)
        for key, value in b.items():
            out[key] = join_val(out[key], value) if key in out else value
        return out

    def widen(self, old: Dict[str, AbsVal], new: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
        out = dict(old)
        for key, value in new.items():
            out[key] = widen_val(out[key], value) if key in out else value
        return out


# ----------------------------------------------------------------------
# The cached per-function summary
# ----------------------------------------------------------------------


@dataclass
class ValueSummary:
    """What the proof layer needs from one function's value analysis.

    ``facts`` describe the return value (``nonneg-return``,
    ``index-return:<param>``, ``interior-pairs-return``,
    ``monotone-return``, ``bbox-ordered-return``); a leading ``!``
    marks a *counter-fact* — the property is provably broken on every
    path, which the proof layer escalates to VIOLATED.  ``hazards``
    are definite BND1xx findings as ``(line, rule, message)``.
    """

    facts: List[str] = field(default_factory=list)
    hazards: List[Tuple[int, str, str]] = field(default_factory=list)

    def empty(self) -> bool:
        return not self.facts and not self.hazards

    def to_dict(self) -> Dict[str, object]:
        return {
            "facts": list(self.facts),
            "hazards": [list(h) for h in self.hazards],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ValueSummary":
        return ValueSummary(
            facts=[str(f) for f in data.get("facts", [])],  # type: ignore[union-attr]
            hazards=[
                (int(ln), str(r), str(m))
                for ln, r, m in data.get("hazards", [])  # type: ignore[union-attr]
            ],
        )


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------


class _Evaluator:
    """Abstract evaluation of expressions against an environment."""

    def __init__(self, resolver, stable_params):
        self.resolver = resolver
        self.stable_params = stable_params
        #: definite hazards found by the post-fixpoint scan; the scan
        #: sets ``collect`` so fixpoint iteration stays pure.
        self.collect: Optional[List[Tuple[int, str, str]]] = None

    # -- helpers -------------------------------------------------------

    def _resolve(self, node: ast.AST) -> Optional[str]:
        if self.resolver is None:
            if isinstance(node, ast.Name):
                return node.id
            parts: List[str] = []
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                parts.append(node.id)
                return ".".join(reversed(parts))
            return None
        return self.resolver.resolve(node)

    def _hazard(self, node: ast.AST, rule: str, message: str) -> None:
        if self.collect is not None:
            self.collect.append((node.lineno, rule, message))

    def _len_of(self, node: ast.AST, env: Dict[str, AbsVal]) -> Interval:
        """Interval of ``len(node)`` — symbolic for stable params."""
        if isinstance(node, ast.Name):
            if node.id in self.stable_params:
                b = Bound(node.id, 0)
                return Interval(b, b)
            val = env.get(node.id, TOP_VAL)
            if val.kind == "seq":
                return join_interval(val.length, Interval.of(0, _INF))
        val = self.eval(node, env)
        if val.kind == "seq":
            return val.length
        return Interval.of(0, _INF)

    # -- entry point ---------------------------------------------------

    def eval(self, node: ast.AST, env: Dict[str, AbsVal]) -> AbsVal:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return TOP_VAL
        return method(node, env)

    # -- leaves --------------------------------------------------------

    def _eval_Constant(self, node: ast.Constant, env) -> AbsVal:
        v = node.value
        if isinstance(v, bool):
            return num(Interval.const(float(v)))
        if isinstance(v, (int, float)):
            return num(Interval.const(float(v)))
        if isinstance(v, (str, bytes)):
            return seq(Interval.const(float(len(v))))
        return TOP_VAL

    def _eval_Name(self, node: ast.Name, env) -> AbsVal:
        return env.get(node.id, TOP_VAL)

    def _eval_Tuple(self, node: ast.Tuple, env) -> AbsVal:
        return self._literal_seq(node, env)

    def _eval_List(self, node: ast.List, env) -> AbsVal:
        return self._literal_seq(node, env)

    def _literal_seq(self, node, env) -> AbsVal:
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return seq(Interval.of(0, _INF))
        elem = EMPTY_IVAL
        for e in node.elts:
            v = self.eval(e, env)
            elem = join_interval(elem, v.ival if v.kind == "num" else TOP_IVAL)
        return seq(Interval.const(float(len(node.elts))), elem)

    # -- operators -----------------------------------------------------

    def _eval_BinOp(self, node: ast.BinOp, env) -> AbsVal:
        a = self.eval(node.left, env)
        b = self.eval(node.right, env)
        if a.kind == "seq" and b.kind == "seq" and isinstance(node.op, ast.Add):
            return seq(interval_add(a.length, b.length), join_interval(a.elem, b.elem))
        if a.kind != "num" or b.kind != "num":
            return TOP_VAL
        if isinstance(node.op, ast.Add):
            return num(interval_add(a.ival, b.ival))
        if isinstance(node.op, ast.Sub):
            return num(interval_sub(a.ival, b.ival))
        if isinstance(node.op, ast.Mult):
            return num(interval_mul(a.ival, b.ival))
        if isinstance(node.op, ast.FloorDiv):
            return num(interval_floordiv(a.ival, b.ival))
        return TOP_VAL

    def _eval_UnaryOp(self, node: ast.UnaryOp, env) -> AbsVal:
        v = self.eval(node.operand, env)
        if isinstance(node.op, ast.USub) and v.kind == "num":
            return num(
                Interval(_bound_neg(v.ival.hi, -1), _bound_neg(v.ival.lo, +1))
            )
        if isinstance(node.op, ast.Not):
            return num(Interval.of(0, 1))
        return TOP_VAL

    def _eval_Compare(self, node: ast.Compare, env) -> AbsVal:
        for sub in ast.walk(node):
            if sub is not node:
                self.eval(sub, env) if isinstance(sub, ast.Subscript) else None
        return num(Interval.of(0, 1))

    def _eval_BoolOp(self, node: ast.BoolOp, env) -> AbsVal:
        # ``a and b`` / ``a or b`` return one of the operands.
        out: Optional[AbsVal] = None
        for v in node.values:
            val = self.eval(v, env)
            out = val if out is None else join_val(out, val)
        return out or TOP_VAL

    def _eval_IfExp(self, node: ast.IfExp, env) -> AbsVal:
        return join_val(self.eval(node.body, env), self.eval(node.orelse, env))

    # -- subscripts ----------------------------------------------------

    def _eval_Subscript(self, node: ast.Subscript, env) -> AbsVal:
        base = self.eval(node.value, env)
        if (
            base.kind != "seq"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.stable_params
        ):
            # A bare parameter: shape unknown, but its length (if it is
            # a sequence at all) is exactly the symbol len(param).
            b = Bound(node.value.id, 0)
            base = seq(Interval(b, b))
        if isinstance(node.slice, ast.Slice):
            return self._eval_slice(node, base, env)
        if base.kind != "seq":
            return TOP_VAL
        idx = self.eval(node.slice, env)
        if idx.kind == "num" and not idx.ival.is_empty:
            length_hi = base.length.hi
            # Definite out-of-bounds: every admitted (index, length)
            # pair fails -- index >= any possible length, or index
            # below -length on every execution.
            if bound_le(length_hi, idx.ival.lo) and length_hi.off != _INF:
                self._hazard(
                    node,
                    "BND101",
                    f"index {idx.ival!r} is provably >= the sequence length "
                    f"{base.length!r} — out of bounds on every execution",
                )
            elif (
                length_hi.sym is None
                and length_hi.off != _INF
                and idx.ival.hi.sym is None
                and idx.ival.hi.off < -length_hi.off
            ):
                self._hazard(
                    node,
                    "BND101",
                    f"index {idx.ival!r} is provably below -len "
                    f"({base.length!r}) — out of bounds on every execution",
                )
        return AbsVal(kind="num", ival=base.elem) if not base.elem.is_top else TOP_VAL

    def _eval_slice(self, node: ast.Subscript, base: AbsVal, env) -> AbsVal:
        sl = node.slice
        if base.kind != "seq":
            return TOP_VAL
        facts = frozenset()
        step = sl.step
        if step is None or (isinstance(step, ast.Constant) and step.value == 1):
            facts = base.facts & {"monotone-inc", "monotone-nondec", "monotone-dec"}
        elif (
            isinstance(step, ast.UnaryOp)
            and isinstance(step.op, ast.USub)
            and isinstance(step.operand, ast.Constant)
            and step.operand.value == 1
        ):
            flip = {"monotone-inc": "monotone-dec", "monotone-dec": "monotone-inc"}
            facts = frozenset(flip[f] for f in base.facts if f in flip)
        if sl.lower is None and sl.upper is None:
            # A bare [::] / [::-1] keeps every element.
            length = base.length
        else:
            length = Interval(Bound(None, 0), base.length.hi)
        return seq(length, base.elem, facts)

    # -- calls ---------------------------------------------------------

    def _eval_Call(self, node: ast.Call, env) -> AbsVal:
        name = self._resolve(node.func)
        if name is None:
            return TOP_VAL
        leaf = name.rsplit(".", 1)[-1]
        args = node.args

        if name == "len" and len(args) == 1:
            return num(self._len_of(args[0], env))
        if name == "range" and 1 <= len(args) <= 2 and not any(
            isinstance(a, ast.Starred) for a in args
        ):
            if len(args) == 1:
                lo = Interval.const(0.0)
                hi_src = self.eval(args[0], env)
            else:
                lo = self.eval(args[0], env).ival
                hi_src = self.eval(args[1], env)
            hi = hi_src.ival if hi_src.kind == "num" else TOP_IVAL
            elem = Interval(
                lo.lo if not lo.is_empty else NEG_INF, hi.hi.add(-1)
            )
            return seq(
                Interval(Bound(None, 0), hi.hi),
                elem,
                frozenset({"monotone-inc"}),
            )
        if name in ("min", "max") and len(args) >= 2:
            vals = [self.eval(a, env) for a in args]
            if all(v.kind == "num" for v in vals):
                fold = interval_min if name == "min" else interval_max
                out = vals[0].ival
                for v in vals[1:]:
                    out = fold(out, v.ival)
                return num(out)
            return TOP_VAL
        if name == "abs" and len(args) == 1:
            v = self.eval(args[0], env)
            if v.kind == "num" and v.ival.lo.sym is None and v.ival.hi.sym is None:
                lo, hi = v.ival.lo.off, v.ival.hi.off
                if -_INF < lo and hi < _INF:
                    bounds = [abs(lo), abs(hi)]
                    low = 0.0 if lo <= 0.0 <= hi else min(bounds)
                    return num(Interval.of(low, max(bounds)))
            return num(Interval.of(0, _INF))
        if name in ("sorted", "list", "tuple") and len(args) == 1:
            v = self.eval(args[0], env)
            if v.kind == "seq":
                if name == "sorted":
                    # ``key=`` sorts by something else entirely and
                    # ``reverse=`` flips the order — only a bare
                    # sorted() yields a value-nondecreasing sequence.
                    facts = (
                        frozenset({"monotone-nondec"})
                        if not node.keywords
                        else frozenset()
                    )
                    return seq(v.length, v.elem, facts)
                return v
            return seq(Interval.of(0, _INF))
        if leaf == "BBox" and len(args) >= 4:
            return self._eval_bbox(node, env)
        for prefix in ("numpy.", "np."):
            if name.startswith(prefix):
                return self._eval_numpy(name[len(prefix):], node, env)
        return TOP_VAL

    def _eval_bbox(self, node: ast.Call, env) -> AbsVal:
        w = self.eval(node.args[2], env)
        h = self.eval(node.args[3], env)
        for label, v in (("width", w), ("height", h)):
            if v.kind == "num" and not v.ival.is_empty and bound_lt(
                v.ival.hi, Bound(None, 0)
            ):
                self._hazard(
                    node,
                    "BND103",
                    f"BBox constructed with provably negative {label} "
                    f"{v.ival!r} — raises ValueError on every execution",
                )
        ordered = all(
            v.kind == "num" and bound_le(Bound(None, 0), v.ival.lo)
            for v in (w, h)
        )
        facts = frozenset({"bbox-ordered"}) if ordered else frozenset()
        return AbsVal(kind="bbox", facts=facts)

    def _eval_numpy(self, leaf: str, node: ast.Call, env) -> AbsVal:
        args = node.args
        if leaf in ("zeros", "ones", "empty", "full", "arange") and args:
            n = self.eval(args[0], env)
            if n.kind == "num" and not n.ival.is_empty and bound_lt(
                n.ival.hi, Bound(None, 0)
            ):
                self._hazard(
                    node,
                    "BND103",
                    f"numpy.{leaf} called with provably negative size "
                    f"{n.ival!r} — raises on every execution",
                )
            if n.kind == "num" and not n.ival.is_empty:
                lo = n.ival.lo if bound_le(Bound(None, 0), n.ival.lo) else Bound(None, 0)
                length = Interval(lo, n.ival.hi)
            else:
                length = Interval.of(0, _INF)
            if leaf == "arange" and len(args) == 1:
                elem = Interval(Bound(None, 0), n.ival.hi.add(-1))
                return seq(length, elem, frozenset({"monotone-inc"}))
            elem = {"zeros": Interval.const(0.0), "ones": Interval.const(1.0)}.get(
                leaf, TOP_IVAL
            )
            return seq(length, elem)
        if leaf in ("asarray", "array", "ascontiguousarray") and args:
            v = self.eval(args[0], env)
            return v if v.kind == "seq" else seq(Interval.of(0, _INF))
        if leaf == "cumsum" and args:
            v = self.eval(args[0], env)
            if v.kind == "seq" and bound_le(Bound(None, 0), v.elem.lo):
                return seq(
                    v.length,
                    Interval(v.elem.lo, POS_INF),
                    frozenset({"monotone-nondec"}),
                )
            return seq(v.length if v.kind == "seq" else Interval.of(0, _INF))
        if leaf == "flatnonzero" and args:
            return seq(
                Interval.of(0, _INF),
                Interval.of(0, _INF),
                frozenset({"monotone-inc"}),
            )
        if leaf == "add.reduceat" and len(args) >= 2:
            vals = self.eval(args[0], env)
            starts = self.eval(args[1], env)
            self._check_reduceat(node, vals, starts)
            length = starts.length if starts.kind == "seq" else Interval.of(0, _INF)
            return seq(length)
        if leaf in ("concatenate", "hstack") and len(args) == 1:
            return seq(Interval.of(0, _INF))
        return TOP_VAL

    def _check_reduceat(self, node: ast.Call, vals: AbsVal, starts: AbsVal) -> None:
        if starts.kind != "seq":
            return
        if vals.kind == "seq" and not starts.elem.is_empty:
            length_hi = vals.length.hi
            if bound_le(length_hi, starts.elem.lo) and length_hi.off != _INF:
                self._hazard(
                    node,
                    "BND102",
                    f"reduceat offsets {starts.elem!r} are provably >= the "
                    f"value array length {vals.length!r} — out of range on "
                    f"every execution",
                )
            elif bound_lt(starts.elem.hi, Bound(None, 0)):
                self._hazard(
                    node,
                    "BND102",
                    f"reduceat offsets {starts.elem!r} are provably negative "
                    f"— out of range on every execution",
                )
        if "monotone-dec" in starts.facts and bound_le(
            Bound(None, 2), starts.length.lo
        ):
            self._hazard(
                node,
                "BND102",
                "reduceat offsets are strictly decreasing (a reversed "
                "monotone index array of length >= 2) — the reduction "
                "windows are provably wrong on every execution",
            )

    # -- comprehensions ------------------------------------------------

    def _eval_ListComp(self, node: ast.ListComp, env) -> AbsVal:
        return self._eval_comp(node, env)

    def _eval_GeneratorExp(self, node: ast.GeneratorExp, env) -> AbsVal:
        return self._eval_comp(node, env)

    def _eval_comp(self, node, env) -> AbsVal:
        if len(node.generators) != 1:
            return seq(Interval.of(0, _INF))
        gen = node.generators[0]
        inner = dict(env)
        src = self.eval(gen.iter, env)
        bind_target(inner, gen.target, iterated(src))
        elt = self.eval(node.elt, inner)
        length = Interval(
            Bound(None, 0),
            src.length.hi if src.kind == "seq" else POS_INF,
        )
        facts = frozenset()
        if _comp_is_interior_pairs(node):
            facts = frozenset({"interior-pairs"})
        elem = elt.ival if elt.kind == "num" else TOP_IVAL
        return seq(length, elem, facts)


def iterated(src: AbsVal) -> AbsVal:
    """The abstraction of one element drawn from ``src``."""
    if src.kind == "seq" and not src.elem.is_top:
        return num(src.elem) if not src.elem.is_empty else TOP_VAL
    return TOP_VAL


def bind_target(env: Dict[str, AbsVal], target: ast.AST, value: AbsVal) -> None:
    """Bind an assignment/loop target; unknown shapes bind to TOP."""
    if isinstance(target, ast.Name):
        env[target.id] = value
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            bind_target(env, elt, TOP_VAL)
    # Attribute / Subscript stores leave the environment alone.


def _comp_is_interior_pairs(node) -> bool:
    """Whether a comprehension provably yields strictly interior
    ``(start, size)`` pairs: target and element are the same 2-tuple of
    names and the filter contains ``start > 0`` and
    ``start + size < <extent>``."""
    if len(node.generators) != 1:
        return False
    gen = node.generators[0]
    if not (
        isinstance(gen.target, ast.Tuple)
        and len(gen.target.elts) == 2
        and all(isinstance(e, ast.Name) for e in gen.target.elts)
    ):
        return False
    start_name, size_name = (e.id for e in gen.target.elts)
    if not (
        isinstance(node.elt, ast.Tuple)
        and len(node.elt.elts) == 2
        and all(isinstance(e, ast.Name) for e in node.elt.elts)
        and node.elt.elts[0].id == start_name
        and node.elt.elts[1].id == size_name
    ):
        return False
    conds: List[ast.expr] = []
    for test in gen.ifs:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            conds.extend(test.values)
        else:
            conds.append(test)
    has_positive_start = False
    has_interior_end = False
    for cond in conds:
        if not (isinstance(cond, ast.Compare) and len(cond.ops) == 1):
            continue
        left, op, right = cond.left, cond.ops[0], cond.comparators[0]
        if (
            isinstance(op, ast.Gt)
            and isinstance(left, ast.Name)
            and left.id == start_name
            and isinstance(right, ast.Constant)
            and right.value == 0
        ):
            has_positive_start = True
        if (
            isinstance(op, ast.Lt)
            and isinstance(left, ast.BinOp)
            and isinstance(left.op, ast.Add)
            and isinstance(left.left, ast.Name)
            and left.left.id == start_name
            and isinstance(left.right, ast.Name)
            and left.right.id == size_name
        ):
            has_interior_end = True
    return has_positive_start and has_interior_end


# ----------------------------------------------------------------------
# The per-function analysis
# ----------------------------------------------------------------------


def _assigned_names(func) -> set:
    """Names the function body can rebind (excludes nested defs)."""
    out = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            out.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
    return out


def _transfer_stmt(ev: _Evaluator, stmt, env: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
    """One statement's effect (header-only for compound statements)."""
    out = dict(env)
    if isinstance(stmt, ast.Assign):
        value = ev.eval(stmt.value, env)
        for target in stmt.targets:
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(stmt.value, (ast.Tuple, ast.List))
                and len(target.elts) == len(stmt.value.elts)
                and all(isinstance(e, ast.Name) for e in target.elts)
            ):
                for t, v in zip(target.elts, stmt.value.elts):
                    out[t.id] = ev.eval(v, env)  # type: ignore[union-attr]
            else:
                bind_target(out, target, value)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        bind_target(out, stmt.target, ev.eval(stmt.value, env))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            synthetic = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            ast.copy_location(synthetic, stmt)
            ast.fix_missing_locations(synthetic)
            out[stmt.target.id] = ev.eval(synthetic, env)
        else:
            ev.eval(stmt.value, env)
    elif isinstance(stmt, ast.For):
        ev.eval(stmt.iter, env)
        bind_target(out, stmt.target, iterated(ev.eval(stmt.iter, env)))
    elif isinstance(stmt, (ast.While, ast.If)):
        ev.eval(stmt.test, env)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            ev.eval(stmt.value, env)
    elif isinstance(stmt, ast.Expr):
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("append", "extend")
            and isinstance(value.func.value, ast.Name)
        ):
            name = value.func.value.id
            base = env.get(name)
            if base is not None and base.kind == "seq" and len(value.args) == 1:
                arg = ev.eval(value.args[0], env)
                if value.func.attr == "append":
                    elem = join_interval(
                        base.elem, arg.ival if arg.kind == "num" else TOP_IVAL
                    )
                    out[name] = AbsVal(
                        kind="seq",
                        length=interval_add(base.length, Interval.const(1.0)),
                        elem=elem,
                        facts=frozenset(),
                    )
                else:
                    elem = join_interval(
                        base.elem, arg.elem if arg.kind == "seq" else TOP_IVAL
                    )
                    out[name] = AbsVal(
                        kind="seq",
                        length=interval_add(
                            base.length,
                            arg.length if arg.kind == "seq" else Interval.of(0, _INF),
                        ),
                        elem=elem,
                        facts=frozenset(),
                    )
        else:
            ev.eval(value, env)
    elif isinstance(stmt, ast.With):
        for item in stmt.items:
            ev.eval(item.context_expr, env)
    return out


def _entry_env(func, stable_params) -> Dict[str, AbsVal]:
    env: Dict[str, AbsVal] = {}
    all_args = list(func.args.posonlyargs) + list(func.args.args) + list(
        func.args.kwonlyargs
    )
    for a in all_args:
        env[a.arg] = TOP_VAL
    return env


def solve_values(func, resolver=None, cfg: Optional[CFG] = None):
    """Fixpoint of the value analysis; returns ``(cfg, evaluator,
    in-facts)`` so callers can inspect any node's environment."""
    if cfg is None:
        cfg = build_cfg(func)
    assigned = _assigned_names(func)
    params = {
        a.arg
        for a in list(func.args.posonlyargs)
        + list(func.args.args)
        + list(func.args.kwonlyargs)
        if a.arg not in ("self", "cls")
    }
    stable_params = params - assigned
    ev = _Evaluator(resolver, stable_params)
    lattice = ValueLattice()
    stmt_of = {node.id: node.stmt for node in cfg.nodes if node.kind == "stmt"}

    def transfer(node_id: int, fact: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
        stmt = stmt_of.get(node_id)
        if stmt is None:
            return fact
        return _transfer_stmt(ev, stmt, fact)

    facts = solve(
        cfg, lattice, transfer, _entry_env(func, stable_params), widen_after=3
    )
    return cfg, ev, facts


def exit_env(func, resolver=None) -> Dict[str, AbsVal]:
    """Abstract environment at the function's normal exit — the test
    hook for the soundness property suite."""
    cfg, ev, facts = solve_values(func, resolver)
    env = facts.get(cfg.exit, {})
    # The exit node's in-fact is the state after the last statement on
    # every normal path; apply no further transfer.
    return env


# ----------------------------------------------------------------------
# Facts and hazards -> ValueSummary
# ----------------------------------------------------------------------


def _return_facts(func, ev: _Evaluator, cfg: CFG, facts) -> List[str]:
    returns: List[AbsVal] = []
    stmt_envs: List[Tuple[ast.Return, Dict[str, AbsVal]]] = []
    for node in cfg.nodes:
        if node.kind == "stmt" and isinstance(node.stmt, ast.Return):
            env = facts.get(node.id, {})
            if node.stmt.value is not None:
                stmt_envs.append((node.stmt, env))
    if not stmt_envs:
        return []
    for stmt, env in stmt_envs:
        returns.append(ev.eval(stmt.value, env))
    out: List[str] = []

    def value_range(v: AbsVal) -> Optional[Interval]:
        if v.kind == "num":
            return v.ival
        if v.kind == "seq" and not v.elem.is_top and not v.elem.is_empty:
            return v.elem
        return None

    ranges = [value_range(v) for v in returns]
    if all(r is not None for r in ranges):
        zero = Bound(None, 0)
        if all(bound_le(zero, r.lo) for r in ranges):  # type: ignore[union-attr]
            out.append("nonneg-return")
        elif all(bound_lt(r.hi, zero) for r in ranges):  # type: ignore[union-attr]
            out.append("!nonneg-return")
        for p in sorted(ev.stable_params):
            limit = Bound(p, -1)
            if all(
                bound_le(zero, r.lo) and bound_le(r.hi, limit)  # type: ignore[union-attr]
                for r in ranges
            ):
                out.append(f"index-return:{p}")
            elif all(
                bound_le(Bound(p, 0), r.lo) or bound_lt(r.hi, zero)  # type: ignore[union-attr]
                for r in ranges
            ):
                out.append(f"!index-return:{p}")
    if all("interior-pairs" in v.facts for v in returns):
        out.append("interior-pairs-return")
    if all(
        v.facts & {"monotone-inc", "monotone-nondec"} for v in returns
    ):
        out.append("monotone-return")
    if all("bbox-ordered" in v.facts for v in returns):
        out.append("bbox-ordered-return")
    return out


def analyze_function(func, resolver=None, cfg: Optional[CFG] = None) -> ValueSummary:
    """Run the value analysis on one function and condense the result.

    ``resolver`` is the sharpened :class:`~repro.analysis.flow.Resolver`
    the index already builds; ``cfg`` lets the caller share the CFG
    :func:`~repro.analysis.flow.compute_flow` built, keeping the warm
    cache invariant at "0 CFG(s) built".
    """
    global BUILD_COUNT
    BUILD_COUNT += 1
    cfg, ev, facts = solve_values(func, resolver, cfg)
    # Post-fixpoint hazard scan: one pure pass per statement with its
    # final environment (transfers during iteration never collect).
    hazards: List[Tuple[int, str, str]] = []
    ev.collect = hazards
    for node in cfg.nodes:
        if node.kind == "stmt":
            _transfer_stmt(ev, node.stmt, facts.get(node.id, {}))
    ev.collect = None
    ret_facts = _return_facts(func, ev, cfg, facts)
    dedup: List[Tuple[int, str, str]] = sorted(set(hazards))
    return ValueSummary(facts=sorted(set(ret_facts)), hazards=dedup)


__all__ = [
    "AbsVal",
    "Bound",
    "Interval",
    "ValueLattice",
    "ValueSummary",
    "analyze_function",
    "bound_le",
    "bound_lt",
    "exit_env",
    "join_interval",
    "join_val",
    "solve_values",
    "widen_interval",
]
