"""Content-hash-keyed result cache for ``repro check``.

A full-repo lint parses ~200 files and walks every AST several times;
between two consecutive runs almost nothing changes.  The cache stores,
per file, the module's :class:`~repro.analysis.index.ModuleSummary`
and its module-scope rule violations, keyed by

* the SHA-256 of the file's bytes (content, not mtime — a ``touch``
  must not bust the cache, an edit must), and
* an *engine fingerprint* covering the engine schema version and the
  active module-scope rule set (a new or changed rule invalidates
  everything, as it must).

Interprocedural pass findings are **never** cached: they depend on the
whole index, are cheap to recompute from summaries, and caching them
would reintroduce exactly the stale-cross-module-result bug this layer
exists to catch.

Entries for files not seen in the current run are dropped on save, so
the cache file tracks the tree instead of growing without bound.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.index import ModuleSummary
from repro.analysis.lint.engine import Violation

#: Bump when the summary schema or violation semantics change shape —
#: old cache files are then ignored wholesale instead of misread.
#: /2: flow-sensitive facts (FlowSummary, typed_calls, pragmas) joined
#: the summary schema.
#: /3: metric emissions and the METRIC_NAMES registry (repro.obs)
#: joined the summary schema.
#: /4: abstract-interpretation value summaries, contract sites and the
#: ``proof: assumed`` pragma joined the summary schema.
CACHE_SCHEMA = "repro.check.cache/4"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def engine_fingerprint(rule_ids: Sequence[str]) -> str:
    """Identity of the analysis configuration a cached entry is valid
    for: schema version + the active module-scope rule IDs."""
    return f"{CACHE_SCHEMA}::{','.join(sorted(rule_ids))}"


class ResultCache:
    """Per-file (summary, violations) store on disk.

    Corrupt or schema-mismatched cache files are treated as empty —
    the cache may never turn into a correctness hazard.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, object]] = {}
        self._seen: set = set()
        self.hits = 0
        self.misses = 0
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text(encoding="utf-8"))
                if isinstance(data, dict) and data.get("schema") == CACHE_SCHEMA:
                    self._entries = dict(data.get("entries", {}))
            except (ValueError, OSError):
                self._entries = {}

    def get(
        self, display_path: str, sha: str, fingerprint: str
    ) -> Optional[Tuple[ModuleSummary, List[Violation]]]:
        self._seen.add(display_path)
        entry = self._entries.get(display_path)
        if (
            entry is None
            or entry.get("sha") != sha
            or entry.get("fingerprint") != fingerprint
        ):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])  # type: ignore[arg-type]
            violations = [Violation.from_dict(v) for v in entry["violations"]]  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary, violations

    def put(
        self,
        display_path: str,
        sha: str,
        fingerprint: str,
        summary: ModuleSummary,
        violations: Sequence[Violation],
    ) -> None:
        self._seen.add(display_path)
        self._entries[display_path] = {
            "sha": sha,
            "fingerprint": fingerprint,
            "summary": summary.to_dict(),
            "violations": [v.to_dict() for v in violations],
        }

    def save(self) -> None:
        """Persist atomically: serialise to a sibling tmp file, then
        ``os.replace`` it over the target.  Concurrent ``repro check``
        processes saving the same cache each land a complete file —
        last writer wins — instead of interleaving partial writes into
        a corrupt one."""
        entries = {
            path: entry
            for path, entry in sorted(self._entries.items())
            if path in self._seen
        }
        payload = {"schema": CACHE_SCHEMA, "entries": entries}
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
